//! A plain-text format for ground-truth clusters.
//!
//! The paper's pipeline takes the field correspondences as *input* (§2.1);
//! this format lets users supply them explicitly instead of relying on
//! the heuristic matcher:
//!
//! ```text
//! # clusters for the airline domain
//! cluster adult
//!   british: Adults
//!   airtravel: Passengers
//! cluster child
//!   british: Children
//!   airtravel: Passengers     # 1:m — same field in several clusters
//! ```
//!
//! Each member line names a source interface and a field label on it;
//! the field is resolved by exact label match (first match in document
//! order). The same `interface: label` pair may appear in several
//! clusters — that is precisely a 1:m correspondence, reduced later by
//! [`crate::expand_one_to_many`].

use crate::cluster::{FieldRef, Mapping};
use qi_schema::{NodeId, SchemaTree};

/// Parse errors with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a clusters file against the source interfaces.
pub fn parse(text: &str, schemas: &[SchemaTree]) -> Result<Mapping, ParseError> {
    let mut clusters: Vec<(String, Vec<FieldRef>)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        // Strip end-of-line comments.
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        if line.trim().is_empty() {
            continue;
        }
        if line.trim() == "cluster" {
            return Err(ParseError {
                line: line_no,
                message: "cluster needs a concept name".to_string(),
            });
        }
        if let Some(concept) = line.trim().strip_prefix("cluster ") {
            let concept = concept.trim();
            if concept.is_empty() {
                return Err(ParseError {
                    line: line_no,
                    message: "cluster needs a concept name".to_string(),
                });
            }
            clusters.push((concept.to_string(), Vec::new()));
            continue;
        }
        // Member line: `<interface>: <label>`.
        let Some((interface, label)) = line.split_once(':') else {
            return Err(ParseError {
                line: line_no,
                message: format!(
                    "expected `cluster <name>` or `<interface>: <label>`, got {:?}",
                    line.trim()
                ),
            });
        };
        let Some((_, members)) = clusters.last_mut() else {
            return Err(ParseError {
                line: line_no,
                message: "member line before any `cluster` header".to_string(),
            });
        };
        let interface = interface.trim();
        let label = label.trim();
        let Some(schema_idx) = schemas.iter().position(|s| s.name() == interface) else {
            return Err(ParseError {
                line: line_no,
                message: format!("unknown interface {interface:?}"),
            });
        };
        let tree = &schemas[schema_idx];
        let Some(leaf) = tree
            .descendant_leaves(NodeId::ROOT)
            .into_iter()
            .find(|&l| tree.node(l).label_str() == label)
        else {
            return Err(ParseError {
                line: line_no,
                message: format!("no field labeled {label:?} on interface {interface:?}"),
            });
        };
        let field = FieldRef::new(schema_idx, leaf);
        if members.contains(&field) {
            return Err(ParseError {
                line: line_no,
                message: format!("duplicate member {interface}: {label}"),
            });
        }
        members.push(field);
    }
    if clusters.is_empty() {
        return Err(ParseError {
            line: 1,
            message: "no clusters defined".to_string(),
        });
    }
    Ok(Mapping::from_clusters(clusters))
}

/// Render a mapping back to the text format (labels resolved from the
/// schemas; unlabeled members are skipped with a comment).
pub fn render(mapping: &Mapping, schemas: &[SchemaTree]) -> String {
    let mut out = String::new();
    for cluster in &mapping.clusters {
        out.push_str(&format!("cluster {}\n", cluster.concept));
        for member in &cluster.members {
            let tree = &schemas[member.schema];
            match &tree.node(member.node).label {
                Some(label) => {
                    out.push_str(&format!("  {}: {}\n", tree.name(), label));
                }
                None => {
                    out.push_str(&format!(
                        "  # {}: <unlabeled field {}>\n",
                        tree.name(),
                        member.node
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_schema::spec::{leaf, node};

    fn schemas() -> Vec<SchemaTree> {
        vec![
            SchemaTree::build(
                "british",
                vec![node("Who", vec![leaf("Adults"), leaf("Children")])],
            )
            .unwrap(),
            SchemaTree::build("airtravel", vec![leaf("Passengers")]).unwrap(),
        ]
    }

    const SAMPLE: &str = "\
# airline clusters
cluster adult
  british: Adults
  airtravel: Passengers
cluster child
  british: Children
  airtravel: Passengers   # 1:m
";

    #[test]
    fn parse_resolves_fields_and_supports_one_to_many() {
        let schemas = schemas();
        let mapping = parse(SAMPLE, &schemas).unwrap();
        assert_eq!(mapping.len(), 2);
        assert_eq!(mapping.by_concept("adult").unwrap().members.len(), 2);
        // The Passengers field appears in both clusters (1:m).
        let passengers = mapping.by_concept("adult").unwrap().members[1];
        assert_eq!(mapping.clusters_of(passengers).len(), 2);
    }

    #[test]
    fn parse_errors_are_precise() {
        let schemas = schemas();
        let e = parse("british: Adults\n", &schemas).unwrap_err();
        assert!(e.message.contains("before any"), "{e}");
        let e = parse("cluster a\n  nowhere: X\n", &schemas).unwrap_err();
        assert!(e.message.contains("unknown interface"), "{e}");
        assert_eq!(e.line, 2);
        let e = parse("cluster a\n  british: Nope\n", &schemas).unwrap_err();
        assert!(e.message.contains("no field labeled"), "{e}");
        let e = parse(
            "cluster a\n  british: Adults\n  british: Adults\n",
            &schemas,
        )
        .unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
        let e = parse("cluster \n", &schemas).unwrap_err();
        assert!(e.message.contains("concept name"), "{e}");
        let e = parse("", &schemas).unwrap_err();
        assert!(e.message.contains("no clusters"), "{e}");
        let e = parse("gibberish\n", &schemas).unwrap_err();
        assert!(e.message.contains("expected"), "{e}");
    }

    #[test]
    fn round_trip() {
        let schemas = schemas();
        let mapping = parse(SAMPLE, &schemas).unwrap();
        let text = render(&mapping, &schemas);
        let again = parse(&text, &schemas).unwrap();
        assert_eq!(again, mapping);
    }

    #[test]
    fn render_marks_unlabeled_members() {
        let tree =
            SchemaTree::build("a", vec![qi_schema::spec::unlabeled_leaf(), leaf("B")]).unwrap();
        let leaves = tree.descendant_leaves(NodeId::ROOT);
        let schemas = vec![tree];
        let mapping = Mapping::from_clusters(vec![(
            "c".to_string(),
            vec![FieldRef::new(0, leaves[0]), FieldRef::new(0, leaves[1])],
        )]);
        let text = render(&mapping, &schemas);
        assert!(text.contains("<unlabeled field"));
        assert!(text.contains("a: B"));
    }
}
