//! Clusters of semantically equivalent fields and 1:m expansion (§2.1).

use qi_schema::{NodeId, SchemaTree};
use std::collections::HashMap;

/// Identifier of a cluster within a [`Mapping`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// Index into `Mapping::clusters`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A field of one schema: `(schema index, node id)`. Schema indices refer
/// to the slice of source trees the mapping was built against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldRef {
    /// Index of the source schema within the domain's interface list.
    pub schema: usize,
    /// Field node inside that schema.
    pub node: NodeId,
}

impl FieldRef {
    /// Convenience constructor.
    pub fn new(schema: usize, node: NodeId) -> Self {
        FieldRef { schema, node }
    }
}

/// A cluster: all fields, across schemas, denoting the same concept
/// (Table 1 of the paper). After [`expand_one_to_many`] every schema
/// contributes at most one field per cluster; schemas without an
/// equivalent field simply have no entry (the paper's null entries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// This cluster's id.
    pub id: ClusterId,
    /// Human-readable concept name for diagnostics and ground truth
    /// (e.g. `c_Adult`). Never used by the labeling algorithm itself.
    pub concept: String,
    /// Member fields.
    pub members: Vec<FieldRef>,
}

impl Cluster {
    /// The member contributed by `schema`, if any.
    pub fn member_of(&self, schema: usize) -> Option<FieldRef> {
        self.members.iter().copied().find(|m| m.schema == schema)
    }
}

/// The domain-wide set of clusters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Mapping {
    /// Clusters, indexed by [`ClusterId`].
    pub clusters: Vec<Cluster>,
}

/// Mapping validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// A member points at a schema index outside the domain.
    SchemaOutOfRange { cluster: ClusterId, schema: usize },
    /// A member points at a node that is not a leaf of its schema.
    NotAField { cluster: ClusterId, field: FieldRef },
    /// A schema contributes two fields to one cluster.
    DuplicateSchema { cluster: ClusterId, schema: usize },
    /// A field occurs in more than one cluster — the mapping is still in
    /// 1:m form and needs [`expand_one_to_many`].
    OneToMany { field: FieldRef },
}

impl std::fmt::Display for MappingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingError::SchemaOutOfRange { cluster, schema } => {
                write!(f, "cluster {cluster}: schema index {schema} out of range")
            }
            MappingError::NotAField { cluster, field } => write!(
                f,
                "cluster {cluster}: node {} of schema {} is not a field",
                field.node, field.schema
            ),
            MappingError::DuplicateSchema { cluster, schema } => write!(
                f,
                "cluster {cluster}: schema {schema} contributes more than one field"
            ),
            MappingError::OneToMany { field } => write!(
                f,
                "field {} of schema {} occurs in multiple clusters (run 1:m expansion first)",
                field.node, field.schema
            ),
        }
    }
}

impl std::error::Error for MappingError {}

impl Mapping {
    /// Create a mapping from `(concept, members)` pairs.
    pub fn from_clusters<I, M>(clusters: I) -> Self
    where
        I: IntoIterator<Item = (String, M)>,
        M: IntoIterator<Item = FieldRef>,
    {
        let clusters = clusters
            .into_iter()
            .enumerate()
            .map(|(i, (concept, members))| Cluster {
                id: ClusterId(i as u32),
                concept,
                members: members.into_iter().collect(),
            })
            .collect();
        Mapping { clusters }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True if there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Lookup by id.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.index()]
    }

    /// Lookup by ground-truth concept name.
    pub fn by_concept(&self, concept: &str) -> Option<&Cluster> {
        self.clusters.iter().find(|c| c.concept == concept)
    }

    /// The clusters a given field belongs to. More than one before 1:m
    /// expansion; at most one afterwards.
    pub fn clusters_of(&self, field: FieldRef) -> Vec<ClusterId> {
        self.clusters
            .iter()
            .filter(|c| c.members.contains(&field))
            .map(|c| c.id)
            .collect()
    }

    /// Validate the mapping against the source schemas. Requires 1:1 form
    /// (run [`expand_one_to_many`] first for raw 1:m mappings).
    pub fn validate(&self, schemas: &[SchemaTree]) -> Result<(), MappingError> {
        let mut field_seen: HashMap<FieldRef, ()> = HashMap::new();
        for cluster in &self.clusters {
            for &member in &cluster.members {
                if field_seen.insert(member, ()).is_some() {
                    return Err(MappingError::OneToMany { field: member });
                }
            }
        }
        for cluster in &self.clusters {
            let mut seen: HashMap<usize, ()> = HashMap::new();
            for &member in &cluster.members {
                let Some(tree) = schemas.get(member.schema) else {
                    return Err(MappingError::SchemaOutOfRange {
                        cluster: cluster.id,
                        schema: member.schema,
                    });
                };
                if member.node.index() >= tree.len() || !tree.node(member.node).is_leaf() {
                    return Err(MappingError::NotAField {
                        cluster: cluster.id,
                        field: member,
                    });
                }
                if seen.insert(member.schema, ()).is_some() {
                    return Err(MappingError::DuplicateSchema {
                        cluster: cluster.id,
                        schema: member.schema,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Result of 1:m expansion: the labels harvested from expanded fields,
/// which become candidate labels for internal nodes (§2.1: "the label
/// `Passengers` becomes a candidate label for an internal node and it is
/// removed from all the clusters it occurs \[in\]").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpansionOutcome {
    /// `(schema, new internal node, harvested label)` per expanded field.
    pub expanded: Vec<(usize, NodeId, String)>,
}

/// Reduce 1:m correspondences to 1:1 (§2.1).
///
/// A field that occurs in more than one cluster is the coarse side of a
/// 1:m matching. It is converted into an internal node that keeps the
/// original label, and for each cluster it belonged to a fresh *unlabeled*
/// leaf child is created and substituted for it in that cluster (the new
/// fields have no label of their own on the source interface — they will
/// contribute null entries to group relations).
pub fn expand_one_to_many(schemas: &mut [SchemaTree], mapping: &mut Mapping) -> ExpansionOutcome {
    // Collect fields appearing in more than one cluster.
    let mut occurrence: HashMap<FieldRef, Vec<ClusterId>> = HashMap::new();
    for cluster in &mapping.clusters {
        for &member in &cluster.members {
            occurrence.entry(member).or_default().push(cluster.id);
        }
    }
    let mut outcome = ExpansionOutcome::default();
    let mut multi: Vec<(FieldRef, Vec<ClusterId>)> = occurrence
        .into_iter()
        .filter(|(_, ids)| ids.len() > 1)
        .collect();
    // Deterministic order regardless of hash-map iteration.
    multi.sort_by_key(|(field, _)| *field);
    for (field, mut cluster_ids) in multi {
        cluster_ids.sort();
        let tree = &mut schemas[field.schema];
        let label = tree.node(field.node).label_str().to_string();
        tree.convert_leaf_to_internal(field.node);
        for cluster_id in cluster_ids {
            let child = tree.add_leaf(field.node, None);
            let cluster = &mut mapping.clusters[cluster_id.index()];
            let pos = cluster
                .members
                .iter()
                .position(|&m| m == field)
                .expect("occurrence map is consistent with clusters");
            cluster.members[pos] = FieldRef::new(field.schema, child);
        }
        outcome.expanded.push((field.schema, field.node, label));
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_schema::spec::{leaf, node};

    /// Figure 2 of the paper: three airline schemas; `airtravel` has the
    /// coarse `Passengers` field matching four finer concepts.
    fn figure2() -> (Vec<SchemaTree>, Mapping) {
        let aa = SchemaTree::build(
            "aa",
            vec![node(
                "Passengers",
                vec![
                    leaf("Adults"),
                    leaf("Seniors"),
                    leaf("Children"),
                    leaf("Infants"),
                ],
            )],
        )
        .unwrap();
        let airtravel = SchemaTree::build("airtravel", vec![leaf("Passengers")]).unwrap();
        let aa_leaves = aa.descendant_leaves(qi_schema::NodeId::ROOT);
        let at_leaves = airtravel.descendant_leaves(qi_schema::NodeId::ROOT);
        let passengers = FieldRef::new(1, at_leaves[0]);
        let mapping = Mapping::from_clusters(vec![
            (
                "c_Adult".to_string(),
                vec![FieldRef::new(0, aa_leaves[0]), passengers],
            ),
            (
                "c_Senior".to_string(),
                vec![FieldRef::new(0, aa_leaves[1]), passengers],
            ),
            (
                "c_Child".to_string(),
                vec![FieldRef::new(0, aa_leaves[2]), passengers],
            ),
            (
                "c_Infant".to_string(),
                vec![FieldRef::new(0, aa_leaves[3]), passengers],
            ),
        ]);
        (vec![aa, airtravel], mapping)
    }

    #[test]
    fn expansion_replaces_coarse_field() {
        let (mut schemas, mut mapping) = figure2();
        assert!(mapping.validate(&schemas).is_err(), "1:m violates 1:1 form");
        let outcome = expand_one_to_many(&mut schemas, &mut mapping);
        assert_eq!(outcome.expanded.len(), 1);
        let (schema, node, label) = &outcome.expanded[0];
        assert_eq!(*schema, 1);
        assert_eq!(label, "Passengers");
        // The expanded node is now internal with 4 unlabeled leaf children.
        let tree = &schemas[1];
        assert!(!tree.node(*node).is_leaf());
        assert_eq!(tree.children(*node).len(), 4);
        for &child in tree.children(*node) {
            assert!(tree.node(child).is_leaf());
            assert!(tree.node(child).label.is_none());
        }
        // Mapping is now valid 1:1 and every cluster kept both schemas.
        mapping.validate(&schemas).unwrap();
        for cluster in &mapping.clusters {
            assert_eq!(cluster.members.len(), 2);
            assert!(cluster.member_of(0).is_some());
            assert!(cluster.member_of(1).is_some());
        }
    }

    #[test]
    fn expansion_is_noop_on_one_to_one() {
        let a = SchemaTree::build("a", vec![leaf("X")]).unwrap();
        let b = SchemaTree::build("b", vec![leaf("X")]).unwrap();
        let fa = FieldRef::new(0, a.descendant_leaves(qi_schema::NodeId::ROOT)[0]);
        let fb = FieldRef::new(1, b.descendant_leaves(qi_schema::NodeId::ROOT)[0]);
        let mut schemas = vec![a, b];
        let mut mapping = Mapping::from_clusters(vec![("c_X".to_string(), vec![fa, fb])]);
        let before = mapping.clone();
        let outcome = expand_one_to_many(&mut schemas, &mut mapping);
        assert!(outcome.expanded.is_empty());
        assert_eq!(mapping, before);
    }

    #[test]
    fn validate_catches_duplicates_and_bad_refs() {
        let a = SchemaTree::build("a", vec![leaf("X"), leaf("Y")]).unwrap();
        let leaves = a.descendant_leaves(qi_schema::NodeId::ROOT);
        let schemas = vec![a];
        let dup = Mapping::from_clusters(vec![(
            "c".to_string(),
            vec![FieldRef::new(0, leaves[0]), FieldRef::new(0, leaves[1])],
        )]);
        assert!(matches!(
            dup.validate(&schemas),
            Err(MappingError::DuplicateSchema { .. })
        ));
        let bad_schema =
            Mapping::from_clusters(vec![("c".to_string(), vec![FieldRef::new(7, leaves[0])])]);
        assert!(matches!(
            bad_schema.validate(&schemas),
            Err(MappingError::SchemaOutOfRange { .. })
        ));
        let not_field = Mapping::from_clusters(vec![(
            "c".to_string(),
            vec![FieldRef::new(0, qi_schema::NodeId::ROOT)],
        )]);
        assert!(matches!(
            not_field.validate(&schemas),
            Err(MappingError::NotAField { .. })
        ));
    }

    #[test]
    fn lookup_helpers() {
        let (schemas, mapping) = figure2();
        let _ = &schemas;
        assert_eq!(mapping.len(), 4);
        assert!(!mapping.is_empty());
        assert!(mapping.by_concept("c_Adult").is_some());
        assert!(mapping.by_concept("c_Missing").is_none());
        let passengers = mapping.by_concept("c_Adult").unwrap().members[1];
        assert_eq!(mapping.clusters_of(passengers).len(), 4);
    }
}
