//! The integrated interface and the partition of clusters (§3).
//!
//! The merge algorithm produces an integrated schema tree whose leaves
//! stand for clusters. Based on their placement, clusters fall into three
//! disjoint classes (the paper's `C_groups`, `C_root`, `C_int`): members
//! of a multi-field group, direct children of the root, and isolated
//! single-leaf children of non-root internal nodes.

use crate::cluster::ClusterId;
use qi_schema::{NodeId, SchemaTree};
use std::collections::BTreeMap;

/// Identifier of a group inside a [`ClusterPartition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct GroupId(pub u32);

impl GroupId {
    /// Index into `ClusterPartition::groups`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for GroupId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A group of the integrated interface: ≥2 leaf siblings under one
/// non-root internal node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegratedGroup {
    /// The internal node the group hangs off.
    pub parent: NodeId,
    /// The group's leaves, in interface order.
    pub leaves: Vec<NodeId>,
    /// The clusters those leaves stand for (parallel to `leaves`).
    pub clusters: Vec<ClusterId>,
}

/// Which class a cluster falls into (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterClass {
    /// Member of `C_groups`, with its group.
    Grouped(GroupId),
    /// Member of `C_root` (direct child of the root).
    Root,
    /// Member of `C_int` (isolated child of a non-root internal node).
    Isolated,
}

/// The partition of an integrated interface's clusters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterPartition {
    /// The groups (`C_groups`, grouped by parent node).
    pub groups: Vec<IntegratedGroup>,
    /// `C_root`, in interface order.
    pub root: Vec<(NodeId, ClusterId)>,
    /// `C_int`, in interface order.
    pub isolated: Vec<(NodeId, ClusterId)>,
}

impl ClusterPartition {
    /// Class of a cluster, if it appears in the partition.
    pub fn class_of(&self, cluster: ClusterId) -> Option<ClusterClass> {
        for (i, g) in self.groups.iter().enumerate() {
            if g.clusters.contains(&cluster) {
                return Some(ClusterClass::Grouped(GroupId(i as u32)));
            }
        }
        if self.root.iter().any(|&(_, c)| c == cluster) {
            return Some(ClusterClass::Root);
        }
        if self.isolated.iter().any(|&(_, c)| c == cluster) {
            return Some(ClusterClass::Isolated);
        }
        None
    }
}

/// The integrated query interface: the merged schema tree plus the
/// correspondence from its leaves to clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Integrated {
    /// The merged, initially unlabeled (or partially labeled) schema tree.
    pub tree: SchemaTree,
    /// Integrated leaf → cluster. Ordered map for deterministic iteration.
    pub leaf_cluster: BTreeMap<NodeId, ClusterId>,
}

impl Integrated {
    /// The integrated leaf standing for a cluster, if any.
    pub fn leaf_of_cluster(&self, cluster: ClusterId) -> Option<NodeId> {
        self.leaf_cluster
            .iter()
            .find(|&(_, &c)| c == cluster)
            .map(|(&n, _)| n)
    }

    /// The cluster a leaf stands for.
    pub fn cluster_of_leaf(&self, leaf: NodeId) -> Option<ClusterId> {
        self.leaf_cluster.get(&leaf).copied()
    }

    /// Partition the clusters into `C_groups` / `C_root` / `C_int`
    /// according to leaf placement (§3).
    pub fn partition(&self) -> ClusterPartition {
        let mut partition = ClusterPartition::default();
        for group in self.tree.leaf_groups() {
            let clusters: Vec<ClusterId> = group
                .leaves
                .iter()
                .filter_map(|&l| self.cluster_of_leaf(l))
                .collect();
            if group.leaves.len() >= 2 {
                partition.groups.push(IntegratedGroup {
                    parent: group.parent,
                    leaves: group.leaves.clone(),
                    clusters,
                });
            } else if let (Some(&leaf), Some(&cluster)) = (group.leaves.first(), clusters.first()) {
                partition.isolated.push((leaf, cluster));
            }
        }
        for leaf in self.tree.root_leaves() {
            if let Some(cluster) = self.cluster_of_leaf(leaf) {
                partition.root.push((leaf, cluster));
            }
        }
        partition
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_schema::spec::{leaf, node};

    /// The Real Estate fragment of Figure 3: `C_groups` = {State, City},
    /// {Minimum, Maximum}; `C_int` = {Garage}; `C_root` = {Property Type,
    /// …, Zone}.
    fn figure3() -> Integrated {
        let tree = SchemaTree::build(
            "real-estate-integrated",
            vec![
                leaf("Property Type"),
                node("Location", vec![leaf("State"), leaf("City")]),
                node("Price", vec![leaf("Minimum"), leaf("Maximum")]),
                node("Parking", vec![leaf("Garage")]),
                leaf("Property Characteristics"),
                leaf("Property Availability"),
                leaf("Zone"),
            ],
        )
        .unwrap();
        let leaves = tree.descendant_leaves(qi_schema::NodeId::ROOT);
        let leaf_cluster: BTreeMap<NodeId, ClusterId> = leaves
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, ClusterId(i as u32)))
            .collect();
        Integrated { tree, leaf_cluster }
    }

    #[test]
    fn partition_matches_figure3() {
        let integrated = figure3();
        let p = integrated.partition();
        assert_eq!(p.groups.len(), 2);
        assert_eq!(p.groups[0].clusters.len(), 2); // State, City
        assert_eq!(p.groups[1].clusters.len(), 2); // Minimum, Maximum
        assert_eq!(p.isolated.len(), 1); // Garage
        assert_eq!(p.root.len(), 4); // Property Type/Characteristics/Availability, Zone
    }

    #[test]
    fn class_of_each_cluster() {
        let integrated = figure3();
        let p = integrated.partition();
        // Leaf order: PT, State, City, Min, Max, Garage, PC, PA, Zone.
        assert_eq!(p.class_of(ClusterId(0)), Some(ClusterClass::Root));
        assert_eq!(
            p.class_of(ClusterId(1)),
            Some(ClusterClass::Grouped(GroupId(0)))
        );
        assert_eq!(
            p.class_of(ClusterId(4)),
            Some(ClusterClass::Grouped(GroupId(1)))
        );
        assert_eq!(p.class_of(ClusterId(5)), Some(ClusterClass::Isolated));
        assert_eq!(p.class_of(ClusterId(8)), Some(ClusterClass::Root));
        assert_eq!(p.class_of(ClusterId(99)), None);
    }

    #[test]
    fn leaf_cluster_lookups() {
        let integrated = figure3();
        let leaf = integrated.leaf_of_cluster(ClusterId(3)).unwrap();
        assert_eq!(integrated.cluster_of_leaf(leaf), Some(ClusterId(3)));
        assert_eq!(integrated.leaf_of_cluster(ClusterId(42)), None);
    }
}
