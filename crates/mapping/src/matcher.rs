//! A label-similarity matcher deriving clusters when ground truth is
//! absent.
//!
//! The paper assumes the clusters are given ("we assume the semantic
//! relationships between the attributes ... have been already computed",
//! §2.1, citing \[10, 23, 24\]). The curated corpus ships ground-truth
//! clusters; this module provides a simple matcher for the synthetic
//! corpus and for users bringing their own interfaces: fields across
//! schemas are clustered by union-find over label similarity (string
//! equality, content-word-set equality, or token-wise synonymy against the
//! lexicon), with the constraint that two fields of the *same* schema are
//! never merged (intra-interface labels are assumed distinct concepts).

use crate::cluster::{FieldRef, Mapping};
use qi_lexicon::Lexicon;
use qi_schema::{NodeId, SchemaTree};
use qi_text::{normalized_levenshtein, prefix_abbreviation, ContentWord, LabelText};
use std::collections::HashSet;

/// Matcher configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatcherConfig {
    /// Enable the fuzzy token tier: abbreviations (`qty` ~ `quantity`)
    /// and near-identical spellings (`adress` ~ `address`). Off by
    /// default — fuzzy matching trades precision for recall.
    pub fuzzy: bool,
    /// Minimum normalized Levenshtein similarity for the fuzzy tier.
    pub min_similarity: f64,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            fuzzy: false,
            min_similarity: 0.85,
        }
    }
}

/// Union-find with path compression.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// True when two normalized labels should fall into the same cluster:
/// string-equal, content-word-set equal, or pairwise token synonymy with
/// equal cardinality (a lightweight version of Definition 1's `synonym`).
pub fn labels_match(a: &LabelText, b: &LabelText, lexicon: &Lexicon) -> bool {
    labels_match_with(a, b, lexicon, MatcherConfig::default())
}

/// [`labels_match`] with an explicit configuration.
pub fn labels_match_with(
    a: &LabelText,
    b: &LabelText,
    lexicon: &Lexicon,
    config: MatcherConfig,
) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    if a.string_equal(b) || a.word_equal(b) {
        return true;
    }
    if a.words.len() != b.words.len() {
        return false;
    }
    a.words.iter().all(|wa| {
        b.words.iter().any(|wb| {
            wa.key() == wb.key()
                || lexicon.are_synonyms(&wa.lemma, &wb.lemma)
                || (config.fuzzy && fuzzy_token_match(wa, wb, config))
        })
    })
}

/// Fuzzy token tier: abbreviation in either direction, or near-identical
/// stems.
fn fuzzy_token_match(a: &ContentWord, b: &ContentWord, config: MatcherConfig) -> bool {
    prefix_abbreviation(&a.lemma, &b.lemma)
        || prefix_abbreviation(&b.lemma, &a.lemma)
        || normalized_levenshtein(&a.stem, &b.stem) >= config.min_similarity
}

/// Derive a [`Mapping`] by clustering similarly labeled fields across
/// schemas. Unlabeled fields become singleton clusters.
pub fn match_by_labels(schemas: &[SchemaTree], lexicon: &Lexicon) -> Mapping {
    match_by_labels_with(schemas, lexicon, MatcherConfig::default())
}

/// [`match_by_labels`] with an explicit configuration.
pub fn match_by_labels_with(
    schemas: &[SchemaTree],
    lexicon: &Lexicon,
    config: MatcherConfig,
) -> Mapping {
    // Collect all fields with their normalized labels.
    let mut fields: Vec<(FieldRef, Option<LabelText>)> = Vec::new();
    for (schema_idx, tree) in schemas.iter().enumerate() {
        for leaf in tree.descendant_leaves(NodeId::ROOT) {
            let label = tree
                .node(leaf)
                .label
                .as_deref()
                .map(|raw| LabelText::new(raw, lexicon));
            fields.push((FieldRef::new(schema_idx, leaf), label));
        }
    }
    let mut uf = UnionFind::new(fields.len());
    for i in 0..fields.len() {
        let Some(label_i) = &fields[i].1 else { continue };
        for j in (i + 1)..fields.len() {
            if fields[i].0.schema == fields[j].0.schema {
                continue;
            }
            let Some(label_j) = &fields[j].1 else { continue };
            if !labels_match_with(label_i, label_j, lexicon, config) {
                continue;
            }
            // Merging must not put two fields of one schema in a cluster.
            let ri = uf.find(i);
            let rj = uf.find(j);
            if ri == rj {
                continue;
            }
            let schemas_i: HashSet<usize> = (0..fields.len())
                .filter(|&k| uf.find(k) == ri)
                .map(|k| fields[k].0.schema)
                .collect();
            let clash = (0..fields.len())
                .filter(|&k| uf.find(k) == rj)
                .any(|k| schemas_i.contains(&fields[k].0.schema));
            if !clash {
                uf.union(i, j);
            }
        }
    }
    // Emit clusters in first-member order for determinism.
    let mut root_order: Vec<usize> = Vec::new();
    let mut members: Vec<Vec<FieldRef>> = Vec::new();
    let roots: Vec<usize> = (0..fields.len()).map(|i| uf.find(i)).collect();
    for (&root, (field, _)) in roots.iter().zip(&fields) {
        let pos = match root_order.iter().position(|&r| r == root) {
            Some(p) => p,
            None => {
                root_order.push(root);
                members.push(Vec::new());
                members.len() - 1
            }
        };
        members[pos].push(*field);
    }
    Mapping::from_clusters(members.into_iter().enumerate().map(|(i, m)| {
        let concept = fields
            .iter()
            .find(|(f, _)| *f == m[0])
            .and_then(|(_, l)| l.as_ref())
            .map(|l| l.display.clone())
            .unwrap_or_else(|| format!("unlabeled_{i}"));
        (concept, m)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_schema::spec::{leaf, unlabeled_leaf};

    fn lt(s: &str, lex: &Lexicon) -> LabelText {
        LabelText::new(s, lex)
    }

    #[test]
    fn labels_match_levels() {
        let lex = Lexicon::builtin();
        assert!(labels_match(&lt("Zip Code", &lex), &lt("zip code:", &lex), &lex));
        assert!(labels_match(&lt("Type of Job", &lex), &lt("Job Type", &lex), &lex));
        assert!(labels_match(
            &lt("Area of Study", &lex),
            &lt("Field of Work", &lex),
            &lex
        ));
        assert!(!labels_match(&lt("Make", &lex), &lt("Model", &lex), &lex));
        assert!(!labels_match(&lt("", &lex), &lt("Make", &lex), &lex));
    }

    #[test]
    fn cardinality_mismatch_is_not_synonymy() {
        let lex = Lexicon::builtin();
        assert!(!labels_match(
            &lt("Class", &lex),
            &lt("Class of Ticket", &lex),
            &lex
        ));
    }

    #[test]
    fn match_by_labels_clusters_across_schemas() {
        let lex = Lexicon::builtin();
        let a = SchemaTree::build("a", vec![leaf("Make"), leaf("Model")]).unwrap();
        let b = SchemaTree::build("b", vec![leaf("Brand"), leaf("Model")]).unwrap();
        let mapping = match_by_labels(&[a, b], &lex);
        assert_eq!(mapping.len(), 2); // {Make,Brand}, {Model,Model}
        let make = &mapping.clusters[0];
        assert_eq!(make.members.len(), 2);
    }

    #[test]
    fn same_schema_fields_never_merge() {
        let lex = Lexicon::builtin();
        // Both labels in schema `a` are synonyms, but they must stay apart.
        let a = SchemaTree::build("a", vec![leaf("Make"), leaf("Brand")]).unwrap();
        let b = SchemaTree::build("b", vec![leaf("Manufacturer")]).unwrap();
        let mapping = match_by_labels(&[a, b], &lex);
        // Manufacturer joins exactly one of Make/Brand; the other stays
        // its own cluster.
        assert_eq!(mapping.len(), 2);
        let sizes: Vec<usize> = mapping.clusters.iter().map(|c| c.members.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
        mapping.validate(&[
            SchemaTree::build("a", vec![leaf("Make"), leaf("Brand")]).unwrap(),
            SchemaTree::build("b", vec![leaf("Manufacturer")]).unwrap(),
        ])
        .unwrap();
    }

    #[test]
    fn fuzzy_tier_catches_abbreviations_and_typos() {
        let lex = Lexicon::builtin();
        let fuzzy = MatcherConfig {
            fuzzy: true,
            ..MatcherConfig::default()
        };
        // Abbreviation: `Qty` for `Quantity`.
        assert!(!labels_match(&lt("Qty", &lex), &lt("Quantity", &lex), &lex));
        assert!(labels_match_with(
            &lt("Qty", &lex),
            &lt("Quantity", &lex),
            &lex,
            fuzzy
        ));
        // Typo: `Adress` for `Address`.
        assert!(labels_match_with(
            &lt("Adress", &lex),
            &lt("Address", &lex),
            &lex,
            fuzzy
        ));
        // Still rejects genuinely different labels.
        assert!(!labels_match_with(
            &lt("Make", &lex),
            &lt("Model", &lex),
            &lex,
            fuzzy
        ));
    }

    #[test]
    fn fuzzy_matcher_improves_recall() {
        let lex = Lexicon::builtin();
        let a = SchemaTree::build("a", vec![leaf("Quantity"), leaf("Address")]).unwrap();
        let b = SchemaTree::build("b", vec![leaf("Qty"), leaf("Adress")]).unwrap();
        let strict = match_by_labels(&[a.clone(), b.clone()], &lex);
        assert_eq!(strict.len(), 4, "strict matcher keeps all apart");
        let fuzzy = match_by_labels_with(
            &[a, b],
            &lex,
            MatcherConfig {
                fuzzy: true,
                ..MatcherConfig::default()
            },
        );
        assert_eq!(fuzzy.len(), 2, "fuzzy matcher pairs them up");
    }

    #[test]
    fn unlabeled_fields_are_singletons() {
        let lex = Lexicon::builtin();
        let a = SchemaTree::build("a", vec![unlabeled_leaf()]).unwrap();
        let b = SchemaTree::build("b", vec![unlabeled_leaf()]).unwrap();
        let mapping = match_by_labels(&[a, b], &lex);
        assert_eq!(mapping.len(), 2);
    }
}
