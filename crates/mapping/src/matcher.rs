//! A label-similarity matcher deriving clusters when ground truth is
//! absent.
//!
//! The paper assumes the clusters are given ("we assume the semantic
//! relationships between the attributes ... have been already computed",
//! §2.1, citing \[10, 23, 24\]). The curated corpus ships ground-truth
//! clusters; this module provides a matcher for the synthetic corpus and
//! for users bringing their own interfaces: fields across schemas are
//! clustered by union-find over label similarity (string equality,
//! content-word-set equality, or token-wise synonymy against the
//! lexicon), with the constraint that two fields of the *same* schema are
//! never merged (intra-interface labels are assumed distinct concepts).
//!
//! Two equivalent engines implement the clustering. The default is the
//! indexed candidate-generation engine of [`crate::index`] — inverted
//! postings (interned stems, synset ids, fuzzy signature buckets) feed a
//! schema-bitset union-find, so only fields sharing a posting are ever
//! compared. The original brute-force double loop is kept as a reference
//! implementation behind [`MatcherConfig::naive`]; both produce
//! bit-identical [`Mapping`]s, which the test suite asserts on randomized
//! corpora.

use crate::cluster::{FieldRef, Mapping};
use crate::index::indexed_components;
use qi_lexicon::Lexicon;
use qi_schema::{NodeId, SchemaTree};
use qi_text::{normalized_levenshtein, prefix_abbreviation, ContentWord, LabelText};
use std::collections::{HashMap, HashSet};

/// Matcher configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatcherConfig {
    /// Enable the fuzzy token tier: abbreviations (`qty` ~ `quantity`)
    /// and near-identical spellings (`adress` ~ `address`). Off by
    /// default — fuzzy matching trades precision for recall.
    pub fuzzy: bool,
    /// Minimum normalized Levenshtein similarity for the fuzzy tier.
    pub min_similarity: f64,
    /// Use the quadratic reference implementation instead of the indexed
    /// candidate-generation engine. The two produce identical mappings;
    /// the naive path exists as the equivalence oracle for tests and
    /// benchmarks.
    pub naive: bool,
    /// Worker threads for candidate scoring in the indexed engine
    /// (`0` = use the hardware, clamped by `qi-runtime`). Scoring only
    /// fans out on corpora large enough to repay the spawn cost, and the
    /// result is identical for every worker count.
    pub threads: usize,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            fuzzy: false,
            min_similarity: 0.85,
            naive: false,
            threads: 0,
        }
    }
}

/// Which tier of the match predicate accepted a label pair. The tiers
/// are ordered from cheapest to most expensive evidence; classification
/// is the *weakest sufficient* tier — a pair is `Fuzzy` only if at least
/// one token connection genuinely required the fuzzy tier, `Synonym`
/// only if at least one token needed the lexicon (and none needed
/// fuzzy), and so on. The drift benchmarks and `DriftReport` use these
/// to prove a corpus exercises the expensive scoring paths instead of
/// short-circuiting on identical strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchTier {
    /// Display strings are ASCII-case-equal.
    String,
    /// Content-word key sets are equal (covers reordered words and
    /// morphological variants that stem together).
    WordSet,
    /// At least one token connection needed lexicon synonymy.
    Synonym,
    /// At least one token connection needed the fuzzy tier
    /// (abbreviation or bounded edit distance).
    Fuzzy,
}

/// Operational counters of one matcher run. Always collected — every
/// field is a plain `u64` bumped on paths that already do real work, so
/// the cost is a handful of register increments per stage, not an
/// atomic or a lock. [`MatchStats::record`] copies the totals into a
/// [`qi_runtime::Telemetry`] registry at the run boundary.
///
/// Cross-engine invariant (asserted by `tests/matcher_props.rs`): the
/// indexed and naive engines report identical `pairs_accepted`,
/// per-tier `accepted_*` counters, and
/// `clusters_merged` on every corpus — the indexed candidate set is a
/// superset of the matching pairs and both engines merge accepted pairs
/// in ascending `(i, j)` order with the same clash predicate.
/// `pairs_generated`/`pairs_scored` legitimately differ (that gap is the
/// work the index saves).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Fields collected across all schemas.
    pub fields_total: u64,
    /// Fields carrying a non-empty normalized label.
    pub fields_labeled: u64,
    /// Distinct stem posting lists built by the indexed engine.
    pub stem_buckets: u64,
    /// Distinct synset-id posting lists.
    pub synset_buckets: u64,
    /// Distinct fuzzy signature-character buckets.
    pub fuzzy_buckets: u64,
    /// Largest posting list over all three index families.
    pub max_bucket_size: u64,
    /// Candidate pairs emitted by the postings (deduplicated); for the
    /// naive engine, every labeled cross-schema pair.
    pub pairs_generated: u64,
    /// Pairs run through the full match predicate.
    pub pairs_scored: u64,
    /// Pairs the predicate accepted.
    pub pairs_accepted: u64,
    /// Accepted pairs whose display strings were equal
    /// ([`MatchTier::String`]).
    pub accepted_string: u64,
    /// Accepted pairs with equal content-word key sets
    /// ([`MatchTier::WordSet`]).
    pub accepted_word_set: u64,
    /// Accepted pairs that needed lexicon synonymy
    /// ([`MatchTier::Synonym`]).
    pub accepted_synonym: u64,
    /// Accepted pairs that needed the fuzzy tier ([`MatchTier::Fuzzy`]).
    pub accepted_fuzzy: u64,
    /// Accepted pairs that actually united two components (root merges
    /// not blocked by the same-schema clash check).
    pub clusters_merged: u64,
    /// Whether the fuzzy tier fell back into the streaming unsound
    /// regime (signature blocking not exhaustive at this threshold).
    pub streaming_fallback: bool,
    /// Scoring blocks flushed by the streaming regime.
    pub streaming_blocks: u64,
}

impl MatchStats {
    /// Copy the totals into a telemetry registry under `matcher.*`:
    /// volumes as counters, index shape as gauges. A disabled registry
    /// makes this a no-op after one pointer check.
    pub fn record(&self, telemetry: &qi_runtime::Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.add("matcher.fields_total", self.fields_total);
        telemetry.add("matcher.fields_labeled", self.fields_labeled);
        telemetry.add("matcher.pairs_generated", self.pairs_generated);
        telemetry.add("matcher.pairs_scored", self.pairs_scored);
        telemetry.add("matcher.pairs_accepted", self.pairs_accepted);
        telemetry.add("matcher.accepted.string", self.accepted_string);
        telemetry.add("matcher.accepted.word_set", self.accepted_word_set);
        telemetry.add("matcher.accepted.synonym", self.accepted_synonym);
        telemetry.add("matcher.accepted.fuzzy", self.accepted_fuzzy);
        telemetry.add("matcher.clusters_merged", self.clusters_merged);
        telemetry.add("matcher.streaming_blocks", self.streaming_blocks);
        telemetry.add(
            "matcher.streaming_fallbacks",
            u64::from(self.streaming_fallback),
        );
        telemetry.gauge("matcher.postings.stem_buckets", self.stem_buckets);
        telemetry.gauge("matcher.postings.synset_buckets", self.synset_buckets);
        telemetry.gauge("matcher.postings.fuzzy_buckets", self.fuzzy_buckets);
        telemetry.gauge_max("matcher.postings.max_bucket_size", self.max_bucket_size);
    }

    /// Bump the accept counters for one accepted pair.
    pub(crate) fn count_accept(&mut self, tier: MatchTier) {
        self.pairs_accepted += 1;
        match tier {
            MatchTier::String => self.accepted_string += 1,
            MatchTier::WordSet => self.accepted_word_set += 1,
            MatchTier::Synonym => self.accepted_synonym += 1,
            MatchTier::Fuzzy => self.accepted_fuzzy += 1,
        }
    }

    /// Accumulate another run's counters into this one — used when a
    /// sharded pipeline matches many domains independently and reports
    /// one corpus-wide total. Volume counters add; index-shape gauges
    /// take the max; the streaming flag ORs.
    pub fn absorb(&mut self, other: &MatchStats) {
        self.fields_total += other.fields_total;
        self.fields_labeled += other.fields_labeled;
        self.stem_buckets = self.stem_buckets.max(other.stem_buckets);
        self.synset_buckets = self.synset_buckets.max(other.synset_buckets);
        self.fuzzy_buckets = self.fuzzy_buckets.max(other.fuzzy_buckets);
        self.max_bucket_size = self.max_bucket_size.max(other.max_bucket_size);
        self.pairs_generated += other.pairs_generated;
        self.pairs_scored += other.pairs_scored;
        self.pairs_accepted += other.pairs_accepted;
        self.accepted_string += other.accepted_string;
        self.accepted_word_set += other.accepted_word_set;
        self.accepted_synonym += other.accepted_synonym;
        self.accepted_fuzzy += other.accepted_fuzzy;
        self.clusters_merged += other.clusters_merged;
        self.streaming_fallback |= other.streaming_fallback;
        self.streaming_blocks += other.streaming_blocks;
    }
}

/// Union-find with path compression.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// True when two normalized labels should fall into the same cluster:
/// string-equal, content-word-set equal, or pairwise token synonymy with
/// equal cardinality (a lightweight version of Definition 1's `synonym`).
pub fn labels_match(a: &LabelText, b: &LabelText, lexicon: &Lexicon) -> bool {
    labels_match_with(a, b, lexicon, MatcherConfig::default())
}

/// [`labels_match`] with an explicit configuration.
pub fn labels_match_with(
    a: &LabelText,
    b: &LabelText,
    lexicon: &Lexicon,
    config: MatcherConfig,
) -> bool {
    match_tier_with(a, b, lexicon, config).is_some()
}

/// The match predicate with its verdict classified by [`MatchTier`]:
/// `None` when the pair does not match, otherwise the weakest tier whose
/// evidence sufficed. Boolean-equivalent to the original predicate —
/// per token, `∃wb (key ∨ synonym ∨ fuzzy)` distributes over the
/// disjunction, so probing the cheap evidence first can never change
/// whether a token (and hence the pair) matches, only which tier gets
/// the credit.
pub fn match_tier_with(
    a: &LabelText,
    b: &LabelText,
    lexicon: &Lexicon,
    config: MatcherConfig,
) -> Option<MatchTier> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    if a.string_equal(b) {
        return Some(MatchTier::String);
    }
    if a.word_equal(b) {
        return Some(MatchTier::WordSet);
    }
    if a.words.len() != b.words.len() {
        return None;
    }
    let mut needed_synonym = false;
    let mut needed_fuzzy = false;
    for wa in &a.words {
        if b.words.iter().any(|wb| wa.key() == wb.key()) {
            continue;
        }
        if b.words
            .iter()
            .any(|wb| lexicon.are_synonyms(&wa.lemma, &wb.lemma))
        {
            needed_synonym = true;
            continue;
        }
        if config.fuzzy && b.words.iter().any(|wb| fuzzy_token_match(wa, wb, config)) {
            needed_fuzzy = true;
            continue;
        }
        return None;
    }
    if needed_fuzzy {
        Some(MatchTier::Fuzzy)
    } else if needed_synonym {
        Some(MatchTier::Synonym)
    } else {
        // Every token key-matched yet the key sets were unequal — only
        // reachable when the labels' deduplicated stems coincide as sets
        // but `word_equal` said no (it cannot: equal cardinality plus a
        // total key-injection forces set equality). Kept as a defensive
        // classification rather than an unreachable!().
        Some(MatchTier::WordSet)
    }
}

/// Fuzzy token tier: abbreviation in either direction, or near-identical
/// stems.
pub(crate) fn fuzzy_token_match(a: &ContentWord, b: &ContentWord, config: MatcherConfig) -> bool {
    if prefix_abbreviation(&a.lemma, &b.lemma) || prefix_abbreviation(&b.lemma, &a.lemma) {
        return true;
    }
    // Length bound: edit distance is at least the length difference, so
    // the best reachable similarity is min_len/max_len — when even that
    // falls short of the threshold, skip the dynamic program entirely.
    // Computed with the same expression `normalized_levenshtein` uses so
    // the cutoff can never disagree with the full computation.
    let char_len = |s: &str| {
        if s.is_ascii() {
            s.len()
        } else {
            s.chars().count()
        }
    };
    let (la, lb) = (char_len(&a.stem), char_len(&b.stem));
    let (min_len, max_len) = (la.min(lb), la.max(lb));
    if max_len > 0 && 1.0 - (max_len - min_len) as f64 / (max_len as f64) < config.min_similarity {
        return false;
    }
    normalized_levenshtein(&a.stem, &b.stem) >= config.min_similarity
}

/// Derive a [`Mapping`] by clustering similarly labeled fields across
/// schemas. Unlabeled fields become singleton clusters.
pub fn match_by_labels(schemas: &[SchemaTree], lexicon: &Lexicon) -> Mapping {
    match_by_labels_with(schemas, lexicon, MatcherConfig::default())
}

/// [`match_by_labels`] with an explicit configuration.
pub fn match_by_labels_with(
    schemas: &[SchemaTree],
    lexicon: &Lexicon,
    config: MatcherConfig,
) -> Mapping {
    match_by_labels_stats(schemas, lexicon, config).0
}

/// [`match_by_labels_with`], additionally returning the run's
/// [`MatchStats`].
pub fn match_by_labels_stats(
    schemas: &[SchemaTree],
    lexicon: &Lexicon,
    config: MatcherConfig,
) -> (Mapping, MatchStats) {
    let fields = collect_fields(schemas, lexicon);
    let mut stats = MatchStats {
        fields_total: fields.len() as u64,
        fields_labeled: fields
            .iter()
            .filter(|(_, l)| l.as_ref().is_some_and(|l| !l.is_empty()))
            .count() as u64,
        ..MatchStats::default()
    };
    let roots = if config.naive {
        naive_components(&fields, lexicon, config, &mut stats)
    } else {
        indexed_components(&fields, lexicon, config, &mut stats)
    };
    (emit_clusters(&fields, &roots), stats)
}

/// Collect all fields with their normalized labels, in schema order then
/// leaf preorder — the field order every downstream determinism claim is
/// stated against.
pub(crate) fn collect_fields(
    schemas: &[SchemaTree],
    lexicon: &Lexicon,
) -> Vec<(FieldRef, Option<LabelText>)> {
    let mut fields: Vec<(FieldRef, Option<LabelText>)> = Vec::new();
    for (schema_idx, tree) in schemas.iter().enumerate() {
        for leaf in tree.descendant_leaves(NodeId::ROOT) {
            let label = tree
                .node(leaf)
                .label
                .as_deref()
                .map(|raw| LabelText::new(raw, lexicon));
            fields.push((FieldRef::new(schema_idx, leaf), label));
        }
    }
    fields
}

/// The reference clustering: compare every cross-schema pair in
/// ascending `(i, j)` order, rescanning the whole field list for the
/// same-schema clash check on each tentative merge. O(n²) comparisons,
/// O(n) per merge — kept verbatim as the equivalence oracle for the
/// indexed engine.
fn naive_components(
    fields: &[(FieldRef, Option<LabelText>)],
    lexicon: &Lexicon,
    config: MatcherConfig,
    stats: &mut MatchStats,
) -> Vec<usize> {
    let mut uf = UnionFind::new(fields.len());
    for i in 0..fields.len() {
        let Some(label_i) = &fields[i].1 else {
            continue;
        };
        for j in (i + 1)..fields.len() {
            if fields[i].0.schema == fields[j].0.schema {
                continue;
            }
            let Some(label_j) = &fields[j].1 else {
                continue;
            };
            stats.pairs_generated += 1;
            stats.pairs_scored += 1;
            let Some(tier) = match_tier_with(label_i, label_j, lexicon, config) else {
                continue;
            };
            stats.count_accept(tier);
            // Merging must not put two fields of one schema in a cluster.
            let ri = uf.find(i);
            let rj = uf.find(j);
            if ri == rj {
                continue;
            }
            let schemas_i: HashSet<usize> = (0..fields.len())
                .filter(|&k| uf.find(k) == ri)
                .map(|k| fields[k].0.schema)
                .collect();
            let clash = (0..fields.len())
                .filter(|&k| uf.find(k) == rj)
                .any(|k| schemas_i.contains(&fields[k].0.schema));
            if !clash {
                uf.union(i, j);
                stats.clusters_merged += 1;
            }
        }
    }
    (0..fields.len()).map(|i| uf.find(i)).collect()
}

/// Emit clusters in first-member order: the partition (and the concept
/// naming) depends only on which fields share a root, so both engines
/// funnel through this one function.
pub(crate) fn emit_clusters(fields: &[(FieldRef, Option<LabelText>)], roots: &[usize]) -> Mapping {
    let mut pos_of: HashMap<usize, usize> = HashMap::new();
    let mut members: Vec<Vec<FieldRef>> = Vec::new();
    let mut first_label: Vec<Option<&LabelText>> = Vec::new();
    for (&root, (field, label)) in roots.iter().zip(fields) {
        let pos = *pos_of.entry(root).or_insert_with(|| {
            members.push(Vec::new());
            first_label.push(label.as_ref());
            members.len() - 1
        });
        members[pos].push(*field);
    }
    Mapping::from_clusters(members.into_iter().enumerate().map(|(i, m)| {
        let concept = first_label[i]
            .map(|l| l.display.clone())
            .unwrap_or_else(|| format!("unlabeled_{i}"));
        (concept, m)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_schema::spec::{leaf, unlabeled_leaf};

    fn lt(s: &str, lex: &Lexicon) -> LabelText {
        LabelText::new(s, lex)
    }

    #[test]
    fn labels_match_levels() {
        let lex = Lexicon::builtin();
        assert!(labels_match(
            &lt("Zip Code", &lex),
            &lt("zip code:", &lex),
            &lex
        ));
        assert!(labels_match(
            &lt("Type of Job", &lex),
            &lt("Job Type", &lex),
            &lex
        ));
        assert!(labels_match(
            &lt("Area of Study", &lex),
            &lt("Field of Work", &lex),
            &lex
        ));
        assert!(!labels_match(&lt("Make", &lex), &lt("Model", &lex), &lex));
        assert!(!labels_match(&lt("", &lex), &lt("Make", &lex), &lex));
    }

    #[test]
    fn cardinality_mismatch_is_not_synonymy() {
        let lex = Lexicon::builtin();
        assert!(!labels_match(
            &lt("Class", &lex),
            &lt("Class of Ticket", &lex),
            &lex
        ));
    }

    #[test]
    fn match_by_labels_clusters_across_schemas() {
        let lex = Lexicon::builtin();
        let a = SchemaTree::build("a", vec![leaf("Make"), leaf("Model")]).unwrap();
        let b = SchemaTree::build("b", vec![leaf("Brand"), leaf("Model")]).unwrap();
        let mapping = match_by_labels(&[a, b], &lex);
        assert_eq!(mapping.len(), 2); // {Make,Brand}, {Model,Model}
        let make = &mapping.clusters[0];
        assert_eq!(make.members.len(), 2);
    }

    #[test]
    fn same_schema_fields_never_merge() {
        let lex = Lexicon::builtin();
        // Both labels in schema `a` are synonyms, but they must stay apart.
        let a = SchemaTree::build("a", vec![leaf("Make"), leaf("Brand")]).unwrap();
        let b = SchemaTree::build("b", vec![leaf("Manufacturer")]).unwrap();
        let mapping = match_by_labels(&[a, b], &lex);
        // Manufacturer joins exactly one of Make/Brand; the other stays
        // its own cluster.
        assert_eq!(mapping.len(), 2);
        let sizes: Vec<usize> = mapping.clusters.iter().map(|c| c.members.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
        mapping
            .validate(&[
                SchemaTree::build("a", vec![leaf("Make"), leaf("Brand")]).unwrap(),
                SchemaTree::build("b", vec![leaf("Manufacturer")]).unwrap(),
            ])
            .unwrap();
    }

    #[test]
    fn fuzzy_tier_catches_abbreviations_and_typos() {
        let lex = Lexicon::builtin();
        let fuzzy = MatcherConfig {
            fuzzy: true,
            ..MatcherConfig::default()
        };
        // Abbreviation: `Qty` for `Quantity`.
        assert!(!labels_match(&lt("Qty", &lex), &lt("Quantity", &lex), &lex));
        assert!(labels_match_with(
            &lt("Qty", &lex),
            &lt("Quantity", &lex),
            &lex,
            fuzzy
        ));
        // Typo: `Adress` for `Address`.
        assert!(labels_match_with(
            &lt("Adress", &lex),
            &lt("Address", &lex),
            &lex,
            fuzzy
        ));
        // Still rejects genuinely different labels.
        assert!(!labels_match_with(
            &lt("Make", &lex),
            &lt("Model", &lex),
            &lex,
            fuzzy
        ));
    }

    #[test]
    fn fuzzy_matcher_improves_recall() {
        let lex = Lexicon::builtin();
        let a = SchemaTree::build("a", vec![leaf("Quantity"), leaf("Address")]).unwrap();
        let b = SchemaTree::build("b", vec![leaf("Qty"), leaf("Adress")]).unwrap();
        let strict = match_by_labels(&[a.clone(), b.clone()], &lex);
        assert_eq!(strict.len(), 4, "strict matcher keeps all apart");
        let fuzzy = match_by_labels_with(
            &[a, b],
            &lex,
            MatcherConfig {
                fuzzy: true,
                ..MatcherConfig::default()
            },
        );
        assert_eq!(fuzzy.len(), 2, "fuzzy matcher pairs them up");
    }

    #[test]
    fn unlabeled_fields_are_singletons() {
        let lex = Lexicon::builtin();
        let a = SchemaTree::build("a", vec![unlabeled_leaf()]).unwrap();
        let b = SchemaTree::build("b", vec![unlabeled_leaf()]).unwrap();
        let mapping = match_by_labels(&[a, b], &lex);
        assert_eq!(mapping.len(), 2);
    }

    /// Hand-built corpus exercising every match tier: exact strings,
    /// reordered words, synonyms, abbreviations, typos, unlabeled
    /// fields, and same-schema clash pressure.
    fn mixed_corpus() -> Vec<SchemaTree> {
        vec![
            SchemaTree::build(
                "airfare",
                vec![
                    leaf("Departure City"),
                    leaf("Destination City"),
                    leaf("Quantity"),
                    leaf("Class of Ticket"),
                    unlabeled_leaf(),
                ],
            )
            .unwrap(),
            SchemaTree::build(
                "flights",
                vec![
                    leaf("City of Departure"),
                    leaf("Qty"),
                    leaf("Adress"),
                    leaf("Make"),
                    leaf("Brand"),
                ],
            )
            .unwrap(),
            SchemaTree::build(
                "travel",
                vec![
                    leaf("departure city:"),
                    leaf("Address"),
                    leaf("Manufacturer"),
                    leaf("Ticket Class"),
                    unlabeled_leaf(),
                ],
            )
            .unwrap(),
        ]
    }

    #[test]
    fn indexed_engine_matches_naive_exactly() {
        let lex = Lexicon::builtin();
        let schemas = mixed_corpus();
        for fuzzy in [false, true] {
            let base = MatcherConfig {
                fuzzy,
                ..MatcherConfig::default()
            };
            let indexed = match_by_labels_with(&schemas, &lex, base);
            let naive = match_by_labels_with(
                &schemas,
                &lex,
                MatcherConfig {
                    naive: true,
                    ..base
                },
            );
            assert_eq!(indexed, naive, "fuzzy={fuzzy}");
            indexed.validate(&schemas).expect("valid mapping");
        }
    }

    #[test]
    fn indexed_engine_matches_naive_with_low_similarity_floor() {
        // min_similarity low enough that the first-letter signature
        // blocking is unsound; the index must fall back to the
        // universal fuzzy bucket and still agree with naive.
        let lex = Lexicon::builtin();
        let schemas = mixed_corpus();
        let config = MatcherConfig {
            fuzzy: true,
            min_similarity: 0.3,
            ..MatcherConfig::default()
        };
        let indexed = match_by_labels_with(&schemas, &lex, config);
        let naive = match_by_labels_with(
            &schemas,
            &lex,
            MatcherConfig {
                naive: true,
                ..config
            },
        );
        assert_eq!(indexed, naive);
    }

    #[test]
    fn indexed_engine_matches_naive_at_fp_threshold_boundary() {
        // Regression: at min_similarity = 0.8 these 10-char stems differ
        // in their first two characters, so the pair shares no signature
        // bucket, yet its similarity 1 - 2/10 rounds to exactly 0.8 and
        // the fuzzy tier accepts it. The soundness check must classify
        // this regime as unsound and fall back to streaming all pairs —
        // a check using the rearranged (1 - 0.8)*10 < 2 expression kept
        // the buckets and silently dropped the match.
        let lex = Lexicon::builtin();
        let schemas = vec![
            SchemaTree::build("a", vec![leaf("abcdefghij")]).unwrap(),
            SchemaTree::build("b", vec![leaf("xycdefghij")]).unwrap(),
        ];
        let config = MatcherConfig {
            fuzzy: true,
            min_similarity: 0.8,
            ..MatcherConfig::default()
        };
        let indexed = match_by_labels_with(&schemas, &lex, config);
        let naive = match_by_labels_with(
            &schemas,
            &lex,
            MatcherConfig {
                naive: true,
                ..config
            },
        );
        assert_eq!(indexed, naive);
        // Both engines must actually cluster the pair — otherwise this
        // test could pass with both of them missing the match.
        assert_eq!(indexed.len(), 1);
    }
}
