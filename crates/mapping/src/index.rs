//! Indexed candidate generation for the label-similarity matcher.
//!
//! The naive matcher compares every cross-schema field pair and rescans
//! all fields on each merge to enforce the same-schema invariant —
//! O(n²) comparisons with an O(n) scan per union, effectively cubic.
//! This module replaces both bottlenecks while producing the *identical*
//! [`crate::Mapping`]:
//!
//! 1. **Candidate generation** — inverted postings over each field's
//!    normalized label: interned stem keys, lexicon synset ids (so
//!    synonym pairs land in the same posting list without pairwise
//!    `are_synonyms` probes), and, under the fuzzy tier, first/second
//!    character signature buckets covering the abbreviation and
//!    bounded-Levenshtein predicates. Only fields sharing at least one
//!    posting are ever compared.
//! 2. **Schema-aware union-find** — each root carries a schema bitset
//!    (`words × u64`); the clash check becomes a bitwise AND over
//!    `words` machine words and unions OR the bitsets together.
//! 3. **Parallel candidate scoring** — the match predicate is pure, so
//!    candidate pairs are scored on the `qi-runtime` bounded pool
//!    (chunk-partitioned) and the verdicts are merged *sequentially in
//!    ascending `(i, j)` order*, exactly the order the naive double loop
//!    visits matching pairs. The union-find therefore evolves through
//!    the same state sequence and the output clusters are equal to the
//!    naive path's, regardless of worker count.
//!
//! # Why the candidate set is exhaustive
//!
//! [`labels_match_with`] accepts a pair only if (a) the display strings
//! are ASCII-case-equal, (b) the content-word key sets are equal, or
//! (c) word counts agree and every word of one label matches a word of
//! the other via stem equality, synonymy, or the fuzzy tier. Case (a)
//! implies (b) (tokenization lowercases), and (b) and (c) both require
//! at least one word-level connection, which the postings cover:
//! stem-equal words share a stem posting; synonymous words resolve to
//! intersecting synset id sets and share a synset posting; fuzzy
//! connections share a signature bucket (see below). Hence every
//! matching pair co-occurs in some posting list.
//!
//! The fuzzy signature posts each content word under the first **and**
//! second characters of its stem and lemma. Abbreviations preserve the
//! first character, so abbreviation pairs share a first-character
//! bucket. For the Levenshtein predicate the blocking is sound whenever
//! every accepted pair is within edit distance 1: a distance-1 pair
//! either keeps its first character (shared first bucket) or edits
//! position 0, in which case the second characters align with the other
//! string's first or second character (shared bucket either way).
//! Whether a distance-2 pair can be accepted is decided with the *same*
//! floating-point expression the similarity DP uses (see
//! [`prefix_blocking_sound`]), so rounding can never make the DP accept
//! a pair the blocking argument classified as rejected. Outside the
//! sound regime every labeled cross-schema pair is a candidate; those
//! pairs are streamed through fixed-size blocks — still exact, no
//! longer sub-quadratic in time, but O(block) rather than O(n²) memory.

use crate::cluster::FieldRef;
use crate::matcher::{match_tier_with, MatchStats, MatchTier, MatcherConfig};
use qi_lexicon::{Lexicon, SynsetId};
use qi_runtime::{parallel_map_chunked, Interner};
use qi_text::LabelText;
use std::collections::HashMap;

/// Candidate counts below this are scored sequentially — the corpus is
/// small enough that spawning workers costs more than the scoring.
const PARALLEL_SCORING_THRESHOLD: usize = 4096;

/// Candidates handed to a pool worker per claim (see
/// [`parallel_map_chunked`]).
const SCORING_CHUNK: usize = 1024;

type Field = (FieldRef, Option<LabelText>);

fn pack(i: u32, j: u32) -> u64 {
    ((i as u64) << 32) | j as u64
}

fn unpack(packed: u64) -> (usize, usize) {
    ((packed >> 32) as usize, (packed & 0xFFFF_FFFF) as usize)
}

/// Compute the connected components of the match graph without
/// materializing it: generate candidates from postings, score them (in
/// parallel when worthwhile), and merge in deterministic pair order.
/// Returns the union-find root of every field. Pair volumes and index
/// shape are accumulated into `stats` (plain local counters — no
/// telemetry calls on this path).
pub(crate) fn indexed_components(
    fields: &[Field],
    lexicon: &Lexicon,
    config: MatcherConfig,
    stats: &mut MatchStats,
) -> Vec<usize> {
    let schema_count = fields.iter().map(|(f, _)| f.schema + 1).max().unwrap_or(0);
    let mut uf = SchemaUnionFind::new(fields, schema_count);
    if config.fuzzy && !prefix_blocking_sound(fields, config) {
        stats.streaming_fallback = true;
        merge_all_pairs_streaming(fields, lexicon, config, &mut uf, stats);
    } else {
        let candidates = generate_candidates(fields, lexicon, config, stats);
        let verdicts = score_candidates(fields, &candidates, lexicon, config);
        stats.pairs_scored += candidates.len() as u64;
        for (&packed, &verdict) in candidates.iter().zip(&verdicts) {
            if let Some(tier) = verdict {
                stats.count_accept(tier);
                let (i, j) = unpack(packed);
                if uf.merge(i, j) {
                    stats.clusters_merged += 1;
                }
            }
        }
    }
    (0..fields.len()).map(|i| uf.find(i)).collect()
}

/// Pairs buffered per scoring block in the universal-fuzzy regime; caps
/// peak candidate memory at `BLOCK_PAIRS × 8` bytes while keeping blocks
/// large enough for [`score_candidates`] to fan out on the pool.
const BLOCK_PAIRS: usize = 1 << 16;

/// Universal-fuzzy regime: signature buckets cannot block the
/// Levenshtein tier, so every labeled cross-schema pair is a candidate.
/// Rather than materializing the O(n²) candidate list (the naive engine
/// only pays time there, not memory), the pairs are streamed through a
/// fixed-size block — scored, then merged in ascending `(i, j)` order —
/// so the union-find still evolves through exactly the naive state
/// sequence. Scoring never reads the union-find, so interleaving the
/// block merges cannot change any verdict.
fn merge_all_pairs_streaming(
    fields: &[Field],
    lexicon: &Lexicon,
    config: MatcherConfig,
    uf: &mut SchemaUnionFind,
    stats: &mut MatchStats,
) {
    let labeled: Vec<bool> = fields
        .iter()
        .map(|(_, l)| l.as_ref().is_some_and(|l| !l.is_empty()))
        .collect();
    let mut block: Vec<u64> = Vec::with_capacity(BLOCK_PAIRS);
    let flush = |block: &mut Vec<u64>, uf: &mut SchemaUnionFind, stats: &mut MatchStats| {
        if block.is_empty() {
            return;
        }
        stats.streaming_blocks += 1;
        stats.pairs_generated += block.len() as u64;
        stats.pairs_scored += block.len() as u64;
        let verdicts = score_candidates(fields, block, lexicon, config);
        for (&packed, &verdict) in block.iter().zip(&verdicts) {
            if let Some(tier) = verdict {
                stats.count_accept(tier);
                let (i, j) = unpack(packed);
                if uf.merge(i, j) {
                    stats.clusters_merged += 1;
                }
            }
        }
        block.clear();
    };
    for i in 0..fields.len() {
        if !labeled[i] {
            continue;
        }
        for j in (i + 1)..fields.len() {
            if !labeled[j] || fields[j].0.schema == fields[i].0.schema {
                continue;
            }
            block.push(pack(i as u32, j as u32));
            if block.len() == BLOCK_PAIRS {
                flush(&mut block, uf, stats);
            }
        }
    }
    flush(&mut block, uf, stats);
}

/// Build the inverted postings and emit the deduplicated candidate pair
/// list in ascending `(i, j)` order. Callers must have established that
/// signature blocking is exhaustive ([`prefix_blocking_sound`]) before
/// relying on this under `config.fuzzy`; the universal regime goes
/// through [`merge_all_pairs_streaming`] instead.
fn generate_candidates(
    fields: &[Field],
    lexicon: &Lexicon,
    config: MatcherConfig,
    stats: &mut MatchStats,
) -> Vec<u64> {
    // Stem keys are interned to dense symbols so stem postings live in a
    // plain Vec instead of a string-keyed map.
    let stems = Interner::new();
    let mut stem_postings: Vec<Vec<u32>> = Vec::new();
    let mut synset_postings: HashMap<SynsetId, Vec<u32>> = HashMap::new();
    let mut fuzzy_postings: HashMap<char, Vec<u32>> = HashMap::new();

    let push_unique = |list: &mut Vec<u32>, i: u32| {
        // Posting lists grow in field order, so duplicates from one
        // field's words are always adjacent.
        if list.last() != Some(&i) {
            list.push(i);
        }
    };
    for (idx, (_, label)) in fields.iter().enumerate() {
        let Some(label) = label else { continue };
        if label.is_empty() {
            continue;
        }
        let i = idx as u32;
        for word in &label.words {
            let sym = stems.intern(&word.stem);
            if sym.0 as usize == stem_postings.len() {
                stem_postings.push(Vec::new());
            }
            push_unique(&mut stem_postings[sym.0 as usize], i);
            for sid in lexicon.resolve(&word.lemma) {
                push_unique(synset_postings.entry(sid).or_default(), i);
            }
            if config.fuzzy {
                for c in signature_chars(&word.stem, &word.lemma) {
                    push_unique(fuzzy_postings.entry(c).or_default(), i);
                }
            }
        }
    }

    stats.stem_buckets = stem_postings.len() as u64;
    stats.synset_buckets = synset_postings.len() as u64;
    stats.fuzzy_buckets = fuzzy_postings.len() as u64;
    stats.max_bucket_size = stem_postings
        .iter()
        .chain(synset_postings.values())
        .chain(fuzzy_postings.values())
        .map(|list| list.len() as u64)
        .max()
        .unwrap_or(0);

    let mut pairs: Vec<u64> = Vec::new();
    {
        let mut add_list = |list: &[u32]| {
            for (x, &i) in list.iter().enumerate() {
                let schema_i = fields[i as usize].0.schema;
                for &j in &list[x + 1..] {
                    if fields[j as usize].0.schema != schema_i {
                        pairs.push(pack(i, j));
                    }
                }
            }
        };
        for list in &stem_postings {
            add_list(list);
        }
        for list in synset_postings.values() {
            add_list(list);
        }
        for list in fuzzy_postings.values() {
            add_list(list);
        }
    }
    // Posting-map iteration order is arbitrary; sorting restores the
    // naive loop's ascending (i, j) order and drops duplicates from
    // fields sharing several postings.
    pairs.sort_unstable();
    pairs.dedup();
    stats.pairs_generated += pairs.len() as u64;
    pairs
}

/// True when first/second-character buckets are an exhaustive blocking
/// for the fuzzy Levenshtein predicate: threshold positive and every
/// acceptable pair within edit distance 1.
///
/// Whether a distance-2 pair can be accepted is decided with the *same*
/// floating-point expression `normalized_levenshtein` acceptance uses —
/// `1.0 - distance / length >= min_similarity` — never an algebraic
/// rearrangement of it. E.g. at `min_similarity = 0.8` with 10-char
/// stems, `1.0 - 2.0 / 10.0` rounds to exactly `0.8` (accepted by the
/// DP) while the rearranged `(1 - 0.8) * 10` rounds to
/// `1.9999999999999996 < 2` — deciding with the latter would declare
/// blocking sound and silently drop the match. Division is monotone, so
/// if no stem length admits an accepted distance-2 pair, no distance ≥ 2
/// pair is accepted at all.
pub(crate) fn prefix_blocking_sound(fields: &[Field], config: MatcherConfig) -> bool {
    if config.min_similarity <= 0.0 {
        // Distance-1 substitutions between single-character stems score
        // 0.0 and share no signature bucket, so a non-positive threshold
        // is never bucket-blockable.
        return false;
    }
    let max_stem_chars = fields
        .iter()
        .filter_map(|(_, l)| l.as_ref())
        .flat_map(|l| l.words.iter())
        .map(|w| {
            if w.stem.is_ascii() {
                w.stem.len()
            } else {
                w.stem.chars().count()
            }
        })
        .max()
        .unwrap_or(0);
    !(2..=max_stem_chars).any(|len| 1.0 - 2.0 / (len as f64) >= config.min_similarity)
}

/// The signature characters of one content word: first and second
/// characters of its stem and of its lemma (deduplicated).
pub(crate) fn signature_chars(stem: &str, lemma: &str) -> impl Iterator<Item = char> {
    let mut out: [Option<char>; 4] = [None; 4];
    let mut n = 0;
    for c in stem.chars().take(2).chain(lemma.chars().take(2)) {
        if !out[..n].contains(&Some(c)) {
            out[n] = Some(c);
            n += 1;
        }
    }
    out.into_iter().flatten()
}

/// Score every candidate pair with the full match predicate. Pure, so
/// large candidate sets fan out on the bounded pool; the verdict vector
/// is in candidate order either way. Verdicts carry the accepting
/// [`MatchTier`] so both engines attribute accepts identically.
fn score_candidates(
    fields: &[Field],
    candidates: &[u64],
    lexicon: &Lexicon,
    config: MatcherConfig,
) -> Vec<Option<MatchTier>> {
    let score_one = |packed: u64| {
        let (i, j) = unpack(packed);
        match (&fields[i].1, &fields[j].1) {
            (Some(a), Some(b)) => match_tier_with(a, b, lexicon, config),
            _ => None,
        }
    };
    if candidates.len() >= PARALLEL_SCORING_THRESHOLD {
        parallel_map_chunked(candidates, config.threads, SCORING_CHUNK, |_, &c| {
            score_one(c)
        })
    } else {
        candidates.iter().map(|&c| score_one(c)).collect()
    }
}

/// Union-find whose roots carry a schema bitset, turning the
/// same-schema clash check from an O(n) membership scan into an
/// O(words) bitwise AND.
struct SchemaUnionFind {
    parent: Vec<u32>,
    /// Row-major `n × words` bitset storage; only root rows are kept
    /// current.
    bits: Vec<u64>,
    words: usize,
}

impl SchemaUnionFind {
    fn new(fields: &[Field], schema_count: usize) -> Self {
        let words = schema_count.div_ceil(64).max(1);
        let mut bits = vec![0u64; fields.len() * words];
        for (i, (field, _)) in fields.iter().enumerate() {
            bits[i * words + field.schema / 64] |= 1u64 << (field.schema % 64);
        }
        SchemaUnionFind {
            parent: (0..fields.len() as u32).collect(),
            bits,
            words,
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Union the components of `i` and `j` unless they share a schema.
    /// Mirrors the naive merge exactly: same no-op on equal roots, same
    /// clash predicate, same root orientation (`root(i) → root(j)`).
    /// Returns whether two components were actually united.
    fn merge(&mut self, i: usize, j: usize) -> bool {
        let ri = self.find(i);
        let rj = self.find(j);
        if ri == rj {
            return false;
        }
        let clash = (0..self.words)
            .any(|w| self.bits[ri * self.words + w] & self.bits[rj * self.words + w] != 0);
        if clash {
            return false;
        }
        self.parent[ri] = rj as u32;
        for w in 0..self.words {
            let from = self.bits[ri * self.words + w];
            self.bits[rj * self.words + w] |= from;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (i, j) in [(0u32, 1u32), (7, 4_000_000), (u32::MAX - 1, u32::MAX)] {
            assert_eq!(unpack(pack(i, j)), (i as usize, j as usize));
        }
        // Packed order is (i, j) lexicographic order.
        assert!(pack(1, 9) < pack(2, 3));
        assert!(pack(2, 3) < pack(2, 4));
    }

    #[test]
    fn signature_chars_dedup() {
        let sig: Vec<char> = signature_chars("aa", "ab").collect();
        assert_eq!(sig, vec!['a', 'b']);
        let sig: Vec<char> = signature_chars("qty", "quantity").collect();
        assert_eq!(sig, vec!['q', 't', 'u']);
        let sig: Vec<char> = signature_chars("x", "x").collect();
        assert_eq!(sig, vec!['x']);
    }

    #[test]
    fn prefix_blocking_soundness_uses_dp_expression() {
        let lex = Lexicon::builtin();
        let field = |raw: &str| {
            (
                FieldRef::new(0, qi_schema::NodeId::ROOT),
                Some(LabelText::new(raw, &lex)),
            )
        };
        let config = |min_similarity: f64| MatcherConfig {
            fuzzy: true,
            min_similarity,
            ..MatcherConfig::default()
        };
        // 10-char stem at min_similarity = 0.8: 1 - 2/10 rounds to
        // exactly 0.8, so the DP accepts a distance-2 pair and blocking
        // must be declared unsound. The rearranged (1 - 0.8)*10 < 2
        // check got this wrong.
        let ten = vec![field("abcdefghij")];
        assert!(!prefix_blocking_sound(&ten, config(0.8)));
        // Nudged above the boundary, distance-2 pairs are rejected again.
        assert!(prefix_blocking_sound(&ten, config(0.8 + 1e-9)));
        // Other round thresholds that tripped the rearranged check.
        let twenty = vec![field("abcdefghijklmnopqrst")];
        assert!(!prefix_blocking_sound(&twenty, config(0.9)));
        let six = vec![field("abcdef")];
        assert!(!prefix_blocking_sound(&six, config(2.0 / 3.0)));
        // Short stems stay sound at a strict threshold.
        let three = vec![field("abc")];
        assert!(prefix_blocking_sound(&three, config(0.8)));
    }

    #[test]
    fn bitset_union_find_enforces_schema_invariant() {
        // Three fields: schemas 0, 1, 0. (0,1) may merge; (1,2) then
        // clashes because the component already contains schema 0.
        let fields: Vec<Field> = vec![
            (FieldRef::new(0, qi_schema::NodeId::ROOT), None),
            (FieldRef::new(1, qi_schema::NodeId::ROOT), None),
            (FieldRef::new(0, qi_schema::NodeId::ROOT), None),
        ];
        let mut uf = SchemaUnionFind::new(&fields, 2);
        uf.merge(0, 1);
        assert_eq!(uf.find(0), uf.find(1));
        uf.merge(1, 2);
        assert_ne!(uf.find(1), uf.find(2), "clash must block the merge");
        // Merging inside one component is a no-op, not a clash panic.
        uf.merge(0, 1);
        assert_eq!(uf.find(0), uf.find(1));
    }

    #[test]
    fn bitset_union_find_spans_many_words() {
        // 130 schemas forces a 3-word bitset; chain unions across words.
        let fields: Vec<Field> = (0..130)
            .map(|s| (FieldRef::new(s, qi_schema::NodeId::ROOT), None))
            .collect();
        let mut uf = SchemaUnionFind::new(&fields, 130);
        for i in 1..130 {
            uf.merge(0, i);
        }
        let root = uf.find(0);
        assert!((0..130).all(|i| uf.find(i) == root));
    }
}
