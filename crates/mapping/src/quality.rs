//! Matching quality: compare a derived mapping against ground truth.
//!
//! The paper assumes perfect clusters; when the [`crate::matcher`] derives
//! them instead, these pairwise precision/recall metrics quantify the
//! damage — the standard evaluation for interface matching (\[10, 24\]).

use crate::cluster::{FieldRef, Mapping};
use std::collections::BTreeSet;

/// Pairwise matching quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchQuality {
    /// Fraction of derived co-cluster pairs that are true pairs.
    pub precision: f64,
    /// Fraction of true co-cluster pairs that were derived.
    pub recall: f64,
    /// True/derived/correct pair counts, for reporting.
    pub truth_pairs: usize,
    /// Number of derived pairs.
    pub derived_pairs: usize,
    /// Number of derived pairs that are correct.
    pub correct_pairs: usize,
}

impl MatchQuality {
    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

fn pairs(mapping: &Mapping) -> BTreeSet<(FieldRef, FieldRef)> {
    let mut out = BTreeSet::new();
    for cluster in &mapping.clusters {
        for (i, &a) in cluster.members.iter().enumerate() {
            for &b in &cluster.members[i + 1..] {
                out.insert(if a < b { (a, b) } else { (b, a) });
            }
        }
    }
    out
}

/// Pairwise precision/recall of `derived` against `truth`.
pub fn pairwise_quality(derived: &Mapping, truth: &Mapping) -> MatchQuality {
    let truth_pairs = pairs(truth);
    let derived_pairs = pairs(derived);
    let correct = derived_pairs.intersection(&truth_pairs).count();
    let precision = if derived_pairs.is_empty() {
        1.0
    } else {
        correct as f64 / derived_pairs.len() as f64
    };
    let recall = if truth_pairs.is_empty() {
        1.0
    } else {
        correct as f64 / truth_pairs.len() as f64
    };
    MatchQuality {
        precision,
        recall,
        truth_pairs: truth_pairs.len(),
        derived_pairs: derived_pairs.len(),
        correct_pairs: correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_schema::NodeId;

    fn field(schema: usize, node: u32) -> FieldRef {
        FieldRef::new(schema, NodeId(node))
    }

    fn mapping(clusters: &[&[FieldRef]]) -> Mapping {
        Mapping::from_clusters(
            clusters
                .iter()
                .enumerate()
                .map(|(i, m)| (format!("c{i}"), m.to_vec())),
        )
    }

    #[test]
    fn identical_mappings_are_perfect() {
        let truth = mapping(&[&[field(0, 1), field(1, 1)], &[field(0, 2), field(1, 2)]]);
        let q = pairwise_quality(&truth, &truth);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1(), 1.0);
        assert_eq!(q.truth_pairs, 2);
    }

    #[test]
    fn singletons_only_give_full_precision_zero_recall() {
        let truth = mapping(&[&[field(0, 1), field(1, 1)]]);
        let derived = mapping(&[&[field(0, 1)], &[field(1, 1)]]);
        let q = pairwise_quality(&derived, &truth);
        assert_eq!(q.precision, 1.0); // vacuous: no derived pairs
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f1(), 0.0);
    }

    #[test]
    fn over_merging_hurts_precision() {
        let truth = mapping(&[&[field(0, 1), field(1, 1)], &[field(0, 2), field(1, 2)]]);
        let derived = mapping(&[&[field(0, 1), field(1, 1), field(0, 2), field(1, 2)]]);
        let q = pairwise_quality(&derived, &truth);
        assert!(q.precision < 1.0, "precision {}", q.precision);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.derived_pairs, 6);
        assert_eq!(q.correct_pairs, 2);
    }

    #[test]
    fn partial_splits_hurt_recall() {
        let truth = mapping(&[&[field(0, 1), field(1, 1), field(2, 1)]]);
        let derived = mapping(&[&[field(0, 1), field(1, 1)], &[field(2, 1)]]);
        let q = pairwise_quality(&derived, &truth);
        assert_eq!(q.precision, 1.0);
        assert!((q.recall - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_is_vacuously_recalled() {
        let truth = mapping(&[&[field(0, 1)]]);
        let derived = mapping(&[&[field(0, 1)]]);
        let q = pairwise_quality(&derived, &truth);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.precision, 1.0);
    }
}
