//! Semantic correspondences between query-interface fields.
//!
//! This crate implements §2.1–§2.2 and §3 (Preliminaries) of the paper:
//!
//! * [`Cluster`]s record which fields of different schemas are semantically
//!   equivalent; a [`Mapping`] is the set of clusters for one domain.
//! * [`expand_one_to_many`] reduces 1:m matchings to 1:1 by turning the
//!   coarse-grained field into an internal node (the `Passengers` example
//!   of Figure 2 / Table 1), harvesting its label as an internal-node
//!   candidate.
//! * [`GroupRelation`] is the paper's (n+1)-ary *group relation*: one tuple
//!   per source interface, one column per cluster of a group (Tables 2–4).
//! * [`Integrated`] ties the merged schema tree to the clusters and
//!   partitions them into `C_groups` / `C_root` / `C_int`.
//! * [`matcher`] derives clusters from label similarity when ground truth
//!   is absent (used by the synthetic corpus).

pub mod cluster;
pub mod clusters_format;
pub mod delta;
mod index;
pub mod integrated;
pub mod matcher;
pub mod quality;
pub mod relation;

pub use cluster::{
    expand_one_to_many, Cluster, ClusterId, ExpansionOutcome, FieldRef, Mapping, MappingError,
};
pub use delta::{
    delta_match, delta_match_carried, DeltaMapping, DeltaOutcome, FallbackReason, MatchCarry,
};
pub use integrated::{ClusterClass, ClusterPartition, GroupId, Integrated, IntegratedGroup};
pub use matcher::{
    labels_match, labels_match_with, match_by_labels, match_by_labels_stats, match_by_labels_with,
    match_tier_with, MatchStats, MatchTier, MatcherConfig,
};
pub use quality::{pairwise_quality, MatchQuality};
pub use relation::{GroupRelation, GroupTuple};
