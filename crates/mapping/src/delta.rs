//! Incremental (delta) clustering: append one new interface to an
//! existing matcher-derived mapping without re-scoring the old corpus.
//!
//! The full matcher processes accepted pairs in ascending `(i, j)` order
//! over the concatenated field list. When exactly one interface is
//! appended, three structural facts make a targeted update equivalent to
//! the full re-run:
//!
//! 1. New–new pairs are never scored (all new fields share the appended
//!    schema, and same-schema pairs are skipped), so the new fields can
//!    only attach to *old* components.
//! 2. Old–old pairs score identically, so the old partition re-forms
//!    exactly — provided the base mapping was itself produced by the
//!    matcher under the same configuration (callers must guarantee this).
//! 3. Every component holds at most one field per schema, so any two
//!    fragments of one final cluster are schema-disjoint at all times;
//!    attaching a new field early can never block a later old–old union
//!    (the appended schema occurs in no old fragment).
//!
//! Hence, writing `S(n)` for the set of old clusters containing at least
//! one accepted match partner of new field `n`: when every `S(n)` has at
//! most one element and no two new fields share the same target cluster,
//! the full re-run's output is exactly the old partition with each `n`
//! appended to its `S(n)` cluster (or appended as a fresh singleton when
//! `S(n)` is empty). The two guarded cases — a new field *bridging* two
//! old clusters, and two new fields landing in one cluster (where merge
//! order and the same-schema clash interact) — conservatively fall back
//! to the full matcher; [`DeltaOutcome::Fallback`] reports which guard
//! fired. Candidates come from the same posting families the indexed
//! engine uses (interned stems, synset ids, fuzzy signatures), built over
//! the *old* fields only and probed with the new fields.

use crate::cluster::{ClusterId, FieldRef, Mapping};
use crate::index::{prefix_blocking_sound, signature_chars};
use crate::matcher::{collect_fields, emit_clusters, labels_match_with, MatcherConfig};
use qi_lexicon::{Lexicon, SynsetId};
use qi_schema::{NodeId, SchemaTree};
use std::collections::{BTreeSet, HashMap};

/// Carryable matcher state: the normalized fields of an already-matched
/// corpus plus the candidate postings over them. Both are pure functions
/// of `(schemas, lexicon, config)`, so a caller that holds the carry from
/// the previous match skips re-normalizing every old label on the next
/// append — the dominant cost of [`delta_match`] on a grown corpus.
#[derive(Debug, Clone)]
pub struct MatchCarry {
    config: MatcherConfig,
    /// Number of schemas the carry covers (`fields` spans exactly these).
    schema_count: usize,
    fields: Vec<(FieldRef, Option<qi_text::LabelText>)>,
    postings: OldPostings,
}

impl MatchCarry {
    /// Derive the carry for a corpus from scratch.
    pub fn build(schemas: &[SchemaTree], lexicon: &Lexicon, config: MatcherConfig) -> Self {
        let fields = collect_fields(schemas, lexicon);
        let postings = OldPostings::build(&fields, lexicon, config);
        MatchCarry {
            config,
            schema_count: schemas.len(),
            fields,
            postings,
        }
    }
}

/// Result of attempting a delta update.
#[derive(Debug, Clone)]
pub enum DeltaOutcome {
    /// The append was structurally simple; `mapping` is bit-identical to
    /// what a full re-match of all schemas would produce. Boxed: the
    /// carried matcher state dwarfs the fallback variant.
    Incremental(Box<DeltaMapping>),
    /// A guard fired — the caller must run the full matcher.
    Fallback(FallbackReason),
}

/// The incrementally updated mapping plus what changed.
#[derive(Debug, Clone)]
pub struct DeltaMapping {
    /// The complete new mapping (old clusters with appended members,
    /// then new singletons in field order).
    pub mapping: Mapping,
    /// Old clusters that gained a member from the new interface.
    pub dirty: BTreeSet<ClusterId>,
    /// Candidate pairs scored (the work the delta path actually did).
    pub pairs_scored: u64,
    /// Pairs the match predicate accepted.
    pub pairs_accepted: u64,
    /// Matcher carry covering the appended corpus, for the next append.
    pub carry: MatchCarry,
}

/// Why the delta path refused and a full rebuild is required.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The base mapping does not cover exactly the old schemas' fields —
    /// it was not produced by the matcher over this corpus.
    BaseMismatch,
    /// A new field matched members of two distinct old clusters; whether
    /// they merge depends on clash state the delta tracker does not
    /// replay.
    Bridge,
    /// Two new fields attached to the same old cluster; the same-schema
    /// clash makes the outcome order-dependent.
    SharedJoin,
}

impl FallbackReason {
    /// Stable label for telemetry counters.
    pub fn as_str(self) -> &'static str {
        match self {
            FallbackReason::BaseMismatch => "base_mismatch",
            FallbackReason::Bridge => "bridge",
            FallbackReason::SharedJoin => "shared_join",
        }
    }
}

/// Append the last schema of `schemas` to `base` (the matcher output for
/// `schemas[..len-1]` under `config`). Returns the updated mapping or a
/// fallback verdict. The caller is responsible for guaranteeing that
/// `base` really is matcher output under the same `config`; the only
/// internally detectable violation is field-coverage mismatch.
pub fn delta_match(
    schemas: &[SchemaTree],
    base: &Mapping,
    lexicon: &Lexicon,
    config: MatcherConfig,
) -> DeltaOutcome {
    delta_match_carried(schemas, base, lexicon, config, None)
}

/// [`delta_match`] with an optional [`MatchCarry`] from the previous
/// match over `schemas[..len-1]`. A valid carry (same config, covering
/// exactly the old schemas) skips re-normalizing the old corpus and
/// rebuilding its postings; the carry's provenance is a caller contract,
/// like `base` itself. A successful outcome includes the updated carry
/// for the next append.
pub fn delta_match_carried(
    schemas: &[SchemaTree],
    base: &Mapping,
    lexicon: &Lexicon,
    config: MatcherConfig,
    carry: Option<&MatchCarry>,
) -> DeltaOutcome {
    let new_schema = schemas.len() - 1;
    let carry = carry.filter(|c| c.config == config && c.schema_count == new_schema);
    let (fields, old_len) = match carry {
        Some(c) => {
            let mut fields = c.fields.clone();
            let old_len = fields.len();
            let tree = &schemas[new_schema];
            for leaf in tree.descendant_leaves(NodeId::ROOT) {
                let label = tree
                    .node(leaf)
                    .label
                    .as_deref()
                    .map(|raw| qi_text::LabelText::new(raw, lexicon));
                fields.push((FieldRef::new(new_schema, leaf), label));
            }
            (fields, old_len)
        }
        None => {
            let fields = collect_fields(schemas, lexicon);
            let old_len = fields
                .iter()
                .take_while(|(f, _)| f.schema < new_schema)
                .count();
            (fields, old_len)
        }
    };

    // Old field → (field index, cluster). A base that does not cover the
    // old fields exactly was not produced over this corpus.
    let mut index_of: HashMap<FieldRef, usize> = HashMap::with_capacity(old_len);
    for (i, (field, _)) in fields[..old_len].iter().enumerate() {
        index_of.insert(*field, i);
    }
    let mut cluster_of: Vec<Option<ClusterId>> = vec![None; old_len];
    let mut first_member: Vec<usize> = Vec::with_capacity(base.clusters.len());
    let mut covered = 0usize;
    for cluster in &base.clusters {
        let mut first: Option<usize> = None;
        for member in &cluster.members {
            let Some(&i) = index_of.get(member) else {
                return DeltaOutcome::Fallback(FallbackReason::BaseMismatch);
            };
            if cluster_of[i].is_some() {
                return DeltaOutcome::Fallback(FallbackReason::BaseMismatch);
            }
            cluster_of[i] = Some(cluster.id);
            first = Some(first.map_or(i, |f: usize| f.min(i)));
            covered += 1;
        }
        let Some(first) = first else {
            return DeltaOutcome::Fallback(FallbackReason::BaseMismatch);
        };
        first_member.push(first);
    }
    if covered != old_len {
        return DeltaOutcome::Fallback(FallbackReason::BaseMismatch);
    }

    // Candidate old partners per new field. In the regime where fuzzy
    // signature blocking is unsound the full matcher streams all pairs;
    // the delta equivalent is scoring every labeled old field (still
    // O(old) per new field, not O(old²)).
    let labeled = |idx: usize| {
        fields[idx]
            .1
            .as_ref()
            .is_some_and(|l| !l.is_empty())
            .then_some(idx)
    };
    let universal = config.fuzzy && !prefix_blocking_sound(&fields, config);
    let built: Option<OldPostings> = (!universal && carry.is_none())
        .then(|| OldPostings::build(&fields[..old_len], lexicon, config));
    let postings: Option<&OldPostings> = if universal {
        None
    } else {
        carry.map(|c| &c.postings).or(built.as_ref())
    };

    let mut pairs_scored = 0u64;
    let mut pairs_accepted = 0u64;
    // Target old cluster per new field (None = fresh singleton).
    let mut joins: Vec<Option<ClusterId>> = vec![None; fields.len() - old_len];
    let mut taken: HashMap<ClusterId, usize> = HashMap::new();
    for n in old_len..fields.len() {
        let Some(label_n) = fields[n].1.as_ref().filter(|l| !l.is_empty()) else {
            continue;
        };
        let candidates: Vec<usize> = match postings {
            Some(postings) => postings.probe(label_n, lexicon, config),
            None => (0..old_len).filter_map(labeled).collect(),
        };
        let mut targets: BTreeSet<ClusterId> = BTreeSet::new();
        for i in candidates {
            let label_i = fields[i].1.as_ref().expect("candidates are labeled");
            pairs_scored += 1;
            if labels_match_with(label_i, label_n, lexicon, config) {
                pairs_accepted += 1;
                targets.insert(cluster_of[i].expect("old fields are covered"));
            }
        }
        if targets.len() > 1 {
            return DeltaOutcome::Fallback(FallbackReason::Bridge);
        }
        if let Some(&target) = targets.iter().next() {
            if taken.insert(target, n).is_some() {
                return DeltaOutcome::Fallback(FallbackReason::SharedJoin);
            }
            joins[n - old_len] = Some(target);
        }
    }

    // Re-emit through the matcher's own cluster emitter so ordering and
    // concept naming are identical to the full run by construction.
    let roots: Vec<usize> = (0..fields.len())
        .map(|i| {
            if i < old_len {
                first_member[cluster_of[i].expect("covered").index()]
            } else {
                match joins[i - old_len] {
                    Some(target) => first_member[target.index()],
                    None => i,
                }
            }
        })
        .collect();
    let mapping = emit_clusters(&fields, &roots);
    let dirty: BTreeSet<ClusterId> = joins.iter().flatten().copied().collect();
    // The carry for the next append: this corpus's fields, postings
    // extended by the new fields (old indices are unchanged by the
    // append, and new indices are larger than every posted one, so
    // extending preserves the sorted-unique invariant).
    let mut next_postings = match (carry, built) {
        (Some(c), _) => c.postings.clone(),
        (None, Some(b)) => b,
        (None, None) => OldPostings::build(&fields[..old_len], lexicon, config),
    };
    next_postings.extend(&fields[old_len..], old_len, lexicon, config);
    DeltaOutcome::Incremental(Box::new(DeltaMapping {
        mapping,
        dirty,
        pairs_scored,
        pairs_accepted,
        carry: MatchCarry {
            config,
            schema_count: schemas.len(),
            fields,
            postings: next_postings,
        },
    }))
}

/// Inverted postings over the old fields, mirroring the index families
/// of the full engine: stems, synset ids, and (fuzzy tier) signature
/// characters. Probing a new label yields a deduplicated superset of its
/// accepting partners — the same exhaustiveness argument as
/// [`crate::index`], restricted to old×new pairs.
#[derive(Debug, Clone)]
struct OldPostings {
    stems: HashMap<String, Vec<usize>>,
    synsets: HashMap<SynsetId, Vec<usize>>,
    fuzzy: HashMap<char, Vec<usize>>,
}

impl OldPostings {
    fn build(
        old_fields: &[(FieldRef, Option<qi_text::LabelText>)],
        lexicon: &Lexicon,
        config: MatcherConfig,
    ) -> Self {
        let mut postings = OldPostings {
            stems: HashMap::new(),
            synsets: HashMap::new(),
            fuzzy: HashMap::new(),
        };
        postings.extend(old_fields, 0, lexicon, config);
        postings
    }

    /// Post fields starting at index `offset`. Indices must arrive in
    /// ascending order across calls — each posting list stays sorted and
    /// deduplicated because a field only ever appends its own index.
    fn extend(
        &mut self,
        fields: &[(FieldRef, Option<qi_text::LabelText>)],
        offset: usize,
        lexicon: &Lexicon,
        config: MatcherConfig,
    ) {
        let push_unique = |list: &mut Vec<usize>, i: usize| {
            if list.last() != Some(&i) {
                list.push(i);
            }
        };
        for (k, (_, label)) in fields.iter().enumerate() {
            let i = offset + k;
            let Some(label) = label else { continue };
            if label.is_empty() {
                continue;
            }
            for word in &label.words {
                push_unique(self.stems.entry(word.stem.clone()).or_default(), i);
                for sid in lexicon.resolve(&word.lemma) {
                    push_unique(self.synsets.entry(sid).or_default(), i);
                }
                if config.fuzzy {
                    for c in signature_chars(&word.stem, &word.lemma) {
                        push_unique(self.fuzzy.entry(c).or_default(), i);
                    }
                }
            }
        }
    }

    fn probe(
        &self,
        label: &qi_text::LabelText,
        lexicon: &Lexicon,
        config: MatcherConfig,
    ) -> Vec<usize> {
        let mut hits: Vec<usize> = Vec::new();
        for word in &label.words {
            if let Some(list) = self.stems.get(&word.stem) {
                hits.extend_from_slice(list);
            }
            for sid in lexicon.resolve(&word.lemma) {
                if let Some(list) = self.synsets.get(&sid) {
                    hits.extend_from_slice(list);
                }
            }
            if config.fuzzy {
                for c in signature_chars(&word.stem, &word.lemma) {
                    if let Some(list) = self.fuzzy.get(&c) {
                        hits.extend_from_slice(list);
                    }
                }
            }
        }
        hits.sort_unstable();
        hits.dedup();
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{match_by_labels, match_by_labels_with};
    use qi_schema::spec::{leaf, unlabeled_leaf};

    fn base_corpus() -> Vec<SchemaTree> {
        vec![
            SchemaTree::build(
                "a",
                vec![leaf("Make"), leaf("Model"), leaf("Price"), unlabeled_leaf()],
            )
            .unwrap(),
            SchemaTree::build("b", vec![leaf("Brand"), leaf("Model"), leaf("Zip Code")]).unwrap(),
            SchemaTree::build("c", vec![leaf("Manufacturer"), leaf("zip code:")]).unwrap(),
        ]
    }

    fn assert_incremental_equals_full(schemas: Vec<SchemaTree>, extra: SchemaTree) {
        let lexicon = Lexicon::builtin();
        let config = MatcherConfig::default();
        let base = match_by_labels(&schemas, &lexicon);
        let mut all = schemas;
        all.push(extra);
        let full = match_by_labels(&all, &lexicon);
        match delta_match(&all, &base, &lexicon, config) {
            DeltaOutcome::Incremental(delta) => {
                assert_eq!(delta.mapping, full, "delta must match the full re-run");
                for &c in &delta.dirty {
                    assert!(c.index() < base.len(), "dirty ids are old clusters");
                }
            }
            DeltaOutcome::Fallback(reason) => panic!("unexpected fallback: {reason:?}"),
        }
    }

    #[test]
    fn join_and_singleton_appends_match_full_rerun() {
        let extra =
            SchemaTree::build("d", vec![leaf("Model"), leaf("Mileage"), unlabeled_leaf()]).unwrap();
        assert_incremental_equals_full(base_corpus(), extra);
    }

    #[test]
    fn synonym_join_matches_full_rerun() {
        // `Manufacturer` joins the Make/Brand/Manufacturer cluster via
        // the synset postings, not string equality.
        let extra = SchemaTree::build("d", vec![leaf("Manufacturer"), leaf("Color")]).unwrap();
        assert_incremental_equals_full(base_corpus(), extra);
    }

    #[test]
    fn all_new_fields_match_full_rerun() {
        let extra = SchemaTree::build("d", vec![leaf("Transmission"), leaf("Doors")]).unwrap();
        assert_incremental_equals_full(base_corpus(), extra);
    }

    #[test]
    fn bridge_falls_back() {
        // Schema `a` holds Make and Brand apart (same-schema clash), so
        // the base has two clusters a new `Manufacturer` field would
        // bridge.
        let schemas = vec![
            SchemaTree::build("a", vec![leaf("Make"), leaf("Brand")]).unwrap(),
            SchemaTree::build("b", vec![leaf("Price")]).unwrap(),
        ];
        let lexicon = Lexicon::builtin();
        let base = match_by_labels(&schemas, &lexicon);
        let mut all = schemas;
        all.push(SchemaTree::build("c", vec![leaf("Manufacturer")]).unwrap());
        match delta_match(&all, &base, &lexicon, MatcherConfig::default()) {
            DeltaOutcome::Fallback(FallbackReason::Bridge) => {}
            other => panic!("expected bridge fallback, got {other:?}"),
        }
    }

    #[test]
    fn shared_join_falls_back() {
        // Two new same-schema fields both match the Model cluster; merge
        // order and the clash check make the outcome order-dependent.
        let schemas = vec![
            SchemaTree::build("a", vec![leaf("Model")]).unwrap(),
            SchemaTree::build("b", vec![leaf("Model")]).unwrap(),
        ];
        let lexicon = Lexicon::builtin();
        let base = match_by_labels(&schemas, &lexicon);
        let mut all = schemas;
        all.push(SchemaTree::build("c", vec![leaf("Model"), leaf("model:")]).unwrap());
        match delta_match(&all, &base, &lexicon, MatcherConfig::default()) {
            DeltaOutcome::Fallback(FallbackReason::SharedJoin) => {}
            other => panic!("expected shared-join fallback, got {other:?}"),
        }
    }

    #[test]
    fn base_mismatch_falls_back() {
        let schemas = base_corpus();
        let lexicon = Lexicon::builtin();
        // Ground-truth-style base covering only part of the fields.
        let a_leaves = schemas[0].descendant_leaves(qi_schema::NodeId::ROOT);
        let base = Mapping::from_clusters(vec![(
            "c_Make".to_string(),
            vec![FieldRef::new(0, a_leaves[0])],
        )]);
        let mut all = schemas;
        all.push(SchemaTree::build("d", vec![leaf("Make")]).unwrap());
        match delta_match(&all, &base, &lexicon, MatcherConfig::default()) {
            DeltaOutcome::Fallback(FallbackReason::BaseMismatch) => {}
            other => panic!("expected base-mismatch fallback, got {other:?}"),
        }
    }

    #[test]
    fn fuzzy_config_matches_full_rerun() {
        let lexicon = Lexicon::builtin();
        let config = MatcherConfig {
            fuzzy: true,
            ..MatcherConfig::default()
        };
        let schemas = vec![
            SchemaTree::build("a", vec![leaf("Quantity"), leaf("Address")]).unwrap(),
            SchemaTree::build("b", vec![leaf("Price")]).unwrap(),
        ];
        let base = match_by_labels_with(&schemas, &lexicon, config);
        let mut all = schemas;
        all.push(SchemaTree::build("c", vec![leaf("Qty"), leaf("Adress")]).unwrap());
        let full = match_by_labels_with(&all, &lexicon, config);
        match delta_match(&all, &base, &lexicon, config) {
            DeltaOutcome::Incremental(delta) => assert_eq!(delta.mapping, full),
            DeltaOutcome::Fallback(reason) => panic!("unexpected fallback: {reason:?}"),
        }
    }

    #[test]
    fn unsound_blocking_regime_scores_all_pairs_and_agrees() {
        let lexicon = Lexicon::builtin();
        let config = MatcherConfig {
            fuzzy: true,
            min_similarity: 0.3,
            ..MatcherConfig::default()
        };
        let schemas = vec![
            SchemaTree::build("a", vec![leaf("abcdefghij")]).unwrap(),
            SchemaTree::build("b", vec![leaf("Price")]).unwrap(),
        ];
        let base = match_by_labels_with(&schemas, &lexicon, config);
        let mut all = schemas;
        all.push(SchemaTree::build("c", vec![leaf("xycdefghij")]).unwrap());
        let full = match_by_labels_with(&all, &lexicon, config);
        match delta_match(&all, &base, &lexicon, config) {
            DeltaOutcome::Incremental(delta) => assert_eq!(delta.mapping, full),
            DeltaOutcome::Fallback(reason) => panic!("unexpected fallback: {reason:?}"),
        }
    }
}
