//! Opaque pagination cursors.
//!
//! A cursor pins a result stream to (a) the query that produced it, via
//! the FNV-1a hash of the query's canonical rendering, and (b) the exact
//! artifact version it was reading, so a snapshot swap or ingest
//! invalidates outstanding cursors cleanly (the serving tier answers
//! 410 Gone) instead of silently splicing two different result sets.
//! The wire form is the lowercase-hex encoding of a versioned
//! `:`-separated record — opaque and URL-safe by construction, but
//! deterministic so equal positions encode equally and tests can assert
//! round trips.

use std::fmt;

/// Cursor wire-format version.
const FORMAT: u64 = 1;

/// A decoded pagination cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cursor {
    /// FNV-1a hash of the canonical query text (or an endpoint tag for
    /// non-query paginations such as `/explain`).
    pub qhash: u64,
    /// Slug of the domain the stream stopped in.
    pub slug: String,
    /// The artifact version of that domain when the page was cut.
    pub version: u64,
    /// Matches already emitted from that domain.
    pub offset: u64,
}

/// Why a cursor failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CursorError {
    /// Not lowercase hex, or odd length, or not UTF-8 underneath.
    Malformed,
    /// A format version this build does not understand.
    UnsupportedFormat,
    /// The named record field failed to parse.
    BadField(&'static str),
}

impl fmt::Display for CursorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CursorError::Malformed => write!(f, "cursor is not a valid encoding"),
            CursorError::UnsupportedFormat => write!(f, "cursor format version not supported"),
            CursorError::BadField(field) => write!(f, "cursor field `{field}` is invalid"),
        }
    }
}

impl std::error::Error for CursorError {}

impl Cursor {
    /// Encode to the opaque wire form.
    pub fn encode(&self) -> String {
        let record = format!(
            "{FORMAT}:{:016x}:{}:{}:{}",
            self.qhash, self.version, self.offset, self.slug
        );
        let mut out = String::with_capacity(record.len() * 2);
        for byte in record.bytes() {
            out.push_str(&format!("{byte:02x}"));
        }
        out
    }

    /// Decode the opaque wire form.
    pub fn decode(text: &str) -> Result<Cursor, CursorError> {
        if text.is_empty() || !text.len().is_multiple_of(2) {
            return Err(CursorError::Malformed);
        }
        let mut bytes = Vec::with_capacity(text.len() / 2);
        let raw = text.as_bytes();
        for pair in raw.chunks(2) {
            let hi = hex_val(pair[0]).ok_or(CursorError::Malformed)?;
            let lo = hex_val(pair[1]).ok_or(CursorError::Malformed)?;
            bytes.push(hi << 4 | lo);
        }
        let record = String::from_utf8(bytes).map_err(|_| CursorError::Malformed)?;
        let mut parts = record.splitn(5, ':');
        let format = parts
            .next()
            .and_then(|p| p.parse::<u64>().ok())
            .ok_or(CursorError::BadField("format"))?;
        if format != FORMAT {
            return Err(CursorError::UnsupportedFormat);
        }
        let qhash = parts
            .next()
            .and_then(|p| u64::from_str_radix(p, 16).ok())
            .ok_or(CursorError::BadField("qhash"))?;
        let version = parts
            .next()
            .and_then(|p| p.parse::<u64>().ok())
            .ok_or(CursorError::BadField("version"))?;
        let offset = parts
            .next()
            .and_then(|p| p.parse::<u64>().ok())
            .ok_or(CursorError::BadField("offset"))?;
        let slug = parts.next().ok_or(CursorError::BadField("slug"))?;
        if slug.is_empty() {
            return Err(CursorError::BadField("slug"));
        }
        Ok(Cursor {
            qhash,
            slug: slug.to_string(),
            version,
            offset,
        })
    }
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        _ => None,
    }
}

/// FNV-1a over a byte string — the hash cursors key queries with.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// The hash that keys cursors to a query: FNV-1a of the canonical
/// rendering, so whitespace and quoting variants of the same query
/// share cursors.
pub fn query_hash(canonical: &str) -> u64 {
    fnv1a(canonical.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let cursor = Cursor {
            qhash: query_hash("find fields"),
            slug: "airline".into(),
            version: 42,
            offset: 7,
        };
        let encoded = cursor.encode();
        assert!(encoded.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(Cursor::decode(&encoded), Ok(cursor));
    }

    #[test]
    fn slug_may_contain_separators() {
        let cursor = Cursor {
            qhash: 1,
            slug: "real:estate".into(),
            version: 1,
            offset: 0,
        };
        assert_eq!(Cursor::decode(&cursor.encode()), Ok(cursor));
    }

    #[test]
    fn typed_decode_errors() {
        assert_eq!(Cursor::decode(""), Err(CursorError::Malformed));
        assert_eq!(Cursor::decode("abc"), Err(CursorError::Malformed));
        assert_eq!(Cursor::decode("zz"), Err(CursorError::Malformed));
        // "9:" hex-encoded: unknown format version.
        let encoded: String = "9:0:0:0:x".bytes().map(|b| format!("{b:02x}")).collect();
        assert_eq!(
            Cursor::decode(&encoded),
            Err(CursorError::UnsupportedFormat)
        );
        let encoded: String = "1:xyz:0:0:s".bytes().map(|b| format!("{b:02x}")).collect();
        assert_eq!(
            Cursor::decode(&encoded),
            Err(CursorError::BadField("qhash"))
        );
        let encoded: String = "1:0:0:0:".bytes().map(|b| format!("{b:02x}")).collect();
        assert_eq!(Cursor::decode(&encoded), Err(CursorError::BadField("slug")));
    }

    #[test]
    fn distinct_queries_hash_apart() {
        assert_ne!(query_hash("find fields"), query_hash("find groups"));
    }
}
