//! Query execution against one domain's in-memory artifact.
//!
//! The executor works over an [`ArtifactView`] — borrowed slices of the
//! serving tier's `DomainArtifact` (labeled tree, decision provenance,
//! interned symbol table, normalized-key sidecar) — so the query crate
//! depends only on the core data model, not on the server.
//!
//! [`execute`] is the production path: per query it resolves every
//! lexicon-expanded or substring label atom **once** into a set of label
//! symbols (walking the sidecar, not the tree), maps each node's label
//! to its interned symbol, and then evaluates label predicates during
//! the tree walk as O(symbol compare) / O(set probe). [`execute_naive`]
//! is the reference oracle: the same walk orders and the same semantics,
//! but every predicate evaluated per node with direct string and lexicon
//! operations. The two must agree match-for-match on any artifact — the
//! equivalence property suite holds them to that.

use crate::ir::{KindName, LabelOp, Pred, Primitive, Query, StrOp, Target};
use qi_core::LabelDecision;
use qi_lexicon::Lexicon;
use qi_schema::{NodeId, SchemaTree};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Borrowed read-only view over one domain's artifact.
#[derive(Clone, Copy)]
pub struct ArtifactView<'a> {
    /// Domain slug.
    pub domain: &'a str,
    /// The integrated labeled tree.
    pub tree: &'a SchemaTree,
    /// Per-node labeling decisions, sorted by node id.
    pub decisions: &'a [LabelDecision],
    /// Interned symbol table (distinct source labels, then normalized
    /// keys, first-encounter order).
    pub symbols: &'a [String],
    /// Label symbol → normalized content-word key symbols.
    pub normalized: &'a [(u32, Vec<u32>)],
}

/// Execution failed before completing the walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The traversal-node budget ran out (the serving tier maps this to
    /// 422).
    BudgetExhausted {
        /// The budget that was exhausted.
        limit: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BudgetExhausted { limit } => {
                write!(f, "traversal budget of {limit} nodes exhausted")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// A traversal-node budget, shared across the domains of one request so
/// a fan-out query cannot scan unboundedly.
#[derive(Debug, Clone)]
pub struct Budget {
    limit: u64,
    spent: u64,
}

impl Budget {
    /// A budget allowing `limit` node visits.
    pub fn new(limit: u64) -> Self {
        Budget { limit, spent: 0 }
    }

    /// Nodes visited so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    fn charge(&mut self) -> Result<(), ExecError> {
        if self.spent >= self.limit {
            return Err(ExecError::BudgetExhausted { limit: self.limit });
        }
        self.spent += 1;
        Ok(())
    }
}

/// One matching node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryMatch {
    /// Domain slug the node belongs to.
    pub domain: String,
    /// Node id within the domain's integrated tree.
    pub node: u32,
    /// Slash-joined label path (root excluded, unlabeled segments as
    /// `n<id>`), matching the provenance path rendering.
    pub path: String,
    /// The node's label, if any.
    pub label: Option<String>,
    /// `"field"` for leaves, `"group"` for internal nodes.
    pub kind: &'static str,
    /// The labeling rule that fired for this node, if recorded.
    pub rule: Option<String>,
    /// Root-to-node trail of node ids — populated by the `path`
    /// primitive only.
    pub trail: Option<Vec<u32>>,
}

/// Key identifying one resolved label-atom symbol set.
type SetKey = (u8, String);

fn set_key(op: LabelOp, value: &str) -> Option<SetKey> {
    match op {
        LabelOp::Equals => None,
        LabelOp::Contains => Some((0, value.to_ascii_lowercase())),
        LabelOp::SynonymOf => Some((1, value.to_string())),
        LabelOp::HyponymOf => Some((2, value.to_string())),
        LabelOp::HypernymOf => Some((3, value.to_string())),
    }
}

/// Per-(query, artifact) prepared state: symbol lookups done once, ahead
/// of the tree walk.
struct Prepared<'a> {
    view: ArtifactView<'a>,
    /// Label string → interned symbol.
    sym_of: HashMap<&'a str, u32>,
    /// Resolved symbol sets for substring / lexicon label atoms.
    sets: HashMap<SetKey, HashSet<u32>>,
    /// Node id → its decision record.
    decision_of: HashMap<u32, &'a LabelDecision>,
    /// Node id → its label's interned symbol.
    node_sym: Vec<Option<u32>>,
}

fn collect_label_atoms(pred: &Pred, out: &mut Vec<(LabelOp, String)>) {
    match pred {
        Pred::Label(op, value) => out.push((*op, value.clone())),
        Pred::And(a, b) | Pred::Or(a, b) => {
            collect_label_atoms(a, out);
            collect_label_atoms(b, out);
        }
        Pred::Not(inner) => collect_label_atoms(inner, out),
        _ => {}
    }
}

impl<'a> Prepared<'a> {
    fn new(query: &Query, view: ArtifactView<'a>, lexicon: &Lexicon) -> Self {
        let sym_of: HashMap<&'a str, u32> = view
            .symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (s.as_str(), i as u32))
            .collect();

        let mut atoms = Vec::new();
        if let Some(pred) = &query.pred {
            collect_label_atoms(pred, &mut atoms);
        }
        if let Primitive::Traverse { from } = &query.primitive {
            collect_label_atoms(from, &mut atoms);
        }
        let mut sets: HashMap<SetKey, HashSet<u32>> = HashMap::new();
        for (op, value) in atoms {
            let Some(key) = set_key(op, &value) else {
                continue;
            };
            if sets.contains_key(&key) {
                continue;
            }
            let set = match op {
                LabelOp::Equals => unreachable!("equality has no symbol set"),
                // Substring containment holds per distinct symbol, so
                // resolve it over the symbol table instead of per node.
                LabelOp::Contains => {
                    let needle = value.to_ascii_lowercase();
                    view.symbols
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.to_ascii_lowercase().contains(&needle))
                        .map(|(i, _)| i as u32)
                        .collect()
                }
                // Lexicon relations hold per distinct label via its
                // normalized content-word keys: one sidecar walk per
                // atom, zero lexicon calls during the tree walk.
                LabelOp::SynonymOf => lexicon_set(view, |key| lexicon.are_synonyms(key, &value)),
                LabelOp::HyponymOf => lexicon_set(view, |key| lexicon.is_hypernym_of(&value, key)),
                LabelOp::HypernymOf => lexicon_set(view, |key| lexicon.is_hypernym_of(key, &value)),
            };
            sets.insert(key, set);
        }

        let decision_of: HashMap<u32, &'a LabelDecision> =
            view.decisions.iter().map(|d| (d.node, d)).collect();
        let node_sym: Vec<Option<u32>> = (0..view.tree.len())
            .map(|i| {
                view.tree
                    .node(NodeId(i as u32))
                    .label
                    .as_deref()
                    .and_then(|label| sym_of.get(label).copied())
            })
            .collect();
        Prepared {
            view,
            sym_of,
            sets,
            decision_of,
            node_sym,
        }
    }

    fn eval(&self, pred: &Pred, id: NodeId) -> bool {
        let node = self.view.tree.node(id);
        match pred {
            Pred::Label(LabelOp::Equals, value) => {
                match (self.node_sym[id.index()], self.sym_of.get(value.as_str())) {
                    // Both sides interned: equality is one symbol compare.
                    (Some(a), Some(&b)) => a == b,
                    // Either side uninterned: fall back to the string
                    // compare the symbols stand for.
                    _ => node.label.as_deref() == Some(value.as_str()),
                }
            }
            Pred::Label(op, value) => {
                let key = set_key(*op, value).expect("non-equality label op has a set");
                let set = &self.sets[&key];
                match self.node_sym[id.index()] {
                    Some(sym) => set.contains(&sym),
                    // An uninterned label has no sidecar entry, so the
                    // lexicon ops cannot hold; substring still can.
                    None => match op {
                        LabelOp::Contains => {
                            node.label.as_deref().is_some_and(|l| contains_ci(l, value))
                        }
                        _ => false,
                    },
                }
            }
            Pred::Kind(kind) => match kind {
                KindName::Field => node.is_leaf(),
                KindName::Group => !node.is_leaf(),
            },
            Pred::Rule(op, value) => self
                .decision_of
                .get(&id.0)
                .is_some_and(|d| str_op_matches(*op, &d.rule, value)),
            Pred::Rejected(op, value) => self.decision_of.get(&id.0).is_some_and(|d| {
                d.candidates
                    .iter()
                    .any(|c| !c.accepted && str_op_matches(*op, &c.label, value))
            }),
            Pred::Labeled => node.label.is_some(),
            Pred::Unlabeled => node.label.is_none(),
            Pred::And(a, b) => self.eval(a, id) && self.eval(b, id),
            Pred::Or(a, b) => self.eval(a, id) || self.eval(b, id),
            Pred::Not(inner) => !self.eval(inner, id),
        }
    }
}

/// Label symbols whose normalized keys satisfy `relates` — one pass over
/// the sidecar, independent of tree size.
fn lexicon_set(view: ArtifactView<'_>, relates: impl Fn(&str) -> bool) -> HashSet<u32> {
    let mut key_holds: HashMap<u32, bool> = HashMap::new();
    let mut out = HashSet::new();
    for (label_sym, keys) in view.normalized {
        let hit = keys.iter().any(|&k| {
            *key_holds
                .entry(k)
                .or_insert_with(|| relates(&view.symbols[k as usize]))
        });
        if hit {
            out.insert(*label_sym);
        }
    }
    out
}

fn contains_ci(haystack: &str, needle: &str) -> bool {
    haystack
        .to_ascii_lowercase()
        .contains(&needle.to_ascii_lowercase())
}

fn str_op_matches(op: StrOp, actual: &str, value: &str) -> bool {
    match op {
        StrOp::Equals => actual == value,
        StrOp::Contains => contains_ci(actual, value),
    }
}

fn target_matches(target: Target, tree: &SchemaTree, id: NodeId) -> bool {
    match target {
        Target::Fields => tree.node(id).is_leaf(),
        Target::Groups => !tree.node(id).is_leaf(),
        Target::Nodes => true,
    }
}

/// Slash-joined label path of a node, root excluded, unlabeled segments
/// rendered as `n<id>` — the same shape provenance paths use.
fn node_path(tree: &SchemaTree, id: NodeId) -> String {
    let mut parts: Vec<String> = tree
        .path_to_root(id)
        .into_iter()
        .filter(|&p| p != NodeId::ROOT)
        .map(|p| segment(tree, p))
        .collect();
    parts.reverse();
    parts.push(segment(tree, id));
    parts.join("/")
}

fn segment(tree: &SchemaTree, id: NodeId) -> String {
    match &tree.node(id).label {
        Some(label) => label.clone(),
        None => id.to_string(),
    }
}

fn trail(tree: &SchemaTree, id: NodeId) -> Vec<u32> {
    let mut ids: Vec<u32> = tree.path_to_root(id).into_iter().map(|p| p.0).collect();
    ids.reverse();
    ids.push(id.0);
    ids
}

fn emit(view: ArtifactView<'_>, id: NodeId, with_trail: bool, rule: Option<String>) -> QueryMatch {
    let node = view.tree.node(id);
    QueryMatch {
        domain: view.domain.to_string(),
        node: id.0,
        path: node_path(view.tree, id),
        label: node.label.clone(),
        kind: if node.is_leaf() { "field" } else { "group" },
        rule,
        trail: if with_trail {
            Some(trail(view.tree, id))
        } else {
            None
        },
    }
}

/// Execute `query` against one domain with interned-symbol predicate
/// evaluation, charging every visited node against `budget`.
pub fn execute(
    query: &Query,
    view: ArtifactView<'_>,
    lexicon: &Lexicon,
    budget: &mut Budget,
) -> Result<Vec<QueryMatch>, ExecError> {
    if let Some(domain) = &query.domain {
        if domain != view.domain {
            return Ok(Vec::new());
        }
    }
    let prep = Prepared::new(query, view, lexicon);
    let preorder = view.tree.preorder();
    let mut out = Vec::new();
    match &query.primitive {
        Primitive::Find | Primitive::Path => {
            let with_trail = matches!(query.primitive, Primitive::Path);
            for &id in &preorder {
                if id == NodeId::ROOT {
                    continue;
                }
                budget.charge()?;
                if !target_matches(query.target, view.tree, id) {
                    continue;
                }
                if query.pred.as_ref().is_some_and(|p| !prep.eval(p, id)) {
                    continue;
                }
                let rule = prep.decision_of.get(&id.0).map(|d| d.rule.clone());
                out.push(emit(view, id, with_trail, rule));
            }
        }
        Primitive::Traverse { from } => {
            // First pass: every node (root included) is a candidate
            // start; mark the subtrees of the ones matching `from`.
            let mut marked: HashSet<u32> = HashSet::new();
            for &id in &preorder {
                budget.charge()?;
                if !prep.eval(from, id) {
                    continue;
                }
                let mut stack = vec![id];
                while let Some(current) = stack.pop() {
                    budget.charge()?;
                    marked.insert(current.0);
                    stack.extend(view.tree.children(current).iter().copied());
                }
            }
            // Emit marked nodes in preorder so pagination order is
            // stable regardless of which start reached them first.
            for &id in &preorder {
                if id == NodeId::ROOT || !marked.contains(&id.0) {
                    continue;
                }
                if !target_matches(query.target, view.tree, id) {
                    continue;
                }
                if query.pred.as_ref().is_some_and(|p| !prep.eval(p, id)) {
                    continue;
                }
                let rule = prep.decision_of.get(&id.0).map(|d| d.rule.clone());
                out.push(emit(view, id, false, rule));
            }
        }
    }
    Ok(out)
}

/// Reference oracle: identical semantics and walk order to [`execute`],
/// but every predicate is evaluated per node with direct string and
/// lexicon operations — no interning, no symbol sets, no budget.
pub fn execute_naive(query: &Query, view: ArtifactView<'_>, lexicon: &Lexicon) -> Vec<QueryMatch> {
    if let Some(domain) = &query.domain {
        if domain != view.domain {
            return Vec::new();
        }
    }
    let preorder = view.tree.preorder();
    let mut out = Vec::new();
    let passes = |id: NodeId, pred: &Pred| naive_eval(pred, view, lexicon, id);
    match &query.primitive {
        Primitive::Find | Primitive::Path => {
            let with_trail = matches!(query.primitive, Primitive::Path);
            for &id in &preorder {
                if id == NodeId::ROOT {
                    continue;
                }
                if !target_matches(query.target, view.tree, id) {
                    continue;
                }
                if query.pred.as_ref().is_some_and(|p| !passes(id, p)) {
                    continue;
                }
                out.push(emit(view, id, with_trail, naive_rule(view, id)));
            }
        }
        Primitive::Traverse { from } => {
            let mut marked: HashSet<u32> = HashSet::new();
            for &id in &preorder {
                if !passes(id, from) {
                    continue;
                }
                let mut stack = vec![id];
                while let Some(current) = stack.pop() {
                    marked.insert(current.0);
                    stack.extend(view.tree.children(current).iter().copied());
                }
            }
            for &id in &preorder {
                if id == NodeId::ROOT || !marked.contains(&id.0) {
                    continue;
                }
                if !target_matches(query.target, view.tree, id) {
                    continue;
                }
                if query.pred.as_ref().is_some_and(|p| !passes(id, p)) {
                    continue;
                }
                out.push(emit(view, id, false, naive_rule(view, id)));
            }
        }
    }
    out
}

fn naive_decision<'a>(view: ArtifactView<'a>, id: NodeId) -> Option<&'a LabelDecision> {
    view.decisions.iter().find(|d| d.node == id.0)
}

fn naive_rule(view: ArtifactView<'_>, id: NodeId) -> Option<String> {
    naive_decision(view, id).map(|d| d.rule.clone())
}

/// The label's normalized content-word keys, resolved by scanning the
/// sidecar with string compares.
fn naive_keys<'a>(view: ArtifactView<'a>, label: &str) -> Option<Vec<&'a str>> {
    view.normalized
        .iter()
        .find(|(sym, _)| view.symbols[*sym as usize] == label)
        .map(|(_, keys)| {
            keys.iter()
                .map(|&k| view.symbols[k as usize].as_str())
                .collect()
        })
}

fn naive_eval(pred: &Pred, view: ArtifactView<'_>, lexicon: &Lexicon, id: NodeId) -> bool {
    let node = view.tree.node(id);
    match pred {
        Pred::Label(op, value) => {
            let Some(label) = node.label.as_deref() else {
                return false;
            };
            match op {
                LabelOp::Equals => label == value,
                LabelOp::Contains => contains_ci(label, value),
                LabelOp::SynonymOf => naive_keys(view, label)
                    .is_some_and(|keys| keys.iter().any(|k| lexicon.are_synonyms(k, value))),
                LabelOp::HyponymOf => naive_keys(view, label)
                    .is_some_and(|keys| keys.iter().any(|k| lexicon.is_hypernym_of(value, k))),
                LabelOp::HypernymOf => naive_keys(view, label)
                    .is_some_and(|keys| keys.iter().any(|k| lexicon.is_hypernym_of(k, value))),
            }
        }
        Pred::Kind(kind) => match kind {
            KindName::Field => node.is_leaf(),
            KindName::Group => !node.is_leaf(),
        },
        Pred::Rule(op, value) => {
            naive_decision(view, id).is_some_and(|d| str_op_matches(*op, &d.rule, value))
        }
        Pred::Rejected(op, value) => naive_decision(view, id).is_some_and(|d| {
            d.candidates
                .iter()
                .any(|c| !c.accepted && str_op_matches(*op, &c.label, value))
        }),
        Pred::Labeled => node.label.is_some(),
        Pred::Unlabeled => node.label.is_none(),
        Pred::And(a, b) => naive_eval(a, view, lexicon, id) && naive_eval(b, view, lexicon, id),
        Pred::Or(a, b) => naive_eval(a, view, lexicon, id) || naive_eval(b, view, lexicon, id),
        Pred::Not(inner) => !naive_eval(inner, view, lexicon, id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    /// A tiny hand-built artifact view backing store.
    struct Fixture {
        tree: SchemaTree,
        decisions: Vec<LabelDecision>,
        symbols: Vec<String>,
        normalized: Vec<(u32, Vec<u32>)>,
    }

    impl Fixture {
        fn view(&self) -> ArtifactView<'_> {
            ArtifactView {
                domain: "test",
                tree: &self.tree,
                decisions: &self.decisions,
                symbols: &self.symbols,
                normalized: &self.normalized,
            }
        }
    }

    fn fixture() -> Fixture {
        let mut tree = SchemaTree::new("test");
        let group = tree.add_internal(NodeId::ROOT, Some("Passengers"));
        tree.add_leaf(group, Some("Adults"));
        tree.add_leaf(group, Some("Children"));
        let anon = tree.add_internal(NodeId::ROOT, None);
        tree.add_leaf(anon, Some("Make"));
        let decisions = vec![LabelDecision {
            node: group.0,
            path: "Passengers".into(),
            rule: "internal:LI5".into(),
            chosen: Some("Passengers".into()),
            candidates: vec![qi_core::DecisionCandidate {
                label: "People".into(),
                frequency: 1,
                accepted: false,
                note: "outvoted".into(),
            }],
        }];
        // Sidecar: label symbols then key symbols, as the artifact
        // builder would intern them.
        let symbols: Vec<String> = ["Passengers", "passenger", "Adults", "adult"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let normalized = vec![(0, vec![1]), (2, vec![3])];
        Fixture {
            tree,
            decisions,
            symbols,
            normalized,
        }
    }

    fn run(fixture: &Fixture, text: &str) -> Vec<QueryMatch> {
        let query = parse(text).unwrap();
        let lexicon = Lexicon::builtin();
        let mut budget = Budget::new(10_000);
        let fast = execute(&query, fixture.view(), &lexicon, &mut budget).unwrap();
        let naive = execute_naive(&query, fixture.view(), &lexicon);
        assert_eq!(fast, naive, "executor disagrees with oracle on {text:?}");
        fast
    }

    #[test]
    fn find_fields_scans_leaves() {
        let f = fixture();
        let labels: Vec<_> = run(&f, "find fields")
            .into_iter()
            .map(|m| m.label.unwrap())
            .collect();
        assert_eq!(labels, ["Adults", "Children", "Make"]);
    }

    #[test]
    fn label_equality_uses_symbols() {
        let f = fixture();
        let matches = run(&f, "find groups where label = Passengers");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].rule.as_deref(), Some("internal:LI5"));
        // "Children" is not in the symbol table: equality must still
        // hold through the string fallback.
        let matches = run(&f, "find fields where label = Children");
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn rule_and_rejected_predicates() {
        let f = fixture();
        assert_eq!(run(&f, "find nodes where rule = internal:LI5").len(), 1);
        assert_eq!(run(&f, "find nodes where rejected ~ people").len(), 1);
        assert_eq!(run(&f, "find nodes where rejected = people").len(), 0);
    }

    #[test]
    fn unlabeled_and_traverse() {
        let f = fixture();
        let matches = run(&f, "find groups where unlabeled");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].path, "n4");
        let matches = run(&f, "traverse fields from (label = Passengers)");
        let labels: Vec<_> = matches.into_iter().map(|m| m.label.unwrap()).collect();
        assert_eq!(labels, ["Adults", "Children"]);
    }

    #[test]
    fn path_primitive_carries_trail() {
        let f = fixture();
        let matches = run(&f, "path to fields where label = Adults");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].trail.as_deref(), Some(&[0, 1, 2][..]));
        assert_eq!(matches[0].path, "Passengers/Adults");
    }

    #[test]
    fn budget_exhaustion_is_typed() {
        let f = fixture();
        let query = parse("find nodes").unwrap();
        let lexicon = Lexicon::builtin();
        let mut budget = Budget::new(2);
        let err = execute(&query, f.view(), &lexicon, &mut budget).unwrap_err();
        assert_eq!(err, ExecError::BudgetExhausted { limit: 2 });
    }

    #[test]
    fn domain_scope_filters() {
        let f = fixture();
        assert_eq!(run(&f, "find fields in other").len(), 0);
        assert_eq!(run(&f, "find fields in test").len(), 3);
    }
}
