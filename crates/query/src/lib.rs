//! Composable query engine over the labeled tree, the lexicon's
//! relations, and the labeler's decision provenance.
//!
//! The read API's fixed-shape endpoints answer "what does this domain
//! look like"; this crate answers the cross-cutting questions — "fields
//! across all domains whose label is a synonym of *passenger*",
//! "internal nodes labeled by rule LI5", "paths from root to any field
//! whose rejected candidates include *make*" — with three pieces:
//!
//! - an IR ([`ir`]) of find / path / traverse primitives filtered by
//!   composable predicates over label text, interned symbols, lexicon
//!   relations, node kind and provenance;
//! - a compact text syntax ([`parse`]) with a hand-rolled
//!   zero-dependency parser and typed errors;
//! - an executor ([`exec`]) that runs against borrowed views of the
//!   serving tier's in-memory artifacts, resolving lexicon-expanded
//!   predicates once per query into symbol sets so the tree walk does
//!   no string or lexicon work, under a traversal-node budget;
//!
//! plus opaque version-pinned pagination cursors ([`cursor`]) shared by
//! `/query` and the paginated `/explain`.

#![warn(missing_docs)]

pub mod cursor;
pub mod exec;
pub mod ir;
pub mod parse;

pub use cursor::{fnv1a, query_hash, Cursor, CursorError};
pub use exec::{execute, execute_naive, ArtifactView, Budget, ExecError, QueryMatch};
pub use ir::{KindName, LabelOp, Pred, Primitive, Query, StrOp, Target};
pub use parse::{parse, ParseError, ParseErrorKind, MAX_QUERY_LEN};
