//! Hand-rolled zero-dependency parser for the compact query syntax.
//!
//! ```text
//! query      := primitive [ 'in' string ]
//! primitive  := 'find' target [ 'where' pred ]
//!             | 'path' 'to' target [ 'where' pred ]
//!             | 'traverse' target 'from' '(' pred ')' [ 'where' pred ]
//! target     := 'fields' | 'groups' | 'nodes'
//! pred       := and_pred { 'or' and_pred }
//! and_pred   := unary { 'and' unary }
//! unary      := 'not' unary | '(' pred ')' | atom
//! atom       := 'label' ( '=' | '~' | 'synonym-of' | 'hyponym-of'
//!                       | 'hypernym-of' ) string
//!             | 'kind' '=' ( 'field' | 'group' )
//!             | 'rule'     ( '=' | '~' ) string
//!             | 'rejected' ( '=' | '~' ) string
//!             | 'labeled' | 'unlabeled'
//! string     := '"' escaped-chars '"' | bare-word
//! ```
//!
//! Bare words (letters, digits, `_ - . :`) double as unquoted string
//! operands, so `rule = internal:LI5` needs no quoting; anything with
//! spaces does. Errors are typed ([`ParseError`]) and carry the byte
//! offset where parsing stopped.

use crate::ir::{KindName, LabelOp, Pred, Primitive, Query, StrOp, Target};
use std::fmt;

/// Hard cap on accepted query text length, in bytes. Longer inputs are
/// rejected before tokenization (the serving tier maps this to 400).
pub const MAX_QUERY_LEN: usize = 4096;

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input exceeds [`MAX_QUERY_LEN`].
    QueryTooLong {
        /// Actual input length in bytes.
        len: usize,
        /// The cap that was exceeded.
        max: usize,
    },
    /// A byte outside the token alphabet.
    UnexpectedChar(char),
    /// A quoted string with no closing quote.
    UnterminatedString,
    /// A backslash escape other than `\"` or `\\`.
    BadEscape(char),
    /// The parser wanted one construct and saw another token.
    Expected {
        /// Human description of the expected construct.
        expected: &'static str,
        /// The token actually found, rendered.
        found: String,
    },
    /// Input ended where a construct was required.
    UnexpectedEnd {
        /// Human description of the expected construct.
        expected: &'static str,
    },
    /// A complete query was parsed but input remained.
    TrailingInput {
        /// The first leftover token, rendered.
        found: String,
    },
}

/// A typed parse failure with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Byte offset into the query text.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::QueryTooLong { len, max } => {
                write!(f, "query is {len} bytes, over the {max}-byte cap")
            }
            ParseErrorKind::UnexpectedChar(c) => {
                write!(f, "unexpected character {c:?} at byte {}", self.offset)
            }
            ParseErrorKind::UnterminatedString => {
                write!(f, "unterminated string starting at byte {}", self.offset)
            }
            ParseErrorKind::BadEscape(c) => {
                write!(f, "unsupported escape \\{c} at byte {}", self.offset)
            }
            ParseErrorKind::Expected { expected, found } => {
                write!(
                    f,
                    "expected {expected}, found `{found}` at byte {}",
                    self.offset
                )
            }
            ParseErrorKind::UnexpectedEnd { expected } => {
                write!(f, "expected {expected}, found end of query")
            }
            ParseErrorKind::TrailingInput { found } => {
                write!(
                    f,
                    "trailing input `{found}` after query at byte {}",
                    self.offset
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Word(String),
    Str(String),
    Eq,
    Tilde,
    LParen,
    RParen,
}

impl Tok {
    fn render(&self) -> String {
        match self {
            Tok::Word(w) => w.clone(),
            Tok::Str(s) => format!("\"{s}\""),
            Tok::Eq => "=".into(),
            Tok::Tilde => "~".into(),
            Tok::LParen => "(".into(),
            Tok::RParen => ")".into(),
        }
    }
}

fn bare_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
}

fn tokenize(text: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut out = Vec::new();
    let mut chars = text.char_indices().peekable();
    while let Some(&(offset, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '=' => {
                chars.next();
                out.push((Tok::Eq, offset));
            }
            '~' => {
                chars.next();
                out.push((Tok::Tilde, offset));
            }
            '(' => {
                chars.next();
                out.push((Tok::LParen, offset));
            }
            ')' => {
                chars.next();
                out.push((Tok::RParen, offset));
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some((_, '"')) => break,
                        Some((esc_at, '\\')) => match chars.next() {
                            Some((_, '"')) => s.push('"'),
                            Some((_, '\\')) => s.push('\\'),
                            Some((_, other)) => {
                                return Err(ParseError {
                                    kind: ParseErrorKind::BadEscape(other),
                                    offset: esc_at,
                                })
                            }
                            None => {
                                return Err(ParseError {
                                    kind: ParseErrorKind::UnterminatedString,
                                    offset,
                                })
                            }
                        },
                        Some((_, other)) => s.push(other),
                        None => {
                            return Err(ParseError {
                                kind: ParseErrorKind::UnterminatedString,
                                offset,
                            })
                        }
                    }
                }
                out.push((Tok::Str(s), offset));
            }
            c if bare_word_char(c) => {
                let mut word = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if !bare_word_char(c) {
                        break;
                    }
                    word.push(c);
                    chars.next();
                }
                out.push((Tok::Word(word), offset));
            }
            other => {
                return Err(ParseError {
                    kind: ParseErrorKind::UnexpectedChar(other),
                    offset,
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|&(_, o)| o)
            .unwrap_or(self.end)
    }

    fn next(&mut self, expected: &'static str) -> Result<Tok, ParseError> {
        match self.tokens.get(self.pos) {
            Some((tok, _)) => {
                let tok = tok.clone();
                self.pos += 1;
                Ok(tok)
            }
            None => Err(ParseError {
                kind: ParseErrorKind::UnexpectedEnd { expected },
                offset: self.end,
            }),
        }
    }

    fn expected(&self, expected: &'static str, found: &Tok) -> ParseError {
        ParseError {
            kind: ParseErrorKind::Expected {
                expected,
                found: found.render(),
            },
            // `found` has already been consumed, so its offset is the
            // previous token's.
            offset: self
                .tokens
                .get(self.pos.saturating_sub(1))
                .map(|&(_, o)| o)
                .unwrap_or(self.end),
        }
    }

    fn expect_word(&mut self, keyword: &'static str) -> Result<(), ParseError> {
        match self.next(keyword)? {
            Tok::Word(w) if w == keyword => Ok(()),
            other => Err(self.expected(keyword, &other)),
        }
    }

    /// Consume the next word if it equals `keyword`.
    fn eat_word(&mut self, keyword: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Word(w)) if w == keyword) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self, expected: &'static str) -> Result<String, ParseError> {
        match self.next(expected)? {
            Tok::Str(s) => Ok(s),
            Tok::Word(w) => Ok(w),
            other => Err(self.expected(expected, &other)),
        }
    }

    fn target(&mut self) -> Result<Target, ParseError> {
        const EXPECTED: &str = "target (fields, groups or nodes)";
        match self.next(EXPECTED)? {
            Tok::Word(w) if w == "fields" => Ok(Target::Fields),
            Tok::Word(w) if w == "groups" => Ok(Target::Groups),
            Tok::Word(w) if w == "nodes" => Ok(Target::Nodes),
            other => Err(self.expected(EXPECTED, &other)),
        }
    }

    fn pred(&mut self) -> Result<Pred, ParseError> {
        let mut left = self.and_pred()?;
        while self.eat_word("or") {
            let right = self.and_pred()?;
            left = Pred::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_pred(&mut self) -> Result<Pred, ParseError> {
        let mut left = self.unary()?;
        while self.eat_word("and") {
            let right = self.unary()?;
            left = Pred::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Pred, ParseError> {
        if self.eat_word("not") {
            return Ok(Pred::Not(Box::new(self.unary()?)));
        }
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.pos += 1;
            let inner = self.pred()?;
            match self.next("closing `)`")? {
                Tok::RParen => return Ok(inner),
                other => return Err(self.expected("closing `)`", &other)),
            }
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Pred, ParseError> {
        const EXPECTED: &str = "predicate atom (label, kind, rule, rejected, labeled or unlabeled)";
        match self.next(EXPECTED)? {
            Tok::Word(w) if w == "label" => {
                const OPS: &str = "label operator (=, ~, synonym-of, hyponym-of or hypernym-of)";
                let op = match self.next(OPS)? {
                    Tok::Eq => LabelOp::Equals,
                    Tok::Tilde => LabelOp::Contains,
                    Tok::Word(w) if w == "synonym-of" => LabelOp::SynonymOf,
                    Tok::Word(w) if w == "hyponym-of" => LabelOp::HyponymOf,
                    Tok::Word(w) if w == "hypernym-of" => LabelOp::HypernymOf,
                    other => return Err(self.expected(OPS, &other)),
                };
                Ok(Pred::Label(op, self.string("label operand")?))
            }
            Tok::Word(w) if w == "kind" => {
                match self.next("`=`")? {
                    Tok::Eq => {}
                    other => return Err(self.expected("`=`", &other)),
                }
                const KINDS: &str = "kind (field or group)";
                match self.next(KINDS)? {
                    Tok::Word(w) if w == "field" => Ok(Pred::Kind(KindName::Field)),
                    Tok::Word(w) if w == "group" => Ok(Pred::Kind(KindName::Group)),
                    other => Err(self.expected(KINDS, &other)),
                }
            }
            Tok::Word(w) if w == "rule" => {
                let op = self.str_op("rule operator (= or ~)")?;
                Ok(Pred::Rule(op, self.string("rule operand")?))
            }
            Tok::Word(w) if w == "rejected" => {
                let op = self.str_op("rejected operator (= or ~)")?;
                Ok(Pred::Rejected(op, self.string("rejected operand")?))
            }
            Tok::Word(w) if w == "labeled" => Ok(Pred::Labeled),
            Tok::Word(w) if w == "unlabeled" => Ok(Pred::Unlabeled),
            other => Err(self.expected(EXPECTED, &other)),
        }
    }

    fn str_op(&mut self, expected: &'static str) -> Result<StrOp, ParseError> {
        match self.next(expected)? {
            Tok::Eq => Ok(StrOp::Equals),
            Tok::Tilde => Ok(StrOp::Contains),
            other => Err(self.expected(expected, &other)),
        }
    }
}

/// Parse query text into its IR, enforcing [`MAX_QUERY_LEN`].
pub fn parse(text: &str) -> Result<Query, ParseError> {
    if text.len() > MAX_QUERY_LEN {
        return Err(ParseError {
            kind: ParseErrorKind::QueryTooLong {
                len: text.len(),
                max: MAX_QUERY_LEN,
            },
            offset: MAX_QUERY_LEN,
        });
    }
    let tokens = tokenize(text)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        end: text.len(),
    };
    const PRIMITIVES: &str = "primitive (find, path or traverse)";
    let primitive_word = match p.next(PRIMITIVES)? {
        Tok::Word(w) => w,
        other => return Err(p.expected(PRIMITIVES, &other)),
    };
    let (primitive, target) = match primitive_word.as_str() {
        "find" => (Primitive::Find, p.target()?),
        "path" => {
            p.expect_word("to")?;
            (Primitive::Path, p.target()?)
        }
        "traverse" => {
            let target = p.target()?;
            p.expect_word("from")?;
            match p.next("`(`")? {
                Tok::LParen => {}
                other => return Err(p.expected("`(`", &other)),
            }
            let from = p.pred()?;
            match p.next("closing `)`")? {
                Tok::RParen => {}
                other => return Err(p.expected("closing `)`", &other)),
            }
            (
                Primitive::Traverse {
                    from: Box::new(from),
                },
                target,
            )
        }
        _ => {
            return Err(ParseError {
                kind: ParseErrorKind::Expected {
                    expected: PRIMITIVES,
                    found: primitive_word,
                },
                offset: 0,
            })
        }
    };
    let pred = if p.eat_word("where") {
        Some(p.pred()?)
    } else {
        None
    };
    let domain = if p.eat_word("in") {
        Some(p.string("domain slug")?)
    } else {
        None
    };
    if let Some(tok) = p.peek() {
        return Err(ParseError {
            kind: ParseErrorKind::TrailingInput {
                found: tok.render(),
            },
            offset: p.offset(),
        });
    }
    Ok(Query {
        primitive,
        target,
        pred,
        domain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) {
        let q = parse(text).expect("parses");
        let rendered = q.to_string();
        let q2 = parse(&rendered).expect("canonical form parses");
        assert_eq!(q, q2, "round trip of {text:?} via {rendered:?}");
    }

    #[test]
    fn round_trips() {
        roundtrip("find fields");
        roundtrip("find nodes where unlabeled");
        roundtrip("find fields where label synonym-of passenger");
        roundtrip("find fields where label = \"Departure Date\" in airline");
        roundtrip("path to fields where rejected ~ make");
        roundtrip("traverse nodes from (label = Passengers) where kind = field");
        roundtrip(
            "find nodes where (labeled or rule ~ internal:) and not \
             (label hyponym-of vehicle or label hypernym-of car)",
        );
        roundtrip("find groups where rule = \"internal:LI5\" and label ~ \"date\"");
    }

    #[test]
    fn canonical_display_is_fixed_point() {
        let q = parse("find fields where label = Make and (labeled or unlabeled)").unwrap();
        let once = q.to_string();
        assert_eq!(once, parse(&once).unwrap().to_string());
    }

    #[test]
    fn precedence_binds_and_tighter_than_or() {
        let q = parse("find nodes where labeled or unlabeled and kind = field").unwrap();
        let Some(Pred::Or(_, right)) = q.pred else {
            panic!("expected top-level or");
        };
        assert!(matches!(*right, Pred::And(..)));
    }

    #[test]
    fn typed_errors_carry_offsets() {
        let err = parse("find widgets").unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::Expected { .. }),
            "{err:?}"
        );
        assert_eq!(err.offset, 5);

        let err = parse("find fields where").unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::UnexpectedEnd { .. }),
            "{err:?}"
        );

        let err = parse("find fields where label = \"open").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnterminatedString);
        assert_eq!(err.offset, 26);

        let err = parse("find fields where label ? x").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedChar('?'));

        let err = parse("find fields extra").unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::TrailingInput { .. }),
            "{err:?}"
        );

        let long = format!(
            "find fields where label = \"{}\"",
            "x".repeat(MAX_QUERY_LEN)
        );
        let err = parse(&long).unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::QueryTooLong { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn bad_escape_is_rejected() {
        let err = parse("find fields where label = \"a\\n\"").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::BadEscape('n'));
    }
}
