//! Query intermediate representation.
//!
//! A [`Query`] pairs one primitive (`find`, `path to`, `traverse … from`)
//! with a node-class target and optional predicate filters, plus an
//! optional `in "<domain>"` scope. Predicates compose with `and` / `or` /
//! `not` over atoms spanning the three artifact dimensions: label text
//! (exact, substring, or lexicon-expanded through `synonym-of` /
//! `hyponym-of` / `hypernym-of`), node kind, the fired labeling rule, and
//! rejected-candidate provenance.
//!
//! [`std::fmt::Display`] renders the canonical text form: every string
//! quoted, minimal parentheses. `parse(query.to_string())` round-trips
//! structurally, which is what keys pagination cursors to the query.

use std::fmt;

/// Which class of tree nodes a query returns (the root is never
/// returned: it names the domain rather than any integrated concept).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Leaf nodes — the integrated interface's fields.
    Fields,
    /// Internal nodes — the integrated interface's groups.
    Groups,
    /// Both.
    Nodes,
}

impl Target {
    fn keyword(self) -> &'static str {
        match self {
            Target::Fields => "fields",
            Target::Groups => "groups",
            Target::Nodes => "nodes",
        }
    }
}

/// The traversal shape of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Primitive {
    /// Scan every candidate node.
    Find,
    /// Like `find`, but each match also carries its root-to-node trail.
    Path,
    /// Scan for start nodes matching the `from` predicate, then collect
    /// matches from their subtrees (start nodes included).
    Traverse {
        /// Predicate selecting the traversal start nodes.
        from: Box<Pred>,
    },
}

/// How a `label` atom compares against a node label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelOp {
    /// Exact string equality — O(symbol compare) once both sides are
    /// interned.
    Equals,
    /// Case-insensitive substring containment.
    Contains,
    /// Some normalized content-word key of the label shares a synset
    /// with the query word.
    SynonymOf,
    /// Some key is a strict hyponym of the query word (the query word is
    /// its transitive hypernym).
    HyponymOf,
    /// Some key is a strict hypernym of the query word.
    HypernymOf,
}

impl LabelOp {
    fn keyword(self) -> &'static str {
        match self {
            LabelOp::Equals => "=",
            LabelOp::Contains => "~",
            LabelOp::SynonymOf => "synonym-of",
            LabelOp::HyponymOf => "hyponym-of",
            LabelOp::HypernymOf => "hypernym-of",
        }
    }
}

/// How a provenance atom (`rule`, `rejected`) compares its string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrOp {
    /// Exact equality.
    Equals,
    /// Case-insensitive substring containment.
    Contains,
}

impl StrOp {
    fn keyword(self) -> &'static str {
        match self {
            StrOp::Equals => "=",
            StrOp::Contains => "~",
        }
    }
}

/// The node kind named by a `kind =` atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KindName {
    /// Leaf.
    Field,
    /// Internal.
    Group,
}

impl KindName {
    fn keyword(self) -> &'static str {
        match self {
            KindName::Field => "field",
            KindName::Group => "group",
        }
    }
}

/// A predicate over one tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// `label <op> <string>`.
    Label(LabelOp, String),
    /// `kind = field|group`.
    Kind(KindName),
    /// `rule <op> <string>` — the labeling rule recorded in the node's
    /// [`qi_core::LabelDecision`].
    Rule(StrOp, String),
    /// `rejected <op> <string>` — some rejected decision candidate.
    Rejected(StrOp, String),
    /// The node carries a label.
    Labeled,
    /// The node carries no label.
    Unlabeled,
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// Binding strength for minimal-parenthesis rendering: `or` < `and`
    /// < `not` < atoms.
    fn precedence(&self) -> u8 {
        match self {
            Pred::Or(..) => 0,
            Pred::And(..) => 1,
            Pred::Not(..) => 2,
            _ => 3,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, min: u8) -> fmt::Result {
        let prec = self.precedence();
        if prec < min {
            write!(f, "(")?;
        }
        match self {
            Pred::Label(op, s) => write!(f, "label {} {}", op.keyword(), quote(s))?,
            Pred::Kind(k) => write!(f, "kind = {}", k.keyword())?,
            Pred::Rule(op, s) => write!(f, "rule {} {}", op.keyword(), quote(s))?,
            Pred::Rejected(op, s) => write!(f, "rejected {} {}", op.keyword(), quote(s))?,
            Pred::Labeled => write!(f, "labeled")?,
            Pred::Unlabeled => write!(f, "unlabeled")?,
            Pred::And(a, b) => {
                a.fmt_prec(f, 1)?;
                write!(f, " and ")?;
                // Right operand at prec+1 keeps rendering left-associative,
                // matching the parser.
                b.fmt_prec(f, 2)?;
            }
            Pred::Or(a, b) => {
                a.fmt_prec(f, 0)?;
                write!(f, " or ")?;
                b.fmt_prec(f, 1)?;
            }
            Pred::Not(inner) => {
                write!(f, "not ")?;
                inner.fmt_prec(f, 2)?;
            }
        }
        if prec < min {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// One parsed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Traversal shape.
    pub primitive: Primitive,
    /// Node class returned.
    pub target: Target,
    /// Optional `where` filter.
    pub pred: Option<Pred>,
    /// Optional `in "<domain>"` scope (a domain slug).
    pub domain: Option<String>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.primitive {
            Primitive::Find => write!(f, "find {}", self.target.keyword())?,
            Primitive::Path => write!(f, "path to {}", self.target.keyword())?,
            Primitive::Traverse { from } => {
                write!(f, "traverse {} from ({from})", self.target.keyword())?
            }
        }
        if let Some(pred) = &self.pred {
            write!(f, " where {pred}")?;
        }
        if let Some(domain) = &self.domain {
            write!(f, " in {}", quote(domain))?;
        }
        Ok(())
    }
}

/// Canonical quoted form of a string operand.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_canonical() {
        let q = Query {
            primitive: Primitive::Find,
            target: Target::Fields,
            pred: Some(Pred::And(
                Box::new(Pred::Label(LabelOp::SynonymOf, "passenger".into())),
                Box::new(Pred::Or(
                    Box::new(Pred::Labeled),
                    Box::new(Pred::Not(Box::new(Pred::Kind(KindName::Group)))),
                )),
            )),
            domain: Some("airline".into()),
        };
        assert_eq!(
            q.to_string(),
            "find fields where label synonym-of \"passenger\" \
             and (labeled or not kind = group) in \"airline\""
        );
    }

    #[test]
    fn quoting_escapes() {
        let p = Pred::Label(LabelOp::Equals, "say \"hi\"\\".into());
        assert_eq!(p.to_string(), "label = \"say \\\"hi\\\"\\\\\"");
    }
}
