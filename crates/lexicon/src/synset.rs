//! Synset identifiers.

/// Identifier of a synonym set (synset) inside a [`crate::Lexicon`].
///
/// Synsets are stored in a dense arena, so the id is a plain index. Ids are
/// only meaningful relative to the lexicon that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SynsetId(pub u32);

impl std::fmt::Display for SynsetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "synset#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        assert_eq!(SynsetId(7).to_string(), "synset#7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(SynsetId(1) < SynsetId(2));
    }
}
