//! A WordNet-style lexical database substrate.
//!
//! The paper relies on WordNet \[9\] for exactly three queries during label
//! processing:
//!
//! 1. **base forms** — the morphological reduction of a token to its
//!    dictionary form (`children` → `child`), used in the second
//!    normalization step (§3.1);
//! 2. **token synonymy** — `area` ∼ `field`, `study` ∼ `work`, used by the
//!    `synonym` label relation (Definition 1);
//! 3. **token hypernymy** — `location` ⊐ `area`, used by the
//!    `hypernym`/`hyponym` label relations (Definition 1) and the logical
//!    inference rules of §5.
//!
//! The original WordNet database is not redistributable inside this
//! reproduction, so this crate implements the same storage model from
//! scratch — synsets, a lemma index, a hypernym DAG between synsets, and a
//! Morphy-style rule lemmatizer with an exception list — and ships an
//! embedded lexicon ([`Lexicon::builtin`]) covering the full vocabulary of
//! the seven evaluation domains. `DESIGN.md` §3 documents why this
//! substitution preserves the paper's behaviour.
//!
//! # Example
//!
//! ```
//! use qi_lexicon::Lexicon;
//!
//! let lex = Lexicon::builtin();
//! assert!(lex.are_synonyms("area", "field"));
//! assert!(lex.is_hypernym_of("location", "city"));
//! assert_eq!(lex.base_form("children").as_deref(), Some("child"));
//! ```

pub mod builder;
pub mod builtin;
pub mod format;
pub mod morphy;
pub mod synset;

pub use builder::LexiconBuilder;
pub use synset::SynsetId;

use qi_runtime::{CacheStats, ShardedCache};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// The lexical database: synsets, lemma index, hypernym DAG, morphology.
///
/// All queries take `&self`; the transitive-hypernymy and base-form
/// memo-caches are lock-striped ([`qi_runtime::ShardedCache`]), so one
/// instance can serve a whole evaluation run across threads without the
/// hot path serializing behind a single global lock.
#[derive(Debug)]
pub struct Lexicon {
    /// Synset membership: `synsets[id]` is the list of member lemmas.
    pub(crate) synsets: Vec<Vec<String>>,
    /// Lemma → synsets containing it.
    pub(crate) lemma_index: HashMap<String, Vec<SynsetId>>,
    /// Porter stem → lemmas sharing that stem (fallback resolution).
    pub(crate) stem_index: HashMap<String, Vec<String>>,
    /// `hypernyms[id]` = direct parent synsets of `id`.
    pub(crate) hypernyms: Vec<Vec<SynsetId>>,
    /// Irregular morphology: surface form → base form.
    pub(crate) exceptions: HashMap<String, String>,
    /// Memoized transitive-hypernymy answers.
    hypernym_cache: ShardedCache<(SynsetId, SynsetId), bool>,
    /// Memoized morphological reductions (`base_form` results, covering
    /// the Morphy detachment-rule walk).
    base_form_cache: ShardedCache<String, Option<String>>,
    /// Memoized word → synset-id resolutions ([`Lexicon::resolve`]).
    /// The matcher's candidate generator keys its synonym postings on
    /// these ids, so the same few hundred tokens resolve once per corpus
    /// instead of once per pairwise `are_synonyms` probe.
    resolve_cache: ShardedCache<String, Vec<SynsetId>>,
}

impl Lexicon {
    /// An empty lexicon (no synsets, no morphology beyond the identity).
    pub fn empty() -> Self {
        LexiconBuilder::new().build()
    }

    /// The embedded lexicon covering the seven evaluation domains.
    pub fn builtin() -> Self {
        builtin::build()
    }

    /// Number of synsets.
    pub fn synset_count(&self) -> usize {
        self.synsets.len()
    }

    /// Number of distinct lemmas.
    pub fn lemma_count(&self) -> usize {
        self.lemma_index.len()
    }

    /// True if `word` is a known lemma (exact match, no morphology).
    pub fn is_lemma(&self, word: &str) -> bool {
        self.lemma_index.contains_key(word)
    }

    /// The members of a synset.
    pub fn synset_members(&self, id: SynsetId) -> &[String] {
        &self.synsets[id.0 as usize]
    }

    /// Morphological base form of `token` (lowercase), like WordNet's
    /// Morphy: exception list first, then detachment rules validated
    /// against the lemma index. Returns `None` when no reduction applies.
    /// Memoized — the same few hundred tokens are reduced once per
    /// cluster per domain otherwise.
    pub fn base_form(&self, token: &str) -> Option<String> {
        if let Some(hit) = self.base_form_cache.get(token) {
            return hit;
        }
        let reduced = self.base_form_uncached(token);
        self.base_form_cache
            .insert(token.to_string(), reduced.clone());
        reduced
    }

    fn base_form_uncached(&self, token: &str) -> Option<String> {
        if let Some(base) = self.exceptions.get(token) {
            return Some(base.clone());
        }
        if self.is_lemma(token) {
            return None; // already a base form
        }
        morphy::reduce(token, |candidate| self.is_lemma(candidate))
    }

    /// Enable or disable the lexicon's memo-caches (hypernymy and
    /// base-form). Benchmarks disable them to measure the raw pipeline.
    pub fn set_cache_enabled(&self, enabled: bool) {
        self.hypernym_cache.set_enabled(enabled);
        self.base_form_cache.set_enabled(enabled);
        self.resolve_cache.set_enabled(enabled);
    }

    /// Aggregated hit/miss counters of the lexicon's memo-caches.
    pub fn cache_stats(&self) -> CacheStats {
        self.hypernym_cache
            .stats()
            .merge(&self.base_form_cache.stats())
            .merge(&self.resolve_cache.stats())
    }

    /// Per-cache hit/miss counters, keyed by stable cache names
    /// (`lexicon.hypernym`, `lexicon.base_form`, `lexicon.resolve`) —
    /// the telemetry registry records each under `cache.<name>.*`.
    pub fn named_cache_stats(&self) -> [(&'static str, CacheStats); 3] {
        [
            ("lexicon.base_form", self.base_form_cache.stats()),
            ("lexicon.hypernym", self.hypernym_cache.stats()),
            ("lexicon.resolve", self.resolve_cache.stats()),
        ]
    }

    /// Counters of the morphology (`base_form`) cache alone. This is
    /// the one lexicon cache probed once per *token occurrence* (during
    /// `LabelText` construction) rather than once per scored candidate
    /// pair, so its hit rate tracks vocabulary variety — the signal the
    /// drift benchmarks compare against the cloned-corpus ceiling. The
    /// resolve and synonymy caches are flooded by pair-scoring probes
    /// of already-seen tokens and sit near 1.0 on any corpus shape.
    pub fn morph_cache_stats(&self) -> CacheStats {
        self.base_form_cache.stats()
    }

    /// Drop all memoized entries and reset hit/miss counters — used by
    /// determinism tests so a second run sees the same cold-cache world
    /// as the first.
    pub fn reset_caches(&self) {
        self.hypernym_cache.clear();
        self.base_form_cache.clear();
        self.resolve_cache.clear();
    }

    /// Resolve a word to the synsets it may denote: exact lemma match,
    /// else morphological base form, else lemmas sharing its Porter stem.
    /// Memoized — this is the hottest lexicon query on the matcher path
    /// (every synonym probe and every posting key resolves its tokens).
    pub fn resolve(&self, word: &str) -> Vec<SynsetId> {
        if let Some(hit) = self.resolve_cache.get(word) {
            return hit;
        }
        let ids = self.resolve_uncached(word);
        self.resolve_cache.insert(word.to_string(), ids.clone());
        ids
    }

    fn resolve_uncached(&self, word: &str) -> Vec<SynsetId> {
        if let Some(ids) = self.lemma_index.get(word) {
            return ids.clone();
        }
        if let Some(base) = self.base_form(word) {
            if let Some(ids) = self.lemma_index.get(&base) {
                return ids.clone();
            }
        }
        let stem = qi_text::stem(word);
        if let Some(lemmas) = self.stem_index.get(&stem) {
            let mut out: Vec<SynsetId> = Vec::new();
            for lemma in lemmas {
                if let Some(ids) = self.lemma_index.get(lemma) {
                    for id in ids {
                        if !out.contains(id) {
                            out.push(*id);
                        }
                    }
                }
            }
            return out;
        }
        Vec::new()
    }

    /// True if the two words share a synset (after resolution). Callers
    /// implementing Definition 1 check *equality* before synonymy, so the
    /// self-synonym case never decides a label relation.
    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        let sa = self.resolve(a);
        if sa.is_empty() {
            return false;
        }
        let sb = self.resolve(b);
        sa.iter().any(|id| sb.contains(id))
    }

    /// True if `general` denotes a (transitive, strict) hypernym of
    /// `specific`: some synset of `specific` reaches some synset of
    /// `general` by one or more hypernym edges.
    pub fn is_hypernym_of(&self, general: &str, specific: &str) -> bool {
        let targets = self.resolve(general);
        if targets.is_empty() {
            return false;
        }
        let sources = self.resolve(specific);
        sources
            .iter()
            .any(|&src| targets.iter().any(|&dst| self.synset_hypernym(dst, src)))
    }

    /// True if synset `general` is a strict ancestor of synset `specific`
    /// in the hypernym DAG. Memoized.
    pub fn synset_hypernym(&self, general: SynsetId, specific: SynsetId) -> bool {
        if general == specific {
            return false;
        }
        if let Some(hit) = self.hypernym_cache.get(&(general, specific)) {
            return hit;
        }
        let mut visited: HashSet<SynsetId> = HashSet::new();
        let mut stack: Vec<SynsetId> = self.hypernyms[specific.0 as usize].clone();
        let mut found = false;
        while let Some(node) = stack.pop() {
            if node == general {
                found = true;
                break;
            }
            if visited.insert(node) {
                stack.extend_from_slice(&self.hypernyms[node.0 as usize]);
            }
        }
        self.hypernym_cache.insert((general, specific), found);
        found
    }

    /// All strict ancestors (transitive hypernym synsets) of a word.
    pub fn ancestors(&self, word: &str) -> Vec<SynsetId> {
        let mut visited: HashSet<SynsetId> = HashSet::new();
        let mut stack: Vec<SynsetId> = Vec::new();
        for id in self.resolve(word) {
            stack.extend_from_slice(&self.hypernyms[id.0 as usize]);
        }
        let mut out = Vec::new();
        while let Some(node) = stack.pop() {
            if visited.insert(node) {
                out.push(node);
                stack.extend_from_slice(&self.hypernyms[node.0 as usize]);
            }
        }
        out
    }

    /// All synonym lemmas of `word` (members of every synset the word
    /// resolves to, excluding the word itself), in synset/member order —
    /// a deterministic surface for seeded paraphrase walks, so corpus
    /// generators never iterate the hash-ordered indexes directly.
    pub fn synonyms(&self, word: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for id in self.resolve(word) {
            for lemma in self.synset_members(id) {
                if lemma != word && !out.contains(lemma) {
                    out.push(lemma.clone());
                }
            }
        }
        out
    }

    /// Lemmas of every strict ancestor synset of `word`, in
    /// [`Lexicon::ancestors`] order — the hypernym half of a drift walk.
    pub fn hypernym_lemmas(&self, word: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for id in self.ancestors(word) {
            for lemma in self.synset_members(id) {
                if lemma != word && !out.contains(lemma) {
                    out.push(lemma.clone());
                }
            }
        }
        out
    }

    /// Lemmas sharing `word`'s Porter stem — the stemmer's inverse
    /// family, in synset build order. Used by the drift generator to
    /// emit morphological variants that still stem together.
    pub fn stem_family(&self, word: &str) -> Vec<String> {
        self.stem_index
            .get(&qi_text::stem(word))
            .cloned()
            .unwrap_or_default()
    }

    /// Every lemma in synset build order, deduplicated — a deterministic
    /// vocabulary surface for seeded corpus generators (the hash-ordered
    /// `lemma_index` must never leak into anything seed-reproducible).
    pub fn lemmas_in_build_order(&self) -> Vec<String> {
        let mut seen: HashSet<&str> = HashSet::new();
        let mut out: Vec<String> = Vec::new();
        for members in &self.synsets {
            for lemma in members {
                if seen.insert(lemma.as_str()) {
                    out.push(lemma.clone());
                }
            }
        }
        out
    }

    /// Irregular surface forms whose exception entry maps to `base`
    /// (`children` for `child`), sorted for determinism — the
    /// morphology-exception half of the stemmer's inverse families.
    pub fn surface_variants(&self, base: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .exceptions
            .iter()
            .filter(|(_, b)| b.as_str() == base)
            .map(|(surface, _)| surface.clone())
            .collect();
        out.sort();
        out
    }

    pub(crate) fn from_parts(
        synsets: Vec<Vec<String>>,
        hypernyms: Vec<Vec<SynsetId>>,
        exceptions: HashMap<String, String>,
    ) -> Self {
        let mut lemma_index: HashMap<String, Vec<SynsetId>> = HashMap::new();
        let mut stem_index: HashMap<String, Vec<String>> = HashMap::new();
        for (i, members) in synsets.iter().enumerate() {
            for lemma in members {
                lemma_index
                    .entry(lemma.clone())
                    .or_default()
                    .push(SynsetId(i as u32));
                let stem = qi_text::stem(lemma);
                match stem_index.entry(stem) {
                    Entry::Occupied(mut e) => {
                        if !e.get().contains(lemma) {
                            e.get_mut().push(lemma.clone());
                        }
                    }
                    Entry::Vacant(e) => {
                        e.insert(vec![lemma.clone()]);
                    }
                }
            }
        }
        Lexicon {
            synsets,
            lemma_index,
            stem_index,
            hypernyms,
            exceptions,
            hypernym_cache: ShardedCache::default(),
            base_form_cache: ShardedCache::default(),
            resolve_cache: ShardedCache::default(),
        }
    }
}

impl qi_text::Lemmatizer for Lexicon {
    fn lemma(&self, token: &str) -> Option<String> {
        self.base_form(token)
    }

    fn is_word(&self, token: &str) -> bool {
        self.is_lemma(token) || self.base_form(token).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_text::Lemmatizer;

    fn sample() -> Lexicon {
        LexiconBuilder::new()
            .synset(&["area", "field", "region"])
            .synset(&["study", "work"])
            .synset(&["location"])
            .synset(&["city", "town"])
            .synset(&["child", "kid"])
            .hypernym("location", "area")
            .hypernym("area", "city")
            .exception("children", "child")
            .build()
    }

    #[test]
    fn synonyms_share_synset() {
        let lex = sample();
        assert!(lex.are_synonyms("area", "field"));
        assert!(lex.are_synonyms("field", "region"));
        assert!(!lex.are_synonyms("area", "study"));
    }

    #[test]
    fn unknown_words_are_not_synonyms() {
        let lex = sample();
        assert!(!lex.are_synonyms("zzz", "area"));
        assert!(!lex.are_synonyms("area", "zzz"));
        assert!(!lex.are_synonyms("zzz", "zzz"));
    }

    #[test]
    fn hypernymy_is_transitive_and_strict() {
        let lex = sample();
        assert!(lex.is_hypernym_of("location", "area"));
        assert!(lex.is_hypernym_of("location", "city"));
        assert!(lex.is_hypernym_of("area", "town")); // via synonym city
        assert!(!lex.is_hypernym_of("city", "location"));
        assert!(!lex.is_hypernym_of("area", "area")); // strict
        assert!(!lex.is_hypernym_of("area", "field")); // synonyms, not hypernyms
    }

    #[test]
    fn base_form_uses_exceptions_then_rules() {
        let lex = sample();
        assert_eq!(lex.base_form("children").as_deref(), Some("child"));
        assert_eq!(lex.base_form("cities").as_deref(), Some("city"));
        assert_eq!(lex.base_form("areas").as_deref(), Some("area"));
        assert_eq!(lex.base_form("city"), None); // already base
        assert_eq!(lex.base_form("qwerty"), None); // unknown
    }

    #[test]
    fn resolve_falls_back_to_morphology_and_stem() {
        let lex = sample();
        assert!(!lex.resolve("cities").is_empty());
        assert!(lex.are_synonyms("cities", "town"));
        assert!(lex.is_hypernym_of("location", "cities"));
    }

    #[test]
    fn lemmatizer_impl_delegates() {
        let lex = sample();
        assert_eq!(lex.lemma("children").as_deref(), Some("child"));
        assert_eq!(lex.lemma("child"), None);
    }

    #[test]
    fn empty_lexicon_answers_negatively() {
        let lex = Lexicon::empty();
        assert_eq!(lex.synset_count(), 0);
        assert!(!lex.are_synonyms("a", "b"));
        assert!(!lex.is_hypernym_of("a", "b"));
        assert_eq!(lex.base_form("children"), None);
    }

    #[test]
    fn ancestors_collects_transitive_closure() {
        let lex = sample();
        let city_ancestors = lex.ancestors("city");
        assert_eq!(city_ancestors.len(), 2); // {area-synset, location-synset}
        assert!(lex.ancestors("location").is_empty());
    }

    #[test]
    fn multi_sense_words_resolve_to_all_synsets() {
        let lex = LexiconBuilder::new()
            .synset(&["class", "category"])
            .synset(&["class", "course"])
            .build();
        assert_eq!(lex.resolve("class").len(), 2);
        assert!(lex.are_synonyms("class", "category"));
        assert!(lex.are_synonyms("class", "course"));
        assert!(!lex.are_synonyms("category", "course"));
    }
}

#[cfg(test)]
mod compound_integration {
    use super::*;

    /// The builtin lexicon splits `zipcode` via the compound rule, so
    /// `Zipcode` is *equal* to `Zip Code` (a ubiquitous real-Web variant).
    #[test]
    fn zipcode_equals_zip_code() {
        let lex = Lexicon::builtin();
        let a = qi_text::LabelText::new("Zipcode", &lex);
        let b = qi_text::LabelText::new("Zip Code", &lex);
        assert!(a.word_equal(&b), "{:?} vs {:?}", a.keys(), b.keys());
    }

    /// Known lemmas never split, even when halves happen to be words.
    #[test]
    fn known_lemmas_do_not_split() {
        let lex = Lexicon::builtin();
        // `mileage` is a lemma even though `mile` + `age` are both words.
        let m = qi_text::LabelText::new("Mileage", &lex);
        assert_eq!(m.expressiveness(), 1, "{:?}", m.keys());
    }
}
