//! Morphy-style rule lemmatization.
//!
//! WordNet's morphological processor ("Morphy") reduces inflected forms to
//! base forms by (1) an exception list for irregulars and (2) a small set
//! of suffix-detachment rules whose output is accepted only if it is a
//! known lemma. The exception list lives in the [`crate::Lexicon`]; this
//! module implements the detachment rules.

/// Suffix detachment rules, tried in order. `(suffix, replacement)`.
///
/// These are WordNet's noun, verb and adjective rules merged into a single
/// list — query-interface labels do not carry part-of-speech information,
/// so, like the paper, we accept the first candidate validated by the
/// lemma index regardless of part of speech.
const RULES: &[(&str, &str)] = &[
    // noun rules
    ("ses", "s"),
    ("xes", "x"),
    ("zes", "z"),
    ("ches", "ch"),
    ("shes", "sh"),
    ("men", "man"),
    ("ies", "y"),
    // verb rules
    ("es", "e"),
    ("es", ""),
    ("ed", "e"),
    ("ed", ""),
    ("ing", "e"),
    ("ing", ""),
    // adjective rules
    ("er", ""),
    ("est", ""),
    ("er", "e"),
    ("est", "e"),
    // plain plural last (most permissive)
    ("s", ""),
];

/// Apply the detachment rules to `token`, returning the first candidate
/// accepted by `is_lemma`. Returns `None` when no rule produces a known
/// lemma.
pub fn reduce(token: &str, is_lemma: impl Fn(&str) -> bool) -> Option<String> {
    if token.len() < 3 {
        return None;
    }
    for (suffix, replacement) in RULES {
        if let Some(stripped) = token.strip_suffix(suffix) {
            let candidate = format!("{stripped}{replacement}");
            if !candidate.is_empty() && candidate != token && is_lemma(&candidate) {
                return Some(candidate);
            }
        }
    }
    // Doubled-consonant verb forms: "stopped" -> "stop", "stopping" -> "stop".
    for suffix in ["ed", "ing"] {
        if let Some(stripped) = token.strip_suffix(suffix) {
            let bytes = stripped.as_bytes();
            if bytes.len() >= 3 && bytes[bytes.len() - 1] == bytes[bytes.len() - 2] {
                let candidate = &stripped[..stripped.len() - 1];
                if is_lemma(candidate) {
                    return Some(candidate.to_string());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn lemmas() -> HashSet<&'static str> {
        [
            "city", "area", "bus", "box", "church", "man", "leave", "go", "stop", "prefer",
            "depart", "large", "wish", "stay",
        ]
        .into_iter()
        .collect()
    }

    fn run(token: &str) -> Option<String> {
        let known = lemmas();
        reduce(token, |c| known.contains(c))
    }

    #[test]
    fn noun_plurals() {
        assert_eq!(run("cities").as_deref(), Some("city"));
        assert_eq!(run("areas").as_deref(), Some("area"));
        assert_eq!(run("buses").as_deref(), Some("bus"));
        assert_eq!(run("boxes").as_deref(), Some("box"));
        assert_eq!(run("churches").as_deref(), Some("church"));
        assert_eq!(run("men").as_deref(), Some("man"));
    }

    #[test]
    fn verb_forms() {
        assert_eq!(run("leaves").as_deref(), Some("leave"));
        assert_eq!(run("leaving").as_deref(), Some("leave"));
        assert_eq!(run("departed").as_deref(), Some("depart"));
        assert_eq!(run("departing").as_deref(), Some("depart"));
        assert_eq!(run("going").as_deref(), Some("go"));
        assert_eq!(run("preferred").as_deref(), Some("prefer"));
        assert_eq!(run("stopped").as_deref(), Some("stop"));
        assert_eq!(run("stopping").as_deref(), Some("stop"));
        assert_eq!(run("wishes").as_deref(), Some("wish"));
    }

    #[test]
    fn adjective_forms() {
        assert_eq!(run("larger").as_deref(), Some("large"));
        assert_eq!(run("largest").as_deref(), Some("large"));
    }

    #[test]
    fn unknown_or_short_tokens() {
        assert_eq!(run("qwerties"), None);
        assert_eq!(run("as"), None);
        assert_eq!(run(""), None);
    }

    #[test]
    fn no_self_loop() {
        // A token that is already a lemma is not "reduced" to itself.
        assert_eq!(run("go"), None);
    }
}
