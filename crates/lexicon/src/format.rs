//! A plain-text lexicon exchange format.
//!
//! WordNet ships as the `data.*`/`index.*`/`*.exc` files; this crate's
//! equivalent is a single line-oriented text file that can be versioned,
//! diffed and hand-edited:
//!
//! ```text
//! # comment
//! syn: area, field, region
//! hyp: location > area
//! exc: children -> child
//! ```
//!
//! * `syn:` declares a synset by listing its member lemmas;
//! * `hyp:` declares a direct hypernym edge between (the synsets of) two
//!   representative words — both must already be members of some synset;
//! * `exc:` declares an irregular base form.
//!
//! [`parse`] builds a [`Lexicon`]; [`render`] writes one back out.
//! Round-tripping preserves all queries (synsets may be reordered).

use crate::builder::LexiconBuilder;
use crate::synset::SynsetId;
use crate::Lexicon;

/// Parse errors with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse the text format into a [`Lexicon`].
pub fn parse(text: &str) -> Result<Lexicon, ParseError> {
    let mut builder = LexiconBuilder::new();
    let mut declared: Vec<String> = Vec::new();
    let mut edges: Vec<(usize, String, String)> = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((kind, rest)) = line.split_once(':') else {
            return Err(ParseError {
                line: line_no,
                message: format!("expected `syn:`, `hyp:` or `exc:`, got {line:?}"),
            });
        };
        let rest = rest.trim();
        match kind.trim() {
            "syn" => {
                let members: Vec<&str> = rest
                    .split(',')
                    .map(str::trim)
                    .filter(|m| !m.is_empty())
                    .collect();
                if members.is_empty() {
                    return Err(ParseError {
                        line: line_no,
                        message: "empty synset".to_string(),
                    });
                }
                for m in &members {
                    declared.push(m.to_lowercase());
                }
                builder = builder.synset(&members);
            }
            "hyp" => {
                let Some((general, specific)) = rest.split_once('>') else {
                    return Err(ParseError {
                        line: line_no,
                        message: format!("expected `general > specific`, got {rest:?}"),
                    });
                };
                edges.push((
                    line_no,
                    general.trim().to_lowercase(),
                    specific.trim().to_lowercase(),
                ));
            }
            "exc" => {
                let Some((surface, base)) = rest.split_once("->") else {
                    return Err(ParseError {
                        line: line_no,
                        message: format!("expected `surface -> base`, got {rest:?}"),
                    });
                };
                builder = builder.exception(surface.trim(), base.trim());
            }
            other => {
                return Err(ParseError {
                    line: line_no,
                    message: format!("unknown record kind {other:?}"),
                });
            }
        }
    }
    // Validate hypernym endpoints before handing them to the builder
    // (whose contract is panic-on-bug, not error-on-input).
    for (line, general, specific) in edges {
        for word in [&general, &specific] {
            if !declared.contains(word) {
                return Err(ParseError {
                    line,
                    message: format!("hypernym endpoint {word:?} not in any synset"),
                });
            }
        }
        builder = builder.hypernym(&general, &specific);
    }
    Ok(builder.build())
}

/// Render a lexicon in the text format.
pub fn render(lexicon: &Lexicon) -> String {
    let mut out = String::new();
    out.push_str("# lexicon text format: syn / hyp / exc records\n");
    for members in &lexicon.synsets {
        out.push_str("syn: ");
        out.push_str(&members.join(", "));
        out.push('\n');
    }
    for (child_idx, parents) in lexicon.hypernyms.iter().enumerate() {
        let child = SynsetId(child_idx as u32);
        for &parent in parents {
            out.push_str(&format!(
                "hyp: {} > {}\n",
                lexicon.synset_members(parent)[0],
                lexicon.synset_members(child)[0]
            ));
        }
    }
    let mut exceptions: Vec<(&String, &String)> = lexicon.exceptions.iter().collect();
    exceptions.sort();
    for (surface, base) in exceptions {
        out.push_str(&format!("exc: {surface} -> {base}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# test lexicon
syn: area, field, region
syn: location
syn: city, town
hyp: location > area
hyp: area > city
exc: children -> child
";

    #[test]
    fn parse_builds_working_lexicon() {
        let lex = parse(SAMPLE).unwrap();
        assert!(lex.are_synonyms("area", "field"));
        assert!(lex.is_hypernym_of("location", "city"));
        assert_eq!(lex.base_form("children").as_deref(), Some("child"));
    }

    #[test]
    fn round_trip_preserves_queries() {
        let lex = parse(SAMPLE).unwrap();
        let text = render(&lex);
        let again = parse(&text).unwrap();
        assert!(again.are_synonyms("area", "region"));
        assert!(again.is_hypernym_of("location", "town"));
        assert_eq!(again.base_form("children").as_deref(), Some("child"));
        assert_eq!(again.synset_count(), lex.synset_count());
    }

    #[test]
    fn builtin_round_trips() {
        let builtin = Lexicon::builtin();
        let text = render(&builtin);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.synset_count(), builtin.synset_count());
        assert_eq!(parsed.lemma_count(), builtin.lemma_count());
        // Spot-check the load-bearing facts.
        assert!(parsed.are_synonyms("area", "field"));
        assert!(parsed.is_hypernym_of("location", "city"));
        assert!(parsed.is_hypernym_of("person", "seniors"));
        assert_eq!(parsed.base_form("people").as_deref(), Some("person"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("syn: a\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse("hyp: a > b\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("not in any synset"));
        let err = parse("syn:\n").unwrap_err();
        assert!(err.message.contains("empty synset"));
        let err = parse("exc: children child\n").unwrap_err();
        assert!(err.message.contains("surface -> base"));
        let err = parse("wat: x\n").unwrap_err();
        assert!(err.message.contains("unknown record"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let lex = parse("\n# hi\n\nsyn: a, b\n").unwrap();
        assert!(lex.are_synonyms("a", "b"));
    }
}
