//! Fluent construction of [`Lexicon`]s.

use crate::synset::SynsetId;
use crate::Lexicon;
use std::collections::HashMap;

/// Builder for a [`Lexicon`].
///
/// ```
/// use qi_lexicon::LexiconBuilder;
///
/// let lex = LexiconBuilder::new()
///     .synset(&["car", "auto", "automobile"])
///     .synset(&["vehicle"])
///     .hypernym("vehicle", "car")
///     .exception("children", "child")
///     .build();
/// assert!(lex.are_synonyms("car", "auto"));
/// assert!(lex.is_hypernym_of("vehicle", "automobile"));
/// ```
#[derive(Debug, Default)]
pub struct LexiconBuilder {
    synsets: Vec<Vec<String>>,
    /// Hypernym edges expressed on representative words, resolved at build.
    word_edges: Vec<(String, String)>,
    exceptions: HashMap<String, String>,
}

impl LexiconBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a synset with the given member lemmas (lowercase). A lemma may
    /// belong to multiple synsets (word senses).
    pub fn synset(mut self, members: &[&str]) -> Self {
        assert!(!members.is_empty(), "synset must have at least one member");
        self.synsets
            .push(members.iter().map(|m| m.to_lowercase()).collect());
        self
    }

    /// Declare that every synset containing `general` is a direct hypernym
    /// of every synset containing `specific`. Resolved at [`build`].
    ///
    /// [`build`]: LexiconBuilder::build
    pub fn hypernym(mut self, general: &str, specific: &str) -> Self {
        self.word_edges
            .push((general.to_lowercase(), specific.to_lowercase()));
        self
    }

    /// Register an irregular base form (`children` → `child`).
    pub fn exception(mut self, surface: &str, base: &str) -> Self {
        self.exceptions
            .insert(surface.to_lowercase(), base.to_lowercase());
        self
    }

    /// Finalize the lexicon. Hypernym edges whose endpoint words are not
    /// members of any synset panic — an edge on an unknown word is a
    /// construction bug, not a runtime condition.
    pub fn build(self) -> Lexicon {
        let mut membership: HashMap<&str, Vec<SynsetId>> = HashMap::new();
        for (i, members) in self.synsets.iter().enumerate() {
            for m in members {
                membership
                    .entry(m.as_str())
                    .or_default()
                    .push(SynsetId(i as u32));
            }
        }
        let mut hypernyms: Vec<Vec<SynsetId>> = vec![Vec::new(); self.synsets.len()];
        for (general, specific) in &self.word_edges {
            let parents = membership
                .get(general.as_str())
                .unwrap_or_else(|| panic!("hypernym endpoint {general:?} not in any synset"));
            let children = membership
                .get(specific.as_str())
                .unwrap_or_else(|| panic!("hypernym endpoint {specific:?} not in any synset"));
            for &child in children {
                for &parent in parents {
                    if parent != child && !hypernyms[child.0 as usize].contains(&parent) {
                        hypernyms[child.0 as usize].push(parent);
                    }
                }
            }
        }
        Lexicon::from_parts(self.synsets, hypernyms, self.exceptions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_edges_between_all_matching_synsets() {
        let lex = LexiconBuilder::new()
            .synset(&["bank", "riverbank"])
            .synset(&["bank", "depository"])
            .synset(&["institution"])
            .hypernym("institution", "bank")
            .build();
        // Both senses of "bank" get the institution parent (coarse but
        // adequate for short interface labels).
        assert!(lex.is_hypernym_of("institution", "riverbank"));
        assert!(lex.is_hypernym_of("institution", "depository"));
    }

    #[test]
    #[should_panic(expected = "not in any synset")]
    fn unknown_edge_endpoint_panics() {
        let _ = LexiconBuilder::new()
            .synset(&["car"])
            .hypernym("vehicle", "car")
            .build();
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_synset_panics() {
        let _ = LexiconBuilder::new().synset(&[]).build();
    }

    #[test]
    fn lowercases_input() {
        let lex = LexiconBuilder::new().synset(&["Car", "AUTO"]).build();
        assert!(lex.are_synonyms("car", "auto"));
    }

    #[test]
    fn self_edge_is_ignored() {
        let lex = LexiconBuilder::new()
            .synset(&["car"])
            .hypernym("car", "car")
            .build();
        assert!(!lex.is_hypernym_of("car", "car"));
    }
}
