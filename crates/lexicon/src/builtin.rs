//! The embedded lexicon covering the seven evaluation domains.
//!
//! This is the reproduction's stand-in for WordNet 2.x (see `DESIGN.md`
//! §3): a curated set of synsets, hypernym edges and irregular base forms
//! covering the label vocabulary of the Airline, Auto, Book, Job, Real
//! Estate, Car Rental and Hotels corpora. Every lexical fact the paper's
//! worked examples rely on is encoded here:
//!
//! * `area` ∼ `field`, `study` ∼ `work` — so `Area of Study` *synonym*
//!   `Field of Work` (§3.2, Definition 1);
//! * `location` ⊐ `area` — the LI3/LI4 combination example of §5.1;
//! * `children` → `child` and friends — irregular morphology;
//! * auto (`make` ∼ `brand`), travel (`stop` ∼ `connection`), lodging
//!   (`lodging` ⊐ `hotel`), person (`person` ⊐ `adult`/`child`/…) facts the
//!   corpus clusters and RAN hierarchies exercise.
//!
//! Some synsets are *domain-bound* rather than strict WordNet facts — e.g.
//! `{format, binding}` (Book) and `{bed, bedroom}` (Real Estate/Hotels) —
//! mirroring how the paper bounds general senses to domain meaning (LI6).

use crate::builder::LexiconBuilder;
use crate::Lexicon;

/// Synonym sets. One row per synset; a lemma may appear in several rows
/// (word senses), exactly like WordNet.
const SYNSETS: &[&[&str]] = &[
    // ---- people -------------------------------------------------------
    &["person", "individual"],
    &["adult", "grownup"],
    &["senior", "elder"],
    &["child", "kid", "minor"],
    &["infant", "baby"],
    &["passenger", "traveler", "flyer"],
    &["guest", "occupant", "visitor"],
    &["driver", "motorist"],
    &["man"],
    &["woman"],
    &["people"],
    // ---- travel / airline ---------------------------------------------
    &["depart", "leave"],
    &["departure"],
    &["arrive"],
    &["arrival"],
    &["return"],
    &["destination"],
    &["origin", "source"],
    &["trip", "journey", "travel"],
    &["go", "travel", "move"],
    &["flight"],
    &["fly"],
    &["airline", "carrier", "airways"],
    &["airport"],
    &["stop", "stopover", "connection", "layover"],
    &["nonstop", "direct"],
    &["ticket", "fare"],
    &["cabin"],
    &["seat"],
    &["class", "category"],
    &["type", "kind", "sort"],
    &["preference"],
    &["prefer"],
    &["option", "choice", "alternative"],
    &["select", "choose"],
    &["date"],
    &["day"],
    &["month"],
    &["year"],
    &["time"],
    &["adults"],
    // ---- auto ----------------------------------------------------------
    &["make", "brand", "manufacturer"],
    &["model"],
    &["car", "auto", "automobile"],
    &["vehicle"],
    &["truck"],
    // `fare` is both a ticket (document) and a price (charge) — two
    // senses, like WordNet.
    &["price", "cost", "rate", "fare"],
    &["mileage", "odometer"],
    &["mile"],
    &["condition"],
    &["new"],
    &["used", "preowned", "secondhand"],
    &["dealer", "seller", "vendor"],
    &["color", "colour"],
    &["engine", "motor"],
    &["transmission", "gearbox"],
    &["keyword"],
    &["search", "find", "locate", "look"],
    &["distance", "radius"],
    &["within"],
    // `zipcode` is deliberately NOT a lemma: the compound splitter
    // decomposes it into `zip` + `code`, making `Zipcode` ≍ `Zip Code`.
    &["zip", "postcode"],
    &["code"],
    // ---- location -------------------------------------------------------
    &["location"],
    &["place", "spot"],
    &["area", "field", "region"],
    &["city", "town"],
    &["state", "province"],
    &["county"],
    &["country", "nation"],
    &["address"],
    &["neighborhood", "district"],
    // ---- job -------------------------------------------------------------
    &["job", "employment", "position", "occupation", "work"],
    &["study", "work", "discipline"],
    &["career"],
    &["salary", "pay", "wage", "compensation", "income"],
    &["company", "employer", "firm", "organization"],
    &["agency", "bureau"],
    &["industry", "sector"],
    &["title"],
    &["name"],
    &["skill", "expertise"],
    &["experience"],
    &["education", "schooling"],
    &["degree"],
    &["resume"],
    &["level", "grade"],
    &["function", "role"],
    &["description"],
    // ---- book -------------------------------------------------------------
    &["book", "volume"],
    &["author", "writer"],
    &["publisher"],
    &["publication"],
    &["format", "binding"],
    &["subject", "topic", "theme"],
    &["genre"],
    &["isbn"],
    &["edition"],
    &["language"],
    &["age"],
    &["reader", "audience"],
    // ---- real estate --------------------------------------------------------
    &["property", "realty"],
    &["home", "house", "residence", "dwelling"],
    &["condo", "condominium"],
    &["apartment", "flat"],
    &["bedroom", "bed"],
    &["bathroom", "bath"],
    &["room"],
    &["garage"],
    &["acre", "acreage"],
    &["lot", "parcel"],
    &["size"],
    &["square"],
    &["foot"],
    &["rent", "lease"],
    &["sale", "sell"],
    &["buy", "purchase"],
    &["listing"],
    &["agent", "realtor", "broker"],
    &["feature", "characteristic", "amenity"],
    &["unit"],
    &["floor", "story"],
    &["school"],
    &["tax"],
    &["availability"],
    &["zone", "zoning"],
    // ---- car rental / hotels ------------------------------------------------
    &["rental", "hire"],
    &["pick"],
    &["drop"],
    &["license", "licence"],
    &["insurance", "coverage"],
    &["discount", "coupon", "promotion"],
    &["hotel", "motel", "inn", "lodge"],
    &["lodging", "accommodation"],
    &["night"],
    &["stay"],
    &["check"],
    &["reservation", "booking"],
    &["smoking"],
    &["star"],
    &["rating", "rank"],
    &["chain", "franchise"],
    // ---- quantities / ranges --------------------------------------------------
    &["number", "quantity", "count", "amount"],
    &["minimum", "min"],
    &["maximum", "max"],
    &["total"],
    &["budget"],
    &["range", "span"],
    &["maximal"],
    &["low"],
    &["high"],
    &["from"],
    &["to"],
    // ---- misc -------------------------------------------------------------------
    &["want", "wish", "desire"],
    &["need", "require"],
    &["information", "info", "detail"],
    &["service"],
    &["pet", "animal"],
    &["payment"],
    &["currency"],
];

/// Direct hypernym edges, `(general, specific)`. Resolved on representative
/// words: every synset containing `general` becomes a parent of every
/// synset containing `specific`.
const HYPERNYMS: &[(&str, &str)] = &[
    // person hierarchy — used by RAN hierarchies in passenger clusters
    ("person", "adult"),
    ("person", "senior"),
    ("person", "child"),
    ("person", "infant"),
    ("person", "passenger"),
    ("person", "guest"),
    ("person", "driver"),
    ("person", "man"),
    ("person", "woman"),
    ("adult", "senior"),
    // location hierarchy — LI3/LI4 combination example (§5.1)
    ("location", "area"),
    ("location", "address"),
    ("location", "place"),
    ("area", "city"),
    ("area", "state"),
    ("area", "county"),
    ("area", "country"),
    ("area", "neighborhood"),
    ("area", "zone"),
    // vehicles
    ("vehicle", "car"),
    ("vehicle", "truck"),
    // lodging
    ("lodging", "hotel"),
    ("lodging", "apartment"),
    ("property", "home"),
    ("property", "condo"),
    ("property", "lot"),
    ("home", "condo"),
    ("home", "apartment"),
    // rooms
    ("room", "bedroom"),
    ("room", "bathroom"),
    ("room", "cabin"),
    // classification — `class`/`category` are generic containers
    ("class", "genre"),
    ("category", "type"),
    // quantities
    ("number", "minimum"),
    ("number", "maximum"),
    ("number", "total"),
    // money
    ("payment", "salary"),
    ("price", "budget"),
    // documents / publications
    ("publication", "book"),
    // work hierarchy
    ("work", "career"),
    // time
    ("time", "date"),
    ("date", "day"),
    ("date", "month"),
    ("date", "year"),
    ("time", "night"),
];

/// Irregular base forms (the WordNet `exc` files, restricted to the corpus
/// vocabulary).
const EXCEPTIONS: &[(&str, &str)] = &[
    ("children", "child"),
    ("people", "person"),
    ("men", "man"),
    ("women", "woman"),
    ("feet", "foot"),
    ("mice", "mouse"),
    ("stories", "story"),
    ("went", "go"),
    ("left", "leave"),
    ("chose", "choose"),
    ("chosen", "choose"),
    ("sold", "sell"),
    ("bought", "buy"),
];

/// Build the embedded lexicon.
pub fn build() -> Lexicon {
    let mut b = LexiconBuilder::new();
    for members in SYNSETS {
        b = b.synset(members);
    }
    for (general, specific) in HYPERNYMS {
        b = b.hypernym(general, specific);
    }
    for (surface, base) in EXCEPTIONS {
        b = b.exception(surface, base);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_facts_are_encoded() {
        let lex = build();
        // §3.2 Definition 1 example: Area of Study synonym Field of Work.
        assert!(lex.are_synonyms("area", "field"));
        assert!(lex.are_synonyms("study", "work"));
        // §5.1 combination example: Location hypernym Area.
        assert!(lex.is_hypernym_of("location", "area"));
        // Morphology.
        assert_eq!(lex.base_form("children").as_deref(), Some("child"));
        assert_eq!(lex.base_form("people").as_deref(), Some("person"));
    }

    #[test]
    fn polysemy_does_not_leak() {
        let lex = build();
        // `work` bridges the job and study synsets without making
        // job ∼ study.
        assert!(lex.are_synonyms("job", "work"));
        assert!(lex.are_synonyms("study", "work"));
        assert!(!lex.are_synonyms("job", "study"));
    }

    #[test]
    fn person_hierarchy() {
        let lex = build();
        for specific in ["adult", "senior", "child", "infant", "passenger"] {
            assert!(
                lex.is_hypernym_of("person", specific),
                "person should cover {specific}"
            );
        }
        assert!(!lex.is_hypernym_of("adult", "person"));
        assert!(lex.is_hypernym_of("adult", "senior"));
    }

    #[test]
    fn location_hierarchy_is_transitive() {
        let lex = build();
        for specific in ["city", "state", "county", "country", "zone"] {
            assert!(
                lex.is_hypernym_of("location", specific),
                "location should cover {specific}"
            );
        }
        assert!(!lex.is_hypernym_of("city", "state"));
    }

    #[test]
    fn auto_vocabulary() {
        let lex = build();
        assert!(lex.are_synonyms("make", "brand"));
        assert!(lex.are_synonyms("car", "auto"));
        assert!(lex.is_hypernym_of("vehicle", "automobile"));
        assert!(!lex.are_synonyms("make", "model"));
    }

    #[test]
    fn travel_vocabulary() {
        let lex = build();
        assert!(lex.are_synonyms("stop", "connection"));
        assert!(lex.are_synonyms("depart", "leave"));
        assert!(lex.are_synonyms("airline", "carrier"));
        assert!(!lex.are_synonyms("cabin", "class"));
    }

    #[test]
    fn quantity_vocabulary() {
        let lex = build();
        assert!(lex.are_synonyms("min", "minimum"));
        assert!(lex.are_synonyms("max", "maximum"));
        assert!(lex.is_hypernym_of("number", "minimum"));
    }

    #[test]
    fn no_empty_synsets_and_reasonable_size() {
        let lex = build();
        assert!(lex.synset_count() > 100, "synsets: {}", lex.synset_count());
        assert!(lex.lemma_count() > 250, "lemmas: {}", lex.lemma_count());
    }

    #[test]
    fn morphology_resolves_plurals_into_synsets() {
        let lex = build();
        assert!(lex.are_synonyms("stops", "connections"));
        assert!(lex.is_hypernym_of("person", "seniors"));
        assert!(lex.are_synonyms("preferences", "preference"));
    }
}
