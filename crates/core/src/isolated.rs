//! Labeling isolated clusters (§4.4).
//!
//! An isolated cluster (`C_int`) is the only field under its internal
//! node, so its label needs no correlation with siblings. The paper adapts
//! WISE-Integrator's representative-attribute-name (RAN) algorithm \[12\]:
//! build hypernymy hierarchies over the cluster's member labels, take the
//! hierarchy roots (the most general labels), and elect a winner — by the
//! *most descriptive* rule here, rather than \[12\]'s majority rule.
//!
//! Instance rules refine the election: LI7 discards labels that are really
//! values of sibling fields (§6.1.2); LI6 lets a descriptive hyponym
//! replace a generic root whose observed domain it contains (§6.1.1 —
//! `Flight Class` over `Class`).

use crate::ctx::NamingCtx;
use crate::instances::{instances_subset, label_is_instance_of};
use crate::policy::{LabelSelection, NamingPolicy};
use crate::report::{InferenceRule, LiUsage};

/// One label observed on the cluster's member fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelOccurrence {
    /// The raw label.
    pub label: String,
    /// Number of interfaces supplying this label for the cluster.
    pub frequency: usize,
    /// Union of the instance domains of the fields carrying this label.
    pub domain: Vec<String>,
}

/// Elect a label for an isolated cluster. Returns `None` when no member
/// field is labeled.
pub fn label_isolated_cluster(
    occurrences: &[LabelOccurrence],
    ctx: &NamingCtx<'_>,
    policy: &NamingPolicy,
    usage: &mut LiUsage,
) -> Option<String> {
    let mut candidates: Vec<&LabelOccurrence> = occurrences
        .iter()
        .filter(|o| !ctx.text(&o.label).is_empty())
        .collect();
    if candidates.is_empty() {
        return None;
    }
    // LI7: discard labels that occur among the instances of another
    // member field of the cluster.
    if policy.use_instances && candidates.len() > 1 {
        let all: Vec<&LabelOccurrence> = candidates.clone();
        let before = candidates.len();
        candidates.retain(|cand| {
            !all.iter().any(|other| {
                other.label != cand.label && label_is_instance_of(&cand.label, &other.domain)
            })
        });
        if candidates.len() < before {
            usage.record(InferenceRule::Li7);
        }
        if candidates.is_empty() {
            candidates = all; // never discard everything
        }
    }
    // Roots of the hypernymy hierarchy: labels that are not a (strict)
    // hyponym of any other candidate.
    let roots: Vec<&LabelOccurrence> = candidates
        .iter()
        .copied()
        .filter(|cand| {
            !candidates
                .iter()
                .any(|other| other.label != cand.label && ctx.hypernym(&other.label, &cand.label))
        })
        .collect();
    let roots = if roots.is_empty() {
        candidates.clone()
    } else {
        roots
    };
    // LI6: a root whose observed domain is contained in a descendant's
    // domain is semantically bounded to that descendant — substitute the
    // most descriptive such hyponym.
    let mut finalists: Vec<&LabelOccurrence> = Vec::new();
    for root in &roots {
        let mut chosen: &LabelOccurrence = root;
        if policy.use_instances && !root.domain.is_empty() {
            let mut bounded: Vec<&LabelOccurrence> = candidates
                .iter()
                .copied()
                .filter(|h| {
                    h.label != root.label
                        && ctx.hypernym(&root.label, &h.label)
                        && instances_subset(&root.domain, &h.domain)
                })
                .collect();
            if !bounded.is_empty() {
                order(&mut bounded, ctx, policy.selection);
                chosen = bounded[0];
                usage.record(InferenceRule::Li6);
            }
        }
        if !finalists.iter().any(|f| f.label == chosen.label) {
            finalists.push(chosen);
        }
    }
    order(&mut finalists, ctx, policy.selection);
    Some(finalists[0].label.clone())
}

/// Order candidates per the selection policy: most-descriptive =
/// (expressiveness desc, frequency desc); most-general = (frequency desc,
/// expressiveness asc) — \[12\]'s majority rule.
fn order(candidates: &mut [&LabelOccurrence], ctx: &NamingCtx<'_>, selection: LabelSelection) {
    match selection {
        LabelSelection::MostDescriptive => candidates.sort_by(|a, b| {
            ctx.expressiveness(&b.label)
                .cmp(&ctx.expressiveness(&a.label))
                .then(b.frequency.cmp(&a.frequency))
                .then(a.label.cmp(&b.label))
        }),
        LabelSelection::MostGeneral => candidates.sort_by(|a, b| {
            b.frequency
                .cmp(&a.frequency)
                .then(
                    ctx.expressiveness(&a.label)
                        .cmp(&ctx.expressiveness(&b.label)),
                )
                .then(a.label.cmp(&b.label))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lexicon::Lexicon;

    fn occ(label: &str, frequency: usize) -> LabelOccurrence {
        LabelOccurrence {
            label: label.to_string(),
            frequency,
            domain: Vec::new(),
        }
    }

    fn occ_dom(label: &str, frequency: usize, domain: &[&str]) -> LabelOccurrence {
        LabelOccurrence {
            label: label.to_string(),
            frequency,
            domain: domain.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn run(occurrences: &[LabelOccurrence], policy: &NamingPolicy) -> Option<String> {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let mut usage = LiUsage::default();
        label_isolated_cluster(occurrences, &ctx, policy, &mut usage)
    }

    /// §4.4's example: labels {Class, Class of Ticket, Preferred Cabin,
    /// Flight Class} → hierarchies rooted at Class and Preferred Cabin;
    /// Preferred Cabin wins as the more descriptive root.
    #[test]
    fn paper_example_preferred_cabin() {
        let occurrences = vec![
            occ("Class", 3),
            occ("Class of Ticket", 2),
            occ("Preferred Cabin", 1),
            occ("Flight Class", 1),
        ];
        assert_eq!(
            run(&occurrences, &NamingPolicy::default()).as_deref(),
            Some("Preferred Cabin")
        );
    }

    /// The \[12\] baseline elects the majority root instead.
    #[test]
    fn most_general_baseline_prefers_majority_root() {
        let occurrences = vec![
            occ("Class", 3),
            occ("Class of Ticket", 2),
            occ("Preferred Cabin", 1),
            occ("Flight Class", 1),
        ];
        assert_eq!(
            run(&occurrences, &NamingPolicy::most_general_baseline()).as_deref(),
            Some("Class")
        );
    }

    /// §6.1.1 / LI6: Class's domain equals Flight Class's domain, so
    /// Class is bounded to the descriptive hyponym.
    #[test]
    fn li6_bounds_generic_root_to_descriptive_hyponym() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let mut usage = LiUsage::default();
        let occurrences = vec![
            occ_dom("Class", 3, &["Economy", "Business", "First"]),
            occ_dom("Class of Tickets", 1, &["Economy", "Business"]),
            occ_dom("Flight Class", 2, &["Economy", "Business", "First"]),
        ];
        let chosen =
            label_isolated_cluster(&occurrences, &ctx, &NamingPolicy::default(), &mut usage);
        assert_eq!(chosen.as_deref(), Some("Flight Class"));
        assert_eq!(usage.count(InferenceRule::Li6), 1);
    }

    /// §6.1.2 / LI7: a label that is a value of a sibling field is
    /// discarded.
    #[test]
    fn li7_discards_value_labels() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let mut usage = LiUsage::default();
        let occurrences = vec![
            occ_dom("Format", 2, &["Hardcover", "Paperback"]),
            occ("Hardcover", 1),
        ];
        let chosen =
            label_isolated_cluster(&occurrences, &ctx, &NamingPolicy::default(), &mut usage);
        assert_eq!(chosen.as_deref(), Some("Format"));
        assert_eq!(usage.count(InferenceRule::Li7), 1);
    }

    #[test]
    fn li7_respects_policy_switch() {
        let policy = NamingPolicy {
            use_instances: false,
            ..NamingPolicy::default()
        };
        let occurrences = vec![
            occ_dom("Format", 1, &["Hardcover", "Paperback"]),
            occ("Hardcover", 3),
        ];
        // Without LI7, Hardcover is a root (unrelated to Format) and, at
        // equal expressiveness, its higher frequency wins.
        assert_eq!(run(&occurrences, &policy).as_deref(), Some("Hardcover"));
    }

    #[test]
    fn empty_and_blank_labels() {
        assert_eq!(run(&[], &NamingPolicy::default()), None);
        let occurrences = vec![occ("$$", 1)];
        assert_eq!(run(&occurrences, &NamingPolicy::default()), None);
    }

    #[test]
    fn single_label_is_elected() {
        let occurrences = vec![occ("Garage", 4)];
        assert_eq!(
            run(&occurrences, &NamingPolicy::default()).as_deref(),
            Some("Garage")
        );
    }

    #[test]
    fn ties_break_deterministically() {
        let occurrences = vec![occ("Beta", 1), occ("Alpha", 1)];
        assert_eq!(
            run(&occurrences, &NamingPolicy::default()).as_deref(),
            Some("Alpha")
        );
    }
}
