//! Naming outcomes: consistency classes, per-group reports and the
//! inference-rule usage counters behind Figure 10.

use crate::consistency::ConsistencyLevel;

/// The logical inference rules of the paper (LI1–LI7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InferenceRule {
    /// LI1 — semantic equivalence of internal-node labels (Definition 5).
    Li1,
    /// LI2 — overlapping descendant-leaf coverage (§5.1.1).
    Li2,
    /// LI3 — hypernymy between internal-node labels (§5.1.2).
    Li3,
    /// LI4 — hypernymy-hierarchy coverage propagation (§5.1.2).
    Li4,
    /// LI5 — extend-label-meaning over dependent concepts (§5.1.3).
    Li5,
    /// LI6 — reconcile most-general/most-descriptive via instance domains
    /// (§6.1.1).
    Li6,
    /// LI7 — discard labels that are instances of sibling fields (§6.1.2).
    Li7,
}

impl InferenceRule {
    /// All rules, in order.
    pub const ALL: [InferenceRule; 7] = [
        InferenceRule::Li1,
        InferenceRule::Li2,
        InferenceRule::Li3,
        InferenceRule::Li4,
        InferenceRule::Li5,
        InferenceRule::Li6,
        InferenceRule::Li7,
    ];

    fn index(self) -> usize {
        match self {
            InferenceRule::Li1 => 0,
            InferenceRule::Li2 => 1,
            InferenceRule::Li3 => 2,
            InferenceRule::Li4 => 3,
            InferenceRule::Li5 => 4,
            InferenceRule::Li6 => 5,
            InferenceRule::Li7 => 6,
        }
    }
}

impl std::fmt::Display for InferenceRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LI{}", self.index() + 1)
    }
}

/// Counters of inference-rule involvement — the data behind the pie chart
/// of Figure 10.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiUsage {
    counts: [usize; 7],
}

impl LiUsage {
    /// Record one use of a rule.
    pub fn record(&mut self, rule: InferenceRule) {
        self.counts[rule.index()] += 1;
    }

    /// Uses of one rule.
    pub fn count(&self, rule: InferenceRule) -> usize {
        self.counts[rule.index()]
    }

    /// Total uses across all rules.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction of all uses attributable to `rule` (Figure 10's slices).
    pub fn ratio(&self, rule: InferenceRule) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(rule) as f64 / total as f64
        }
    }

    /// Merge another usage record into this one.
    pub fn merge(&mut self, other: &LiUsage) {
        for i in 0..7 {
            self.counts[i] += other.counts[i];
        }
    }
}

/// Definition 8: the consistency classification of a labeled integrated
/// schema tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyClass {
    /// Consistent solutions for all groups, every internal node labeled
    /// consistently with them, internal-node labels pairwise consistent
    /// (Definition 7 in full).
    Consistent,
    /// Some internal node satisfies only Definition 7's generality
    /// condition (Proposition 2).
    WeaklyConsistent,
    /// A group lacks a consistent solution, or an internal node with a
    /// nonempty candidate set could not be labeled.
    Inconsistent,
}

impl std::fmt::Display for ConsistencyClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyClass::Consistent => write!(f, "consistent"),
            ConsistencyClass::WeaklyConsistent => write!(f, "weakly consistent"),
            ConsistencyClass::Inconsistent => write!(f, "inconsistent"),
        }
    }
}

/// Outcome of naming one group of the integrated interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupOutcome {
    /// Human-readable description (cluster concepts).
    pub description: String,
    /// Level at which a consistent solution was found, if any.
    pub level: Option<ConsistencyLevel>,
    /// True if the labels form a consistent (not merely partially
    /// consistent) solution.
    pub consistent: bool,
    /// The labels assigned, in cluster-column order (`None` = the field
    /// stays unlabeled: no source labels it).
    pub labels: Vec<Option<String>>,
    /// Whether a homonym conflict was detected, and whether repair
    /// succeeded.
    pub conflict_repaired: Option<bool>,
    /// The integrated-tree leaves the labels were assigned to, parallel
    /// to `labels` (provenance anchoring).
    pub leaves: Vec<qi_schema::NodeId>,
    /// Per column: every distinct source label considered for that
    /// field, with its occurrence count in the group relation.
    pub column_options: Vec<Vec<(String, usize)>>,
}

/// Outcome of electing a label for one isolated cluster (§4.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolatedOutcome {
    /// The integrated-tree leaf of the isolated cluster.
    pub leaf: qi_schema::NodeId,
    /// The elected label, if any source labels the field.
    pub chosen: Option<String>,
    /// Every distinct source label with its occurrence frequency — the
    /// candidates the election considered.
    pub occurrences: Vec<(String, usize)>,
}

/// Full report of one naming run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NamingReport {
    /// Definition 8 classification.
    pub class: Option<ConsistencyClass>,
    /// Per-group outcomes (regular groups, then the root group).
    pub groups: Vec<GroupOutcome>,
    /// Per-isolated-cluster election outcomes (provenance).
    pub isolated: Vec<IsolatedOutcome>,
    /// Inference-rule usage (Figure 10).
    pub li_usage: LiUsage,
    /// Fields left unlabeled (no source label anywhere).
    pub unlabeled_fields: usize,
    /// Unlabeled fields that at least carry instances.
    pub unlabeled_fields_with_instances: usize,
    /// Internal nodes that received a label.
    pub labeled_internal: usize,
    /// Internal nodes with a nonempty candidate set that could not be
    /// labeled consistently (these make the tree inconsistent).
    pub unlabeled_internal_with_candidates: usize,
    /// Internal nodes with no potential label at all.
    pub internal_without_candidates: usize,
    /// Hit/miss counters of the naming context's memo-caches for this
    /// run (normalized texts + pairwise relations).
    pub naming_cache: qi_runtime::CacheStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_counters() {
        let mut u = LiUsage::default();
        u.record(InferenceRule::Li2);
        u.record(InferenceRule::Li2);
        u.record(InferenceRule::Li3);
        assert_eq!(u.count(InferenceRule::Li2), 2);
        assert_eq!(u.total(), 3);
        assert!((u.ratio(InferenceRule::Li2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(u.ratio(InferenceRule::Li7), 0.0);
    }

    #[test]
    fn empty_usage_ratio_is_zero() {
        let u = LiUsage::default();
        assert_eq!(u.ratio(InferenceRule::Li1), 0.0);
        assert_eq!(u.total(), 0);
    }

    #[test]
    fn merge_adds() {
        let mut a = LiUsage::default();
        a.record(InferenceRule::Li1);
        let mut b = LiUsage::default();
        b.record(InferenceRule::Li1);
        b.record(InferenceRule::Li5);
        a.merge(&b);
        assert_eq!(a.count(InferenceRule::Li1), 2);
        assert_eq!(a.count(InferenceRule::Li5), 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(InferenceRule::Li4.to_string(), "LI4");
        assert_eq!(
            ConsistencyClass::WeaklyConsistent.to_string(),
            "weakly consistent"
        );
    }
}
