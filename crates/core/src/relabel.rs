//! Carryable phase-1 labeling state: what [`crate::Labeler::label_with`]
//! caches between runs so an incremental ingest relabels only the parts
//! of the integrated interface whose inputs actually changed.
//!
//! Phase 1 of the naming algorithm is the expensive part — group-relation
//! construction and naming, isolated-cluster election, and the LI1–LI5
//! candidate search per internal node. Each of those computations reads a
//! bounded slice of the domain:
//!
//! * a **group**'s relation and naming depend only on the member fields
//!   of its clusters (a schema contributing no labeled field to the group
//!   produces an all-null tuple, which `GroupRelation::build` omits);
//! * an **isolated** cluster's occurrence list depends only on its own
//!   members;
//! * an **internal node**'s candidate set over coverage `x` depends only
//!   on potential labels with `bag ⊆ x` and on the [`ClusterInfo`] of
//!   clusters in `x` (both the candidate-class construction and the LI5
//!   extension filter on containment).
//!
//! So after an append-one-interface ingest, a cached entry is valid
//! exactly when its key clusters are disjoint from the *dirty* set (old
//! clusters that gained a member) and — for internal nodes — no potential
//! label of the appended schema has its bag inside `x`. Keys mentioning a
//! newly created cluster miss naturally: new cluster ids did not exist in
//! the previous run. Phases 2 and 3 re-run in full; they are cheap tree
//! walks over phase-1 output.
//!
//! Labels are cached as plain `String`s, not interned symbols: the naming
//! context (and its symbol table) lives only for one run, so reused
//! candidates are re-interned on the way back in.

use crate::ctx::NamingMemo;
use crate::internal::CandidateLabel;
use crate::report::{InferenceRule, LiUsage};
use crate::solution::{GroupNaming, GroupNamingState};
use qi_mapping::{ClusterId, GroupRelation};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// What changed between the cached run and the current one: the
/// append-one-interface delta computed by the incremental matcher.
#[derive(Debug, Clone, Default)]
pub struct RelabelDelta {
    /// Old clusters that gained a member from the appended interface.
    pub dirty: BTreeSet<ClusterId>,
    /// Clusters created by the appended interface (every member is a
    /// field of the new schema).
    pub new_clusters: BTreeSet<ClusterId>,
    /// Index of the appended schema.
    pub new_schema: usize,
}

impl RelabelDelta {
    /// True when none of `clusters` was touched by the append.
    pub(crate) fn clean(&self, clusters: &[ClusterId]) -> bool {
        clusters.iter().all(|c| !self.dirty.contains(c))
    }
}

/// Cached phase-1 state of one labeling run, reusable by the next run
/// via [`crate::Labeler::label_with`].
#[derive(Debug, Clone, Default)]
pub struct RelabelCache {
    /// Group key (clusters in column order) → relation + naming.
    pub(crate) groups: HashMap<Vec<ClusterId>, CachedGroup>,
    /// Internal-node coverage (sorted) → candidate set + LI usage.
    pub(crate) internal: HashMap<Vec<ClusterId>, CachedInternal>,
    /// Isolated cluster → elected label + occurrence list + LI usage.
    pub(crate) isolated: HashMap<ClusterId, CachedIsolated>,
    /// The naming memo (interner + normalized-text + relation caches)
    /// warmed by the run that produced this cache. Carried into the next
    /// run so an incremental relabel does not re-stem and re-relate the
    /// whole domain's labels from scratch. Output-neutral: see
    /// [`NamingMemo`].
    pub(crate) memo: Arc<NamingMemo>,
}

impl RelabelCache {
    /// Number of cached entries, by section — (groups, internal,
    /// isolated). Diagnostic only.
    pub fn sizes(&self) -> (usize, usize, usize) {
        (self.groups.len(), self.internal.len(), self.isolated.len())
    }

    /// The naming memo warmed by the producing run.
    pub(crate) fn memo(&self) -> Arc<NamingMemo> {
        Arc::clone(&self.memo)
    }
}

#[derive(Debug, Clone)]
pub(crate) struct CachedGroup {
    pub relation: GroupRelation,
    pub naming: GroupNaming,
    /// The run's partitioning + per-partition solutions, so a later
    /// append can extend the naming instead of recomputing it
    /// ([`crate::solution::extend_group_naming`]).
    pub state: GroupNamingState,
}

#[derive(Debug, Clone)]
pub(crate) struct CachedIsolated {
    pub chosen: Option<String>,
    pub occurrences: Vec<(String, usize)>,
    pub usage: LiUsage,
}

#[derive(Debug, Clone)]
pub(crate) struct CachedInternal {
    pub candidates: Vec<StoredCandidate>,
    pub usage: LiUsage,
}

/// A [`CandidateLabel`] with its context-relative pieces flattened out,
/// so it can outlive the naming context that produced it.
#[derive(Debug, Clone)]
pub(crate) struct StoredCandidate {
    pub label: String,
    pub schemas: BTreeSet<usize>,
    pub rule: InferenceRule,
    pub expressiveness: usize,
    pub frequency: usize,
    pub coverage: BTreeSet<ClusterId>,
}

impl StoredCandidate {
    pub(crate) fn from_candidate(candidate: &CandidateLabel) -> Self {
        StoredCandidate {
            label: candidate.label.to_string(),
            schemas: candidate.schemas.clone(),
            rule: candidate.rule,
            expressiveness: candidate.expressiveness,
            frequency: candidate.frequency,
            coverage: candidate.coverage.clone(),
        }
    }

    /// Re-intern into the current run's naming context.
    pub(crate) fn to_candidate(&self, ctx: &crate::ctx::NamingCtx) -> CandidateLabel {
        let sym = ctx.sym(&self.label);
        CandidateLabel {
            label: ctx.spelling(sym),
            sym,
            schemas: self.schemas.clone(),
            rule: self.rule,
            expressiveness: self.expressiveness,
            frequency: self.frequency,
            coverage: self.coverage.clone(),
        }
    }
}
