//! Instance-based reasoning (§6.1): the helpers behind LI5 (condition 1),
//! LI6 and LI7.
//!
//! Query-interface fields often carry predefined domains (selection-list
//! options). The paper uses them in three places:
//!
//! * **LI5 (1)** — a field set `Z` is *characterized by* `W` when `Z`'s
//!   instances are a subset of `W`'s ([`instances_subset`]);
//! * **LI6** — a general label whose domain is contained in a more
//!   descriptive hyponym's domain is *bounded* to that hyponym's meaning
//!   ([`instances_subset`] again, on label domains);
//! * **LI7** — a label that occurs among the instances of a sibling field
//!   is really a *value*, hence too specific ([`label_is_instance_of`]).

use qi_text::display_normalize;

/// Case- and punctuation-insensitive instance comparison key.
fn instance_key(value: &str) -> String {
    display_normalize(value).to_ascii_lowercase()
}

/// True if every instance of `a` occurs among the instances of `b`
/// (case/punctuation-insensitive). Empty `a` is *not* considered a subset
/// — the paper's rules compare observed domains, and an empty domain
/// carries no evidence.
pub fn instances_subset(a: &[String], b: &[String]) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    let b_keys: Vec<String> = b.iter().map(|v| instance_key(v)).collect();
    a.iter().all(|v| b_keys.contains(&instance_key(v)))
}

/// True if `label` occurs among `instances` (LI7's trigger: the label is
/// really a data value of another field).
pub fn label_is_instance_of(label: &str, instances: &[String]) -> bool {
    if instances.is_empty() {
        return false;
    }
    let key = instance_key(label);
    if key.is_empty() {
        return false;
    }
    instances.iter().any(|v| instance_key(v) == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owned(values: &[&str]) -> Vec<String> {
        values.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn subset_is_case_insensitive() {
        let a = owned(&["Economy", "BUSINESS"]);
        let b = owned(&["economy", "business", "first"]);
        assert!(instances_subset(&a, &b));
        assert!(!instances_subset(&b, &a));
    }

    #[test]
    fn equal_domains_are_mutual_subsets() {
        // LI6's example: Flight Class and Class have the same domain.
        let class = owned(&["Economy", "Business", "First"]);
        let flight_class = owned(&["economy", "business", "first"]);
        assert!(instances_subset(&class, &flight_class));
        assert!(instances_subset(&flight_class, &class));
    }

    #[test]
    fn empty_domains_carry_no_evidence() {
        let some = owned(&["a"]);
        assert!(!instances_subset(&[], &some));
        assert!(!instances_subset(&some, &[]));
        assert!(!instances_subset(&[], &[]));
    }

    #[test]
    fn label_as_value_detection() {
        // §6.1.2: hardcover/paperback are instances of Format.
        let format_domain = owned(&["Hardcover", "Paperback", "Audio"]);
        assert!(label_is_instance_of("hardcover", &format_domain));
        assert!(label_is_instance_of("Paperback", &format_domain));
        assert!(!label_is_instance_of("Format", &format_domain));
        assert!(!label_is_instance_of("", &format_domain));
        assert!(!label_is_instance_of("hardcover", &[]));
    }

    #[test]
    fn punctuation_is_normalized() {
        let domain = owned(&["Hard-cover"]);
        assert!(label_is_instance_of("hard cover", &domain));
    }
}
