//! Meaningful labeling of integrated query interfaces.
//!
//! This crate is the paper's primary contribution (Dragut, Yu, Meng —
//! VLDB 2006): given the source query interfaces of a domain, the cluster
//! mapping between their fields, and the integrated schema tree produced
//! by the structural merge, assign a label to every node of the integrated
//! interface such that
//!
//! * fields within a group carry mutually consistent labels (*horizontal
//!   consistency*, §4), and
//! * internal-node labels are consistent with each other and with their
//!   descendant groups (*vertical consistency*, §5).
//!
//! The crate is organized module-per-concept:
//!
//! | module | paper |
//! |---|---|
//! | [`relations`] | Definition 1 — `string_equal`/`equal`/`synonym`/`hypernym` |
//! | [`ctx`] | normalization + relation memoization |
//! | [`consistency`] | Definition 2 — the three consistency levels |
//! | [`combine`] | Definitions 3–4 — `Combine`, `Combine*`, tuple-solutions |
//! | [`partition`] | §4.1.1 — graph closure into maximal partitions |
//! | [`solution`] | §4.2 — consistent & partially consistent naming |
//! | [`conflicts`] | §4.2.3 — homonym detection and repair |
//! | [`isolated`] | §4.4 — RAN-style labeling of isolated clusters |
//! | [`internal`] | §5 — candidate labels for internal nodes, LI1–LI5 |
//! | [`instances`] | §6.1 — LI6/LI7 instance-based refinements |
//! | [`labeler`] | §6 — the three-phase naming algorithm, Definition 8 |
//! | [`policy`] | configuration & ablation axes |
//! | [`report`] | naming outcome, consistency class, LI usage (Fig. 10) |
//!
//! # Quick start
//!
//! ```
//! use qi_core::{Labeler, NamingPolicy};
//! use qi_lexicon::Lexicon;
//! use qi_mapping::{expand_one_to_many, Mapping, FieldRef};
//! use qi_schema::{SchemaTree, spec::{leaf, node}};
//!
//! // Two tiny airline interfaces.
//! let a = SchemaTree::build("british", vec![node(
//!     "Passengers", vec![leaf("Seniors"), leaf("Adults"), leaf("Children")],
//! )]).unwrap();
//! let b = SchemaTree::build("economytravel", vec![node(
//!     "Travelers", vec![leaf("Adults"), leaf("Children"), leaf("Infants")],
//! )]).unwrap();
//! let (al, bl) = (a.descendant_leaves(qi_schema::NodeId::ROOT),
//!                 b.descendant_leaves(qi_schema::NodeId::ROOT));
//! let mut mapping = Mapping::from_clusters(vec![
//!     ("c_Senior".into(), vec![FieldRef::new(0, al[0])]),
//!     ("c_Adult".into(),  vec![FieldRef::new(0, al[1]), FieldRef::new(1, bl[0])]),
//!     ("c_Child".into(),  vec![FieldRef::new(0, al[2]), FieldRef::new(1, bl[1])]),
//!     ("c_Infant".into(), vec![FieldRef::new(1, bl[2])]),
//! ]);
//! let mut schemas = vec![a, b];
//! expand_one_to_many(&mut schemas, &mut mapping);
//! let integrated = qi_merge::merge(&schemas, &mapping);
//!
//! let lexicon = Lexicon::builtin();
//! let labeler = Labeler::new(&lexicon, NamingPolicy::default());
//! let labeled = labeler.label(&schemas, &mapping, &integrated);
//!
//! // The intersect-and-union strategy of §4.1 finds the consistent
//! // solution (Seniors, Adults, Children, Infants).
//! let labels: Vec<String> = labeled.tree.leaves()
//!     .map(|l| l.label_str().to_string()).collect();
//! assert_eq!(labels, vec!["Seniors", "Adults", "Children", "Infants"]);
//! ```

pub mod combine;
pub mod conflicts;
pub mod consistency;
pub mod ctx;
pub mod explain;
pub mod instances;
pub mod internal;
pub mod isolated;
pub mod labeler;
pub mod partition;
pub mod policy;
pub mod provenance;
pub mod relabel;
pub mod relations;
pub mod report;
pub mod solution;

pub use consistency::ConsistencyLevel;
pub use ctx::NamingCtx;
pub use labeler::{InternalDecision, LabeledInterface, Labeler};
pub use policy::{LabelSelection, NamingPolicy};
pub use provenance::{DecisionCandidate, LabelDecision};
pub use relabel::{RelabelCache, RelabelDelta};
pub use relations::LabelRelation;
pub use report::{ConsistencyClass, InferenceRule, LiUsage, NamingReport};
