//! `Combine`, `Combine*` and tuple-solutions (Definitions 3–4).
//!
//! `Combine(r, s)` overlays two consistent tuples, keeping `r`'s non-null
//! components and filling `r`'s nulls from `s`. `Combine*` iterates the
//! operator over a partition until every derivable tuple is produced; the
//! tuples without null components (on the columns the partition covers)
//! are the *tuple-solutions*, and those that already existed verbatim in
//! the group relation are *candidate solutions*.

use crate::consistency::{rows_consistent, ConsistencyLevel};
use crate::ctx::NamingCtx;
use crate::partition::TuplePartition;
use qi_mapping::GroupRelation;
use std::collections::BTreeSet;

/// A consistent naming solution for a set of cluster columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleSolution {
    /// Labels per column; non-null on every covered column.
    pub labels: Vec<Option<String>>,
    /// Indices of the relation tuples that contributed components.
    pub used_tuples: BTreeSet<usize>,
    /// True if the solution is a single source tuple (Definition 4's
    /// *candidate solution*).
    pub is_candidate: bool,
    /// Number of distinct content words across all labels (§4.2.1:
    /// *expressiveness*; more ⇒ more descriptive).
    pub expressiveness: usize,
    /// How many relation tuples equal this solution verbatim (§4.2.1:
    /// *frequency of occurrence*, meaningful for candidates).
    pub frequency: usize,
}

/// `Combine(r, s)`: non-null components of `r`, plus `s`'s where `r` is
/// null (Definition 3).
pub fn combine(r: &[Option<String>], s: &[Option<String>]) -> Vec<Option<String>> {
    r.iter()
        .zip(s)
        .map(|(a, b)| a.clone().or_else(|| b.clone()))
        .collect()
}

/// Safety valve for `Combine*`: the paper's operator is exponential in
/// pathological relations; real group relations are tiny, but the
/// enumeration is capped to keep worst-case inputs bounded.
pub const MAX_STATES: usize = 4096;

/// Enumerate the tuple-solutions derivable from a partition with
/// `Combine*` (Definition 4), complete on the partition's covered columns.
///
/// Solutions are deduplicated by label vector. The search explores
/// combinations breadth-first from every member tuple, only combining
/// pairs that are consistent at `level` (Definition 3 requires the
/// operands to be consistent).
pub fn enumerate_solutions(
    relation: &GroupRelation,
    partition: &TuplePartition,
    level: ConsistencyLevel,
    ctx: &NamingCtx<'_>,
) -> Vec<TupleSolution> {
    #[derive(Clone)]
    struct State {
        labels: Vec<Option<String>>,
        used: BTreeSet<usize>,
    }
    let member_tuples: Vec<usize> = partition.tuples.clone();
    let mut states: Vec<State> = Vec::new();
    let mut seen: BTreeSet<Vec<Option<String>>> = BTreeSet::new();
    for &t in &member_tuples {
        let labels = relation.tuples[t].labels.clone();
        if seen.insert(labels.clone()) {
            states.push(State {
                labels,
                used: BTreeSet::from([t]),
            });
        }
    }
    let mut frontier: Vec<usize> = (0..states.len()).collect();
    while !frontier.is_empty() && states.len() < MAX_STATES {
        let mut next = Vec::new();
        for &si in &frontier {
            for &t in &member_tuples {
                let state = &states[si];
                let other = &relation.tuples[t].labels;
                // Must add information and be consistent with the state.
                let adds = state
                    .labels
                    .iter()
                    .zip(other)
                    .any(|(a, b)| a.is_none() && b.is_some());
                if !adds || !rows_consistent(&state.labels, other, level, ctx) {
                    continue;
                }
                let combined = combine(&state.labels, other);
                if seen.insert(combined.clone()) {
                    let mut used = state.used.clone();
                    used.insert(t);
                    states.push(State {
                        labels: combined,
                        used,
                    });
                    next.push(states.len() - 1);
                    if states.len() >= MAX_STATES {
                        break;
                    }
                }
            }
            if states.len() >= MAX_STATES {
                break;
            }
        }
        frontier = next;
    }
    // Keep the states complete on the covered columns.
    let mut solutions: Vec<TupleSolution> = Vec::new();
    for state in states {
        let complete = partition
            .covered
            .iter()
            .all(|&col| state.labels[col].is_some());
        if !complete {
            continue;
        }
        let is_candidate = member_tuples
            .iter()
            .any(|&t| relation.tuples[t].labels == state.labels);
        let frequency = relation
            .tuples
            .iter()
            .filter(|t| t.labels == state.labels)
            .count();
        let expressiveness = tuple_expressiveness(&state.labels, ctx);
        solutions.push(TupleSolution {
            labels: state.labels,
            used_tuples: state.used,
            is_candidate,
            expressiveness,
            frequency,
        });
    }
    solutions
}

/// Several greedy solutions, seeded from each of the widest member tuples
/// (deduplicated by label vector). Gives the ranking stage alternatives
/// to choose from even when exhaustive enumeration is off the table.
pub fn greedy_solutions(
    relation: &GroupRelation,
    partition: &TuplePartition,
    level: ConsistencyLevel,
    ctx: &NamingCtx<'_>,
) -> Vec<TupleSolution> {
    const MAX_SEEDS: usize = 8;
    let mut seeds: Vec<usize> = partition.tuples.clone();
    seeds.sort_by_key(|&t| (usize::MAX - relation.tuples[t].non_null_count(), t));
    seeds.truncate(MAX_SEEDS);
    let mut out: Vec<TupleSolution> = Vec::new();
    let mut seen: BTreeSet<Vec<Option<String>>> = BTreeSet::new();
    for seed in seeds {
        if let Some(solution) = greedy_from(relation, partition, level, ctx, seed) {
            if seen.insert(solution.labels.clone()) {
                out.push(solution);
            }
        }
    }
    out
}

/// Greedy linear-time solution for a partition (§4.2.1: "if the time to
/// retrieve a consistent solution is an issue then one can always be
/// found in linear time by applying the Combine operator along a spanning
/// tree of the connected component"). Starts from the widest tuple and
/// repeatedly combines in the consistent tuple that fills the most nulls.
/// Used when the exhaustive `Combine*` enumeration exceeds its state cap
/// without producing a complete tuple (wide root groups).
pub fn greedy_solution(
    relation: &GroupRelation,
    partition: &TuplePartition,
    level: ConsistencyLevel,
    ctx: &NamingCtx<'_>,
) -> Option<TupleSolution> {
    // Seed: the member tuple with the most non-null components
    // (ties: lowest index, i.e. source order).
    let seed = partition
        .tuples
        .iter()
        .copied()
        .max_by_key(|&t| (relation.tuples[t].non_null_count(), usize::MAX - t))?;
    greedy_from(relation, partition, level, ctx, seed)
}

/// Greedy construction starting from a specific seed tuple.
fn greedy_from(
    relation: &GroupRelation,
    partition: &TuplePartition,
    level: ConsistencyLevel,
    ctx: &NamingCtx<'_>,
    seed: usize,
) -> Option<TupleSolution> {
    let mut remaining: Vec<usize> = partition
        .tuples
        .iter()
        .copied()
        .filter(|&t| t != seed)
        .collect();
    let mut labels = relation.tuples[seed].labels.clone();
    let mut used = BTreeSet::from([seed]);
    loop {
        let complete = partition.covered.iter().all(|&col| labels[col].is_some());
        if complete {
            break;
        }
        // Best consistent extension: adds the most nulls.
        let mut best: Option<(usize, usize)> = None; // (gain, tuple)
        for &t in &remaining {
            let other = &relation.tuples[t].labels;
            let gain = labels
                .iter()
                .zip(other)
                .filter(|(a, b)| a.is_none() && b.is_some())
                .count();
            if gain == 0 || !rows_consistent(&labels, other, level, ctx) {
                continue;
            }
            if best.is_none_or(|(g, bt)| (gain, usize::MAX - t) > (g, usize::MAX - bt)) {
                best = Some((gain, t));
            }
        }
        match best {
            Some((_, t)) => {
                labels = combine(&labels, &relation.tuples[t].labels);
                used.insert(t);
                remaining.retain(|&x| x != t);
            }
            None => break, // no consistent extension left
        }
    }
    let complete = partition.covered.iter().all(|&col| labels[col].is_some());
    if !complete {
        return None;
    }
    let is_candidate = used.len() == 1;
    let frequency = relation
        .tuples
        .iter()
        .filter(|t| t.labels == labels)
        .count();
    let expressiveness = tuple_expressiveness(&labels, ctx);
    Some(TupleSolution {
        labels,
        used_tuples: used,
        is_candidate,
        expressiveness,
        frequency,
    })
}

/// Distinct content words across the non-null labels of a row (§4.2.1).
pub fn tuple_expressiveness(labels: &[Option<String>], ctx: &NamingCtx<'_>) -> usize {
    let mut keys: BTreeSet<String> = BTreeSet::new();
    for label in labels.iter().flatten() {
        for word in &ctx.text(label).words {
            keys.insert(word.stem.clone());
        }
    }
    keys.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_tuples;
    use qi_lexicon::Lexicon;
    use qi_mapping::ClusterId;

    fn cids(n: u32) -> Vec<ClusterId> {
        (0..n).map(ClusterId).collect()
    }

    #[test]
    fn combine_overlays() {
        let r = vec![
            Some("Seniors".to_string()),
            Some("Adults".to_string()),
            None,
        ];
        let s = vec![None, Some("Adult".to_string()), Some("Infants".to_string())];
        assert_eq!(
            combine(&r, &s),
            vec![
                Some("Seniors".to_string()),
                Some("Adults".to_string()), // r wins where both non-null
                Some("Infants".to_string()),
            ]
        );
    }

    /// §4.1: Combine(british, economytravel) = (Seniors, Adults, Children,
    /// Infants) — the paper's flagship example.
    #[test]
    fn table2_combined_solution() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(4),
            &[
                vec![None, Some("Adults"), Some("Children"), None],
                vec![None, Some("Adult"), Some("Child"), Some("Infant")],
                vec![None, Some("Adult"), Some("Child"), None],
                vec![Some("Seniors"), Some("Adults"), Some("Children"), None],
                vec![None, Some("Adults"), Some("Children"), Some("Infants")],
                vec![Some("Seniors"), Some("Adults"), Some("Children"), None],
            ],
        );
        let result = partition_tuples(&relation, ConsistencyLevel::String, &ctx);
        let full = &result.partitions[result.full[0]];
        let solutions = enumerate_solutions(&relation, full, ConsistencyLevel::String, &ctx);
        let expected: Vec<Option<String>> = ["Seniors", "Adults", "Children", "Infants"]
            .iter()
            .map(|s| Some(s.to_string()))
            .collect();
        assert!(
            solutions.iter().any(|s| s.labels == expected),
            "expected solution not derived: {solutions:?}"
        );
        // No solution is a candidate (no single interface covers all 4).
        assert!(solutions.iter().all(|s| !s.is_candidate));
    }

    #[test]
    fn candidate_solutions_and_frequency() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(2),
            &[
                vec![Some("Make"), Some("Model")],
                vec![Some("Make"), Some("Model")],
                vec![Some("Make"), None],
            ],
        );
        let result = partition_tuples(&relation, ConsistencyLevel::String, &ctx);
        assert!(result.has_full_cover());
        let full = &result.partitions[result.full[0]];
        let solutions = enumerate_solutions(&relation, full, ConsistencyLevel::String, &ctx);
        let full_solution = solutions
            .iter()
            .find(|s| s.labels.iter().all(Option::is_some))
            .unwrap();
        assert!(full_solution.is_candidate);
        assert_eq!(full_solution.frequency, 2);
    }

    /// §4.2.1's expressiveness example: (Max. Number of Stops, Class of
    /// Ticket, Preferred Airline) beats (Number of Connections, Class of
    /// Ticket, Airline Preference).
    #[test]
    fn expressiveness_prefers_descriptive() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let a: Vec<Option<String>> = vec![
            Some("Max. Number of Stops".to_string()),
            Some("Class of Ticket".to_string()),
            Some("Preferred Airline".to_string()),
        ];
        let b: Vec<Option<String>> = vec![
            Some("Number of Connections".to_string()),
            Some("Class of Ticket".to_string()),
            Some("Airline Preference".to_string()),
        ];
        assert!(tuple_expressiveness(&a, &ctx) > tuple_expressiveness(&b, &ctx));
    }

    #[test]
    fn incomplete_partition_yields_partial_column_solutions() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        // Column 2 is labeled only by a tuple disconnected from the
        // {State, City} partition.
        let relation = GroupRelation::from_rows(
            &cids(3),
            &[
                vec![Some("State"), Some("City"), None],
                vec![Some("State"), None, None],
                vec![None, None, Some("Zip")],
            ],
        );
        let result = partition_tuples(&relation, ConsistencyLevel::String, &ctx);
        assert!(!result.has_full_cover());
        let p = result
            .partitions
            .iter()
            .find(|p| p.covered.contains(&0))
            .unwrap();
        let solutions = enumerate_solutions(&relation, p, ConsistencyLevel::String, &ctx);
        // The solution is complete on columns {0,1} and null on column 2.
        assert!(solutions
            .iter()
            .any(|s| s.labels[0].is_some() && s.labels[1].is_some() && s.labels[2].is_none()));
    }

    #[test]
    fn expressiveness_of_empty_row() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        assert_eq!(tuple_expressiveness(&[None, None], &ctx), 0);
    }
}
