//! Candidate labels for internal nodes (§5, logical inferences LI1–LI5).
//!
//! For a global internal node with descendant-cluster set `X`, every
//! *labeled* internal node of a source schema whose descendant clusters
//! (its *bag*) fall inside `X` contributes a *potential label*. Candidates
//! are derived from potentials by:
//!
//! * **LI2** — the bags of all source nodes carrying (an equal form of)
//!   the label union to exactly `X` (Figure 8, left: `Location`);
//! * **LI3/LI4** — a label absorbs the coverage of labels it is a hypernym
//!   of; hierarchy roots whose propagated coverage reaches `X` are
//!   candidates (Figure 8, middle: `Do you have any preferences?`);
//! * **LI5** — the uncovered remainder `Z` is *characterized by* a subset
//!   `W` of the covered fields (instances of `Z` ⊆ instances of `W`, or a
//!   source node over `W ∪ Z` whose label's content words come from `W`'s
//!   field labels), so the label's meaning extends over `Z` (Figure 8,
//!   right: `Car Information` covering `Keywords`);
//! * **LI1** — reconciles structural generality with lexical hypernymy:
//!   labels of nodes with nested bags where the *smaller* node's label is
//!   the lexical hypernym are semantically equivalent in the domain
//!   (`Location` ≡ `Property Location`).

use crate::ctx::NamingCtx;
use crate::instances::instances_subset;
use crate::report::{InferenceRule, LiUsage};
use qi_mapping::ClusterId;
use qi_runtime::Symbol;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A potential label: one labeled source internal node whose bag is
/// contained in the global node's descendant clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PotentialLabel {
    /// The source node's label.
    pub label: String,
    /// Source schema index.
    pub schema: usize,
    /// Clusters covered by the source node's descendant fields.
    pub bag: BTreeSet<ClusterId>,
}

/// A candidate label for a global internal node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateLabel {
    /// The elected raw form of the label (a lease on the naming context's
    /// interner arena — cloning is a reference-count bump).
    pub label: Arc<str>,
    /// The label's interned symbol; ancestor-duplication checks in phase
    /// 3 compare these as integers.
    pub sym: Symbol,
    /// Schemas whose internal nodes supplied (an equal form of) it.
    pub schemas: BTreeSet<usize>,
    /// The inference rule that established full coverage.
    pub rule: InferenceRule,
    /// Content-word count (most-descriptive election).
    pub expressiveness: usize,
    /// How many source internal nodes carry the label.
    pub frequency: usize,
    /// Clusters directly covered by the label's source nodes (before
    /// LI3–LI5 extension) — the structural evidence for Definition 5
    /// generality comparisons.
    pub coverage: BTreeSet<ClusterId>,
}

/// Per-cluster side information needed by LI5.
#[derive(Debug, Clone, Default)]
pub struct ClusterInfo {
    /// Union of instance domains of the cluster's fields.
    pub instances: Vec<String>,
    /// Labels of the cluster's fields (across schemas).
    pub field_labels: Vec<String>,
}

/// Equivalence class of equal potential labels. Variants are interned
/// symbols, so membership tests inside the class are integer compares.
struct LabelClass {
    /// Interned label variants with occurrence counts; `variants[0]` is
    /// the representative (most frequent, then lexicographically first —
    /// ties broken on spelling, not symbol order, so results do not
    /// depend on interning order).
    variants: Vec<(Symbol, usize)>,
    schemas: BTreeSet<usize>,
    direct: BTreeSet<ClusterId>,
    coverage: BTreeSet<ClusterId>,
    absorbed: usize,
}

impl LabelClass {
    fn representative(&self) -> Symbol {
        self.variants[0].0
    }

    fn frequency(&self) -> usize {
        self.variants.iter().map(|(_, n)| n).sum()
    }
}

/// Derive the candidate labels for a global internal node.
///
/// * `x` — the node's descendant-cluster set;
/// * `potentials` — labeled source internal nodes with `bag ⊆ x` (callers
///   pre-filter; entries with empty bags or labels are ignored);
/// * `info` — per-cluster instances and field labels (LI5);
/// * `usage` — LI counters (Figure 10), incremented per candidate
///   produced.
pub fn find_candidates(
    x: &BTreeSet<ClusterId>,
    potentials: &[PotentialLabel],
    info: &BTreeMap<ClusterId, ClusterInfo>,
    ctx: &NamingCtx<'_>,
    usage: &mut LiUsage,
) -> Vec<CandidateLabel> {
    let mut classes: Vec<LabelClass> = Vec::new();
    for potential in potentials {
        if potential.bag.is_empty()
            || !potential.bag.is_subset(x)
            || ctx.text(&potential.label).is_empty()
        {
            continue;
        }
        let psym = ctx.sym(&potential.label);
        match classes
            .iter_mut()
            .find(|c| ctx.equal_sym(c.representative(), psym))
        {
            Some(class) => {
                class.schemas.insert(potential.schema);
                class.direct.extend(potential.bag.iter().copied());
                match class.variants.iter_mut().find(|(v, _)| *v == psym) {
                    Some((_, n)) => *n += 1,
                    None => class.variants.push((psym, 1)),
                }
            }
            None => classes.push(LabelClass {
                variants: vec![(psym, 1)],
                schemas: BTreeSet::from([potential.schema]),
                direct: potential.bag.clone(),
                coverage: potential.bag.clone(),
                absorbed: 0,
            }),
        }
    }
    for class in &mut classes {
        class.variants.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(ctx.spelling(a.0).cmp(&ctx.spelling(b.0)))
        });
        class.coverage = class.direct.clone();
    }
    // LI3/LI4 fixpoint: a class absorbs the coverage of classes its
    // representative is a hypernym of.
    loop {
        let mut changed = false;
        for i in 0..classes.len() {
            for j in 0..classes.len() {
                if i == j {
                    continue;
                }
                let (rep_i, rep_j) = (classes[i].representative(), classes[j].representative());
                if !ctx.hypernym_sym(rep_i, rep_j) {
                    continue;
                }
                let addition: Vec<ClusterId> = classes[j]
                    .coverage
                    .difference(&classes[i].coverage)
                    .copied()
                    .collect();
                if !addition.is_empty() {
                    classes[i].coverage.extend(addition);
                    classes[i].absorbed += 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut candidates: Vec<CandidateLabel> = Vec::new();
    for class in &classes {
        let rule = if &class.direct == x {
            Some(InferenceRule::Li2)
        } else if &class.coverage == x {
            Some(if class.absorbed <= 1 {
                InferenceRule::Li3
            } else {
                InferenceRule::Li4
            })
        } else if li5_extends(x, &class.coverage, potentials, info, ctx) {
            Some(InferenceRule::Li5)
        } else {
            None
        };
        if let Some(rule) = rule {
            usage.record(rule);
            let rep = class.representative();
            candidates.push(CandidateLabel {
                label: ctx.spelling(rep),
                sym: rep,
                schemas: class.schemas.clone(),
                rule,
                expressiveness: ctx.expressiveness_sym(rep),
                frequency: class.frequency(),
                coverage: class.direct.clone(),
            });
        }
    }
    // LI1: collapse candidates that are semantically equivalent in the
    // domain (nested coverage + reverse lexical hypernymy). Keep the
    // more descriptive form.
    collapse_equivalent(&mut candidates, &classes, ctx, usage);
    candidates.sort_by(|a, b| {
        b.expressiveness
            .cmp(&a.expressiveness)
            .then(b.frequency.cmp(&a.frequency))
            .then(a.label.cmp(&b.label))
    });
    candidates
}

/// LI5: is `X − coverage` characterized by the covered fields?
fn li5_extends(
    x: &BTreeSet<ClusterId>,
    coverage: &BTreeSet<ClusterId>,
    potentials: &[PotentialLabel],
    info: &BTreeMap<ClusterId, ClusterInfo>,
    ctx: &NamingCtx<'_>,
) -> bool {
    if coverage.is_empty() || coverage == x || !coverage.is_subset(x) {
        return false;
    }
    let z: BTreeSet<ClusterId> = x.difference(coverage).copied().collect();
    // Condition 1: instances of Z ⊆ instances of the covered fields.
    let z_instances: Vec<String> = z
        .iter()
        .flat_map(|c| info.get(c).map(|i| i.instances.clone()).unwrap_or_default())
        .collect();
    let y_instances: Vec<String> = coverage
        .iter()
        .flat_map(|c| info.get(c).map(|i| i.instances.clone()).unwrap_or_default())
        .collect();
    let all_z_have_instances = !z.is_empty()
        && z.iter().all(|c| {
            info.get(c)
                .map(|i| !i.instances.is_empty())
                .unwrap_or(false)
        });
    if all_z_have_instances && instances_subset(&z_instances, &y_instances) {
        return true;
    }
    // Condition 2: some source node spans W ∪ Z (W ⊆ coverage, W ≠ ∅) and
    // its label's content words all come from W's field labels.
    for potential in potentials {
        if !potential.bag.is_subset(x) || !potential.bag.is_superset(&z) {
            continue;
        }
        let w: BTreeSet<ClusterId> = potential.bag.difference(&z).copied().collect();
        if w.is_empty() || !w.is_subset(coverage) {
            continue;
        }
        let mut w_words: BTreeSet<String> = BTreeSet::new();
        for cluster in &w {
            if let Some(ci) = info.get(cluster) {
                for label in &ci.field_labels {
                    for word in &ctx.text(label).words {
                        w_words.insert(word.stem.clone());
                    }
                }
            }
        }
        let label_words = ctx.text(&potential.label);
        if !label_words.words.is_empty()
            && label_words.words.iter().all(|w| w_words.contains(&w.stem))
        {
            return true;
        }
    }
    false
}

/// LI1 collapse: if candidate `a`'s class coverage is contained in `b`'s
/// and `a`'s label is a lexical hypernym of `b`'s, the two labels are
/// semantically equivalent in the domain — keep one.
fn collapse_equivalent(
    candidates: &mut Vec<CandidateLabel>,
    classes: &[LabelClass],
    ctx: &NamingCtx<'_>,
    usage: &mut LiUsage,
) {
    let coverage_of = |sym: Symbol| -> Option<&BTreeSet<ClusterId>> {
        classes
            .iter()
            .find(|c| c.representative() == sym)
            .map(|c| &c.coverage)
    };
    let mut removed: BTreeSet<usize> = BTreeSet::new();
    for i in 0..candidates.len() {
        for j in 0..candidates.len() {
            if i == j || removed.contains(&i) || removed.contains(&j) {
                continue;
            }
            let (a, b) = (&candidates[i], &candidates[j]);
            let (Some(cov_a), Some(cov_b)) = (coverage_of(a.sym), coverage_of(b.sym)) else {
                continue;
            };
            // a's bag ⊆ b's bag and a's label lexically ⊒ b's label ⇒
            // equivalent (LI1). Prefer the more descriptive label.
            if cov_a.is_subset(cov_b) && ctx.hypernym_sym(a.sym, b.sym) {
                usage.record(InferenceRule::Li1);
                let drop = if a.expressiveness >= b.expressiveness {
                    j
                } else {
                    i
                };
                removed.insert(drop);
            }
        }
    }
    let mut index = 0usize;
    candidates.retain(|_| {
        let keep = !removed.contains(&index);
        index += 1;
        keep
    });
}

/// Definition 5: label `la` (of a node covering `bag_a`) is *semantically
/// at least as general as* `lb` (covering `bag_b`) — lexically, or because
/// `bag_b ⊆ bag_a`.
pub fn at_least_as_general(
    la: &str,
    bag_a: &BTreeSet<ClusterId>,
    lb: &str,
    bag_b: &BTreeSet<ClusterId>,
    ctx: &NamingCtx<'_>,
) -> bool {
    ctx.at_least_as_general(la, lb) || bag_b.is_subset(bag_a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lexicon::Lexicon;

    fn set(ids: &[u32]) -> BTreeSet<ClusterId> {
        ids.iter().map(|&i| ClusterId(i)).collect()
    }

    fn pot(label: &str, schema: usize, bag: &[u32]) -> PotentialLabel {
        PotentialLabel {
            label: label.to_string(),
            schema,
            bag: set(bag),
        }
    }

    fn run(
        x: &BTreeSet<ClusterId>,
        potentials: &[PotentialLabel],
        info: &BTreeMap<ClusterId, ClusterInfo>,
    ) -> (Vec<CandidateLabel>, LiUsage) {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let mut usage = LiUsage::default();
        let candidates = find_candidates(x, potentials, info, &ctx, &mut usage);
        (candidates, usage)
    }

    /// Figure 8 (left): the same label `Location` on several sources
    /// unions to the full leaf set — LI2.
    #[test]
    fn li2_overlapping_coverage() {
        // X = {State, City, Zip} = {0,1,2}.
        let x = set(&[0, 1, 2]);
        let potentials = vec![
            pot("Location", 0, &[0, 1]),
            pot("Location", 1, &[1, 2]),
            pot("Address", 2, &[0]),
        ];
        let (candidates, usage) = run(&x, &potentials, &BTreeMap::new());
        let location = candidates.iter().find(|c| &*c.label == "Location").unwrap();
        assert_eq!(location.rule, InferenceRule::Li2);
        assert_eq!(location.schemas, BTreeSet::from([0, 1]));
        assert_eq!(usage.count(InferenceRule::Li2), 1);
        // Address covers only {0} and cannot be extended — no candidate.
        assert!(candidates.iter().all(|c| &*c.label != "Address"));
    }

    /// Figure 8 (middle): "Do you have any preferences?" is a hypernym of
    /// both specific preference labels; its propagated coverage reaches X
    /// — LI3/LI4.
    #[test]
    fn li3_li4_hypernym_hierarchy() {
        let x = set(&[0, 1]);
        let potentials = vec![
            pot("Do you have any preferences?", 0, &[0]),
            pot("Airline Preferences", 1, &[0]),
            pot("What are your service preferences?", 2, &[1]),
        ];
        let (candidates, usage) = run(&x, &potentials, &BTreeMap::new());
        let general = candidates
            .iter()
            .find(|c| &*c.label == "Do you have any preferences?")
            .expect("hierarchy root must be a candidate");
        assert!(matches!(
            general.rule,
            InferenceRule::Li3 | InferenceRule::Li4
        ));
        assert!(usage.count(InferenceRule::Li3) + usage.count(InferenceRule::Li4) >= 1);
    }

    /// Figure 8 (right) / LI5 condition 2: `Car Information` covers
    /// {Make, Model, From, To}; `Keywords` is characterized by
    /// {Make, Model} via a source node labeled "Make/Model" spanning
    /// {Make, Model, Keywords}.
    #[test]
    fn li5_extend_label_meaning() {
        // Clusters: 0=Make, 1=Model, 2=From, 3=To, 4=Keywords.
        let x = set(&[0, 1, 2, 3, 4]);
        let mut info: BTreeMap<ClusterId, ClusterInfo> = BTreeMap::new();
        info.insert(
            ClusterId(0),
            ClusterInfo {
                instances: vec![],
                field_labels: vec!["Make".to_string()],
            },
        );
        info.insert(
            ClusterId(1),
            ClusterInfo {
                instances: vec![],
                field_labels: vec!["Model".to_string()],
            },
        );
        let potentials = vec![
            pot("Car Information", 0, &[0, 1, 2, 3]),
            pot("Make/Model", 1, &[0, 1, 4]),
        ];
        let (candidates, usage) = run(&x, &potentials, &info);
        let car_info = candidates
            .iter()
            .find(|c| &*c.label == "Car Information")
            .expect("LI5 must extend Car Information over Keywords");
        assert_eq!(car_info.rule, InferenceRule::Li5);
        assert_eq!(usage.count(InferenceRule::Li5), 1);
    }

    /// LI5 condition 1: Z's instances are a subset of the covered fields'
    /// instances.
    #[test]
    fn li5_instance_subset() {
        let x = set(&[0, 1]);
        let mut info: BTreeMap<ClusterId, ClusterInfo> = BTreeMap::new();
        info.insert(
            ClusterId(0),
            ClusterInfo {
                instances: vec!["red".into(), "blue".into(), "green".into()],
                field_labels: vec!["Color".to_string()],
            },
        );
        info.insert(
            ClusterId(1),
            ClusterInfo {
                instances: vec!["red".into(), "blue".into()],
                field_labels: vec!["Shade".to_string()],
            },
        );
        let potentials = vec![pot("Appearance", 0, &[0])];
        let (candidates, usage) = run(&x, &potentials, &info);
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].rule, InferenceRule::Li5);
        assert_eq!(usage.count(InferenceRule::Li5), 1);
    }

    /// LI1: Location (small bag, lexical hypernym) and Property Location
    /// (larger bag) are semantically equivalent; the more descriptive
    /// label survives.
    #[test]
    fn li1_collapses_equivalent_candidates() {
        let x = set(&[0, 1, 2]);
        let potentials = vec![
            pot("Location", 0, &[0, 1]),
            pot("Location", 1, &[2]),
            pot("Property Location", 2, &[0, 1, 2]),
        ];
        let (candidates, usage) = run(&x, &potentials, &BTreeMap::new());
        assert_eq!(usage.count(InferenceRule::Li1), 1);
        assert_eq!(candidates.len(), 1);
        assert_eq!(&*candidates[0].label, "Property Location");
    }

    #[test]
    fn equal_label_variants_are_one_class() {
        let x = set(&[0, 1]);
        let potentials = vec![pot("Job Type", 0, &[0]), pot("Type of Job", 1, &[1])];
        let (candidates, _) = run(&x, &potentials, &BTreeMap::new());
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].rule, InferenceRule::Li2);
        assert_eq!(candidates[0].frequency, 2);
    }

    #[test]
    fn no_potentials_no_candidates() {
        let x = set(&[0, 1]);
        let (candidates, usage) = run(&x, &[], &BTreeMap::new());
        assert!(candidates.is_empty());
        assert_eq!(usage.total(), 0);
    }

    #[test]
    fn bag_outside_x_is_ignored() {
        let x = set(&[0]);
        let potentials = vec![pot("Wide", 0, &[0, 7])];
        let (candidates, _) = run(&x, &potentials, &BTreeMap::new());
        assert!(candidates.is_empty());
    }

    #[test]
    fn generality_definition5() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        // Lexical: Location ⊒ Property Location.
        assert!(at_least_as_general(
            "Location",
            &set(&[0]),
            "Property Location",
            &set(&[1, 2]),
            &ctx
        ));
        // Structural: unrelated labels, but bag containment.
        assert!(at_least_as_general(
            "Search",
            &set(&[0, 1, 2]),
            "Make",
            &set(&[1]),
            &ctx
        ));
        assert!(!at_least_as_general(
            "Make",
            &set(&[1]),
            "Search Area",
            &set(&[0, 2]),
            &ctx
        ));
    }
}
