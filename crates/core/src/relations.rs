//! Semantic relations between labels (Definition 1 of the paper).
//!
//! Labels are compared through their content-word sets (the second
//! normalization step of §3.1). Token-level relations come from the
//! lexicon; label-level relations are assembled from them:
//!
//! * `A string_equal B` — identical display forms;
//! * `A equal B` — identical content-word sets (`Type of Job` ≍ `Job
//!   Type`);
//! * `A synonym B` — same cardinality, a perfect token matching of
//!   equality/synonymy pairs with at least one synonymy (`Area of Study` ∼
//!   `Field of Work`);
//! * `A hypernym B` — `|A| ≤ |B|` and every token of `A` relates
//!   (equality/synonymy/hypernymy) to some token of `B`, with `|A| < |B|`
//!   or at least one hypernymy (`Class` ⊐ `Class of Tickets`);
//! * `A hyponym B` — `B hypernym A`.

use qi_lexicon::Lexicon;
use qi_text::{ContentWord, LabelText};

/// Relation between two labels, strongest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LabelRelation {
    /// Identical display strings.
    StringEqual,
    /// Identical content-word sets.
    Equal,
    /// Definition 1 synonymy.
    Synonym,
    /// The first label is more general.
    Hypernym,
    /// The first label is more specific.
    Hyponym,
    /// None of the above.
    Unrelated,
}

impl LabelRelation {
    /// True for any relation except [`LabelRelation::Unrelated`].
    pub fn is_related(self) -> bool {
        self != LabelRelation::Unrelated
    }

    /// The relation seen from the other side.
    pub fn flip(self) -> Self {
        match self {
            LabelRelation::Hypernym => LabelRelation::Hyponym,
            LabelRelation::Hyponym => LabelRelation::Hypernym,
            other => other,
        }
    }
}

/// Token-level relation (Definition 1's `rel` between content words).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenRel {
    /// Same canonical key (stem of lemma).
    Equal,
    /// Shared synset.
    Synonym,
    /// First token more general.
    Hypernym,
    /// No relation.
    None,
}

/// Relation between two content words.
pub fn token_rel(a: &ContentWord, b: &ContentWord, lexicon: &Lexicon) -> TokenRel {
    if a.key() == b.key() {
        return TokenRel::Equal;
    }
    if lexicon.are_synonyms(&a.lemma, &b.lemma) {
        return TokenRel::Synonym;
    }
    if lexicon.is_hypernym_of(&a.lemma, &b.lemma) {
        return TokenRel::Hypernym;
    }
    TokenRel::None
}

/// Compute the strongest Definition 1 relation between two labels.
pub fn relate(a: &LabelText, b: &LabelText, lexicon: &Lexicon) -> LabelRelation {
    if a.is_empty() || b.is_empty() {
        return LabelRelation::Unrelated;
    }
    if a.string_equal(b) {
        return LabelRelation::StringEqual;
    }
    if a.word_equal(b) {
        return LabelRelation::Equal;
    }
    if is_synonym(a, b, lexicon) {
        return LabelRelation::Synonym;
    }
    if is_hypernym(a, b, lexicon) {
        return LabelRelation::Hypernym;
    }
    if is_hypernym(b, a, lexicon) {
        return LabelRelation::Hyponym;
    }
    LabelRelation::Unrelated
}

/// Definition 1 synonymy: `n = m`, all tokens participate in a perfect
/// matching of equality/synonymy pairs, at least one pair is synonymy.
pub fn is_synonym(a: &LabelText, b: &LabelText, lexicon: &Lexicon) -> bool {
    let n = a.words.len();
    if n == 0 || n != b.words.len() {
        return false;
    }
    // Backtracking perfect matching (labels are short: n ≤ ~8).
    let mut used = vec![false; n];
    let mut any_syn = false;
    fn assign(
        i: usize,
        a: &LabelText,
        b: &LabelText,
        lexicon: &Lexicon,
        used: &mut [bool],
        syn_count: usize,
        any_syn: &mut bool,
    ) -> bool {
        if i == a.words.len() {
            if syn_count > 0 {
                *any_syn = true;
            }
            return syn_count > 0;
        }
        for j in 0..b.words.len() {
            if used[j] {
                continue;
            }
            let rel = token_rel(&a.words[i], &b.words[j], lexicon);
            let syn_inc = match rel {
                TokenRel::Equal => 0,
                TokenRel::Synonym => 1,
                _ => continue,
            };
            used[j] = true;
            if assign(i + 1, a, b, lexicon, used, syn_count + syn_inc, any_syn) {
                used[j] = false;
                return true;
            }
            used[j] = false;
        }
        false
    }
    assign(0, a, b, lexicon, &mut used, 0, &mut any_syn) && any_syn
}

/// Definition 1 hypernymy: `A hypernym B`.
pub fn is_hypernym(a: &LabelText, b: &LabelText, lexicon: &Lexicon) -> bool {
    let n = a.words.len();
    let m = b.words.len();
    if n == 0 || m == 0 || n > m {
        return false;
    }
    let mut any_hyper = false;
    for wa in &a.words {
        let mut matched = false;
        for wb in &b.words {
            match token_rel(wa, wb, lexicon) {
                TokenRel::Equal | TokenRel::Synonym => {
                    matched = true;
                    break;
                }
                TokenRel::Hypernym => {
                    matched = true;
                    any_hyper = true;
                    break;
                }
                TokenRel::None => {}
            }
        }
        if !matched {
            return false;
        }
    }
    n < m || any_hyper
}

/// "Semantically similar" for homonym detection (§4.2.3): labels that are
/// string-equal, equal or synonyms denote the same concept.
pub fn is_similar(a: &LabelText, b: &LabelText, lexicon: &Lexicon) -> bool {
    matches!(
        relate(a, b, lexicon),
        LabelRelation::StringEqual | LabelRelation::Equal | LabelRelation::Synonym
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lexicon::Lexicon;

    fn lex() -> Lexicon {
        Lexicon::builtin()
    }

    fn lt(s: &str, lexicon: &Lexicon) -> LabelText {
        LabelText::new(s, lexicon)
    }

    #[test]
    fn string_equal_beats_everything() {
        let l = lex();
        assert_eq!(
            relate(&lt("From", &l), &lt("From", &l), &l),
            LabelRelation::StringEqual
        );
        assert_eq!(
            relate(&lt("Zip Code", &l), &lt("zip code:", &l), &l),
            LabelRelation::StringEqual
        );
    }

    #[test]
    fn equal_ignores_order_and_inflection() {
        let l = lex();
        assert_eq!(
            relate(&lt("Type of Job", &l), &lt("Job Type", &l), &l),
            LabelRelation::Equal
        );
        // Table 4: Preferred Airline vs Airline Preference (Porter stems).
        assert_eq!(
            relate(
                &lt("Preferred Airline", &l),
                &lt("Airline Preference", &l),
                &l
            ),
            LabelRelation::Equal
        );
    }

    #[test]
    fn synonym_paper_example() {
        let l = lex();
        // Definition 1: Area of Study synonym Field of Work.
        assert_eq!(
            relate(&lt("Area of Study", &l), &lt("Field of Work", &l), &l),
            LabelRelation::Synonym
        );
    }

    #[test]
    fn synonym_requires_equal_cardinality() {
        let l = lex();
        assert_ne!(
            relate(&lt("Area", &l), &lt("Field of Work", &l), &l),
            LabelRelation::Synonym
        );
    }

    #[test]
    fn synonym_requires_at_least_one_synonymy() {
        let l = lex();
        // All-equal token sets are Equal, not Synonym.
        assert_eq!(
            relate(&lt("Job Type", &l), &lt("Type of Job", &l), &l),
            LabelRelation::Equal
        );
    }

    #[test]
    fn hypernym_paper_example() {
        let l = lex();
        // Definition 1: Class hypernym Class of Tickets.
        assert_eq!(
            relate(&lt("Class", &l), &lt("Class of Tickets", &l), &l),
            LabelRelation::Hypernym
        );
        assert_eq!(
            relate(&lt("Class of Tickets", &l), &lt("Class", &l), &l),
            LabelRelation::Hyponym
        );
    }

    #[test]
    fn hypernym_via_token_hypernymy() {
        let l = lex();
        // location ⊐ area at token level, same cardinality.
        assert_eq!(
            relate(&lt("Location", &l), &lt("Area", &l), &l),
            LabelRelation::Hypernym
        );
        // §5: Property Location hyponym of Location.
        assert_eq!(
            relate(&lt("Location", &l), &lt("Property Location", &l), &l),
            LabelRelation::Hypernym
        );
    }

    #[test]
    fn question_labels_reduce_to_content() {
        let l = lex();
        // §5.1.2: both hyponyms of "Do you have any preferences?".
        assert_eq!(
            relate(
                &lt("Do you have any preferences?", &l),
                &lt("Airline Preferences", &l),
                &l
            ),
            LabelRelation::Hypernym
        );
        assert_eq!(
            relate(
                &lt("What are your service preferences?", &l),
                &lt("Do you have any preferences?", &l),
                &l
            ),
            LabelRelation::Hyponym
        );
    }

    #[test]
    fn unrelated_labels() {
        let l = lex();
        assert_eq!(
            relate(&lt("Make", &l), &lt("Model", &l), &l),
            LabelRelation::Unrelated
        );
        assert_eq!(
            relate(&lt("", &l), &lt("Make", &l), &l),
            LabelRelation::Unrelated
        );
    }

    #[test]
    fn flip_and_is_related() {
        assert_eq!(LabelRelation::Hypernym.flip(), LabelRelation::Hyponym);
        assert_eq!(LabelRelation::Equal.flip(), LabelRelation::Equal);
        assert!(LabelRelation::Synonym.is_related());
        assert!(!LabelRelation::Unrelated.is_related());
    }

    #[test]
    fn similar_for_homonym_detection() {
        let l = lex();
        assert!(is_similar(&lt("Job Type", &l), &lt("Type of Job", &l), &l));
        assert!(!is_similar(
            &lt("Job Type", &l),
            &lt("Company Name", &l),
            &l
        ));
        // Hypernyms are related but NOT similar (different granularity is
        // not a homonym conflict).
        assert!(!is_similar(
            &lt("Class", &l),
            &lt("Class of Tickets", &l),
            &l
        ));
    }

    #[test]
    fn token_rel_precedence() {
        let l = lex();
        let a = ContentWord::new("city", &l);
        let b = ContentWord::new("town", &l);
        let c = ContentWord::new("location", &l);
        assert_eq!(token_rel(&a, &a, &l), TokenRel::Equal);
        assert_eq!(token_rel(&a, &b, &l), TokenRel::Synonym);
        assert_eq!(token_rel(&c, &a, &l), TokenRel::Hypernym);
        assert_eq!(token_rel(&a, &c, &l), TokenRel::None); // hyponym side
    }

    /// The backtracking matcher must not be fooled by greedy dead ends.
    #[test]
    fn synonym_matching_needs_backtracking() {
        // Label A: {area, work}; Label B: {field, study}.
        // area∼field, work∼study — but also area∼field only; a greedy
        // matcher pairing work→field first would fail.
        let l = lex();
        assert_eq!(
            relate(&lt("Work Area", &l), &lt("Field of Study", &l), &l),
            LabelRelation::Synonym
        );
    }
}
