//! Homonym detection and repair (§4.2.3).
//!
//! Two fields of one group must not end up with the same (or semantically
//! equivalent) labels. When a tuple-solution contains such a pair, the
//! repair looks for a source tuple that labels *both* clusters, agrees
//! with the solution on one of them, and supplies a non-similar label for
//! the other: designers of a single interface avoid evident ambiguities,
//! so that tuple's pair of labels is a safe replacement.

use crate::ctx::NamingCtx;
use qi_mapping::GroupRelation;
use std::collections::{BTreeSet, HashMap};

/// Column pairs of a solution whose labels are homonym-conflicted:
/// identical up to word order and inflection (`Job Type` / `Type of
/// Job`). Synonym-level pairs (`Job Type` / `Employment Type`) use
/// visually distinct words and are acceptable on a form — the paper's own
/// repair example substitutes exactly such a synonym.
///
/// `a equal b` (or stronger) holds exactly when both labels survive
/// normalization non-empty and either their display forms match
/// case-insensitively (`string_equal`) or their content-word key sets
/// match (`equal`) — both are *equivalence* signatures, so conflicts are
/// found by bucketing the columns on the two signatures instead of
/// probing all O(n²) pairs. Matters for the wide root group, where this
/// runs on every (incremental) relabel.
pub fn find_conflicts(labels: &[Option<String>], ctx: &NamingCtx<'_>) -> Vec<(usize, usize)> {
    let texts: Vec<_> = labels
        .iter()
        .map(|l| l.as_ref().map(|s| ctx.text(s)))
        .collect();
    let mut by_display: HashMap<String, Vec<usize>> = HashMap::new();
    let mut by_keys: HashMap<Vec<&str>, Vec<usize>> = HashMap::new();
    for (i, text) in texts.iter().enumerate() {
        let Some(text) = text else { continue };
        if text.is_empty() {
            continue; // relate() treats empty labels as unrelated
        }
        by_display
            .entry(text.display.to_ascii_lowercase())
            .or_default()
            .push(i);
        by_keys
            .entry(text.keys().into_iter().collect())
            .or_default()
            .push(i);
    }
    // Union of both signatures' in-bucket pairs, in the (i, j)
    // lexicographic order a pairwise scan would emit.
    let mut pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
    for bucket in by_display.values().chain(by_keys.values()) {
        for (a, &i) in bucket.iter().enumerate() {
            for &j in &bucket[a + 1..] {
                pairs.insert((i, j));
            }
        }
    }
    pairs.into_iter().collect()
}

/// Attempt to repair every homonym conflict in `labels`. Returns
/// `Some(true)` when conflicts were found and all were repaired,
/// `Some(false)` when at least one conflict remains, and `None` when the
/// solution had no conflicts.
pub fn repair_conflicts(
    labels: &mut [Option<String>],
    relation: &GroupRelation,
    ctx: &NamingCtx<'_>,
) -> Option<bool> {
    let conflicts = find_conflicts(labels, ctx);
    if conflicts.is_empty() {
        return None;
    }
    let mut all_repaired = true;
    for (i, j) in conflicts {
        if !repair_one(labels, i, j, relation, ctx) {
            all_repaired = false;
        }
    }
    Some(all_repaired)
}

/// Repair a single conflicting pair by borrowing a disambiguating pair of
/// labels from a source tuple (§4.2.3's `Employment Type` example).
fn repair_one(
    labels: &mut [Option<String>],
    i: usize,
    j: usize,
    relation: &GroupRelation,
    ctx: &NamingCtx<'_>,
) -> bool {
    let (Some(li), Some(lj)) = (labels[i].clone(), labels[j].clone()) else {
        return false;
    };
    for tuple in &relation.tuples {
        let (Some(ti), Some(tj)) = (&tuple.labels[i], &tuple.labels[j]) else {
            continue;
        };
        // The source itself must be unambiguous.
        if ctx.equal(ti, tj) {
            continue;
        }
        // Case 1: the tuple agrees with the solution on column i and
        // offers a different label for column j.
        if ctx.equal(ti, &li) && !ctx.equal(tj, &li) {
            labels[j] = Some(tj.clone());
            return true;
        }
        // Case 2: symmetric.
        if ctx.equal(tj, &lj) && !ctx.equal(ti, &lj) {
            labels[i] = Some(ti.clone());
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lexicon::Lexicon;
    use qi_mapping::ClusterId;

    fn cids(n: u32) -> Vec<ClusterId> {
        (0..n).map(ClusterId).collect()
    }

    #[test]
    fn detects_equal_level_conflicts() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let labels = vec![
            Some("Job Type".to_string()),
            Some("Type of Job".to_string()),
            Some("Company Name".to_string()),
        ];
        let conflicts = find_conflicts(&labels, &ctx);
        assert_eq!(conflicts, vec![(0, 1)]);
    }

    #[test]
    fn no_conflict_in_clean_solution() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let labels = vec![Some("Make".to_string()), Some("Model".to_string()), None];
        assert!(find_conflicts(&labels, &ctx).is_empty());
        let mut l = labels.clone();
        let relation = GroupRelation::from_rows(&cids(3), &[]);
        assert_eq!(repair_conflicts(&mut l, &relation, &ctx), None);
    }

    /// The paper's example: (Position Options, Job Type, Type of Job,
    /// Company Name) repaired to (…, Job Type, Employment Type, …) using
    /// a tuple (X, Job Type, Employment Type, X).
    #[test]
    fn paper_repair_example() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(4),
            &[
                vec![
                    Some("Position Options"),
                    Some("Job Type"),
                    Some("Type of Job"),
                    Some("Company Name"),
                ],
                vec![None, Some("Job Type"), Some("Employment Type"), None],
            ],
        );
        let mut labels = vec![
            Some("Position Options".to_string()),
            Some("Job Type".to_string()),
            Some("Type of Job".to_string()),
            Some("Company Name".to_string()),
        ];
        let outcome = repair_conflicts(&mut labels, &relation, &ctx);
        assert_eq!(outcome, Some(true));
        assert_eq!(labels[2].as_deref(), Some("Employment Type"));
        assert_eq!(labels[1].as_deref(), Some("Job Type"));
        assert!(find_conflicts(&labels, &ctx).is_empty());
    }

    #[test]
    fn unrepairable_conflict_reports_false() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        // No tuple labels both columns, so the conflict cannot be fixed.
        let relation = GroupRelation::from_rows(
            &cids(2),
            &[
                vec![Some("Job Type"), None],
                vec![None, Some("Type of Job")],
            ],
        );
        let mut labels = vec![
            Some("Job Type".to_string()),
            Some("Type of Job".to_string()),
        ];
        assert_eq!(repair_conflicts(&mut labels, &relation, &ctx), Some(false));
        // The solution is untouched.
        assert_eq!(labels[0].as_deref(), Some("Job Type"));
        assert_eq!(labels[1].as_deref(), Some("Type of Job"));
    }

    #[test]
    fn ambiguous_source_tuples_are_skipped() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        // The only both-columns tuple is itself ambiguous — useless.
        let relation =
            GroupRelation::from_rows(&cids(2), &[vec![Some("Job Type"), Some("Type of Job")]]);
        let mut labels = vec![
            Some("Job Type".to_string()),
            Some("Type of Job".to_string()),
        ];
        assert_eq!(repair_conflicts(&mut labels, &relation, &ctx), Some(false));
    }
}
