//! Naming policy: the configuration and ablation axes of the algorithm.

use crate::consistency::ConsistencyLevel;

/// How to pick one label (or solution) among semantically acceptable
/// alternatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LabelSelection {
    /// The paper's choice (§3.2.1): prefer the most descriptive label —
    /// more distinct content words first, frequency as tie-break.
    #[default]
    MostDescriptive,
    /// The WISE-Integrator \[12\] baseline: prefer the most general label —
    /// majority rule first, fewer content words as tie-break.
    MostGeneral,
}

/// Configuration of a naming run.
///
/// The defaults reproduce the paper; the other settings are the ablation
/// axes benchmarked in `qi-bench`:
///
/// * `max_level` — how far down the relaxation ladder of Definition 2 the
///   group-naming search may go (ablation B);
/// * `selection` — most-descriptive vs most-general (ablation A, §3.2.1
///   and §6.1.1);
/// * `use_instances` — whether the LI6/LI7 instance rules run (§6.1);
/// * `repair_conflicts` — whether homonym conflicts are repaired (§4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NamingPolicy {
    /// Deepest consistency level to try.
    pub max_level: ConsistencyLevel,
    /// Label-selection strategy.
    pub selection: LabelSelection,
    /// Enable instance-based inference rules (LI6, LI7).
    pub use_instances: bool,
    /// Enable homonym conflict repair.
    pub repair_conflicts: bool,
}

impl Default for NamingPolicy {
    fn default() -> Self {
        NamingPolicy {
            max_level: ConsistencyLevel::Synonymy,
            selection: LabelSelection::MostDescriptive,
            use_instances: true,
            repair_conflicts: true,
        }
    }
}

impl NamingPolicy {
    /// The WISE-Integrator-style baseline configuration: most-general
    /// labels, no conflict repair (renaming is delegated to a designer in
    /// the classic methodologies — §8).
    pub fn most_general_baseline() -> Self {
        NamingPolicy {
            max_level: ConsistencyLevel::Synonymy,
            selection: LabelSelection::MostGeneral,
            use_instances: false,
            repair_conflicts: false,
        }
    }

    /// The consistency levels this policy permits, in relaxation order.
    pub fn levels(&self) -> Vec<ConsistencyLevel> {
        ConsistencyLevel::LADDER
            .into_iter()
            .filter(|&l| l <= self.max_level)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reproduces_paper() {
        let p = NamingPolicy::default();
        assert_eq!(p.max_level, ConsistencyLevel::Synonymy);
        assert_eq!(p.selection, LabelSelection::MostDescriptive);
        assert!(p.use_instances);
        assert!(p.repair_conflicts);
        assert_eq!(p.levels().len(), 3);
    }

    #[test]
    fn level_ladder_is_truncated() {
        let p = NamingPolicy {
            max_level: ConsistencyLevel::String,
            ..NamingPolicy::default()
        };
        assert_eq!(p.levels(), vec![ConsistencyLevel::String]);
        let p = NamingPolicy {
            max_level: ConsistencyLevel::Equality,
            ..NamingPolicy::default()
        };
        assert_eq!(
            p.levels(),
            vec![ConsistencyLevel::String, ConsistencyLevel::Equality]
        );
    }

    #[test]
    fn baseline_flips_selection() {
        let b = NamingPolicy::most_general_baseline();
        assert_eq!(b.selection, LabelSelection::MostGeneral);
        assert!(!b.use_instances);
        assert!(!b.repair_conflicts);
    }
}
