//! Naming the fields of a group (§4.1–§4.3).
//!
//! `name_group` walks the relaxation ladder of Definition 2: at each
//! consistency level it partitions the group relation (§4.1.1); as soon as
//! some partition covers every (coverable) cluster it extracts all
//! tuple-solutions with `Combine*`, ranks them (§4.2.1: expressiveness,
//! then frequency — or the most-general baseline ordering), repairs
//! homonym conflicts (§4.2.3) and reports a *consistent* naming. If no
//! level produces a covering partition, the greedy concatenation of
//! §4.2.2 builds a *partially consistent* naming instead.

use crate::combine::{enumerate_solutions, greedy_solutions, tuple_expressiveness, TupleSolution};
use crate::conflicts::repair_conflicts;
use crate::consistency::ConsistencyLevel;
use crate::ctx::NamingCtx;
use crate::partition::{components, extend_components, result_from_components, TuplePartition};
use crate::policy::{LabelSelection, NamingPolicy};
use qi_mapping::GroupRelation;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// One ranked naming alternative for a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSolution {
    /// Labels per cluster column (`None` = no source ever labels it).
    pub labels: Vec<Option<String>>,
    /// Relation tuples whose components were used.
    pub used_tuples: BTreeSet<usize>,
    /// Tuples of the partition that supplied the solution (empty for a
    /// partially consistent solution assembled across partitions).
    pub partition_tuples: Vec<usize>,
    /// Distinct content words across the labels.
    pub expressiveness: usize,
    /// Verbatim occurrences among the relation's tuples.
    pub frequency: usize,
    /// True if one interface supplied the whole solution (Definition 4).
    pub is_candidate: bool,
    /// Homonym repair outcome (`None` = no conflict found).
    pub conflict_repaired: Option<bool>,
}

/// The naming outcome for one group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupNaming {
    /// Alternatives, best first. Non-empty whenever the relation has at
    /// least one tuple.
    pub alternatives: Vec<GroupSolution>,
    /// Level at which consistency was achieved; `None` for partially
    /// consistent outcomes.
    pub level: Option<ConsistencyLevel>,
    /// True when the labels form a consistent solution (Proposition 1).
    pub consistent: bool,
}

impl GroupNaming {
    /// The best alternative, if any.
    pub fn best(&self) -> Option<&GroupSolution> {
        self.alternatives.first()
    }
}

/// The index `rank` would sort first, without materializing the sort:
/// first-encountered minimum under the same comparator (ties keep the
/// earlier solution, matching the stable sort).
fn best_of(solutions: &[TupleSolution], selection: LabelSelection) -> Option<usize> {
    let cmp = |a: &TupleSolution, b: &TupleSolution| match selection {
        LabelSelection::MostDescriptive => b
            .expressiveness
            .cmp(&a.expressiveness)
            .then(b.frequency.cmp(&a.frequency))
            .then(a.labels.cmp(&b.labels)),
        LabelSelection::MostGeneral => b
            .frequency
            .cmp(&a.frequency)
            .then(a.expressiveness.cmp(&b.expressiveness))
            .then(a.labels.cmp(&b.labels)),
    };
    let mut best: Option<usize> = None;
    for (i, s) in solutions.iter().enumerate() {
        match best {
            Some(b) if cmp(s, &solutions[b]).is_lt() => best = Some(i),
            None => best = Some(i),
            _ => {}
        }
    }
    best
}

/// Order solutions per the policy's selection strategy.
fn rank(solutions: &mut [GroupSolution], selection: LabelSelection) {
    match selection {
        LabelSelection::MostDescriptive => solutions.sort_by(|a, b| {
            b.expressiveness
                .cmp(&a.expressiveness)
                .then(b.frequency.cmp(&a.frequency))
                .then(a.labels.cmp(&b.labels))
        }),
        LabelSelection::MostGeneral => solutions.sort_by(|a, b| {
            b.frequency
                .cmp(&a.frequency)
                .then(a.expressiveness.cmp(&b.expressiveness))
                .then(a.labels.cmp(&b.labels))
        }),
    }
}

/// Solutions of one partition: the exhaustive `Combine*` enumeration for
/// normally sized groups, falling back to the linear-time spanning-tree
/// construction (§4.2.1) when the group is too wide for enumeration or
/// the state cap was reached without a complete tuple. Wide, loosely
/// consistent collections of clusters are exactly the root "group" the
/// paper accepts partially consistent solutions for (§4), so a single
/// greedy solution is adequate there.
fn partition_solutions(
    relation: &GroupRelation,
    partition: &TuplePartition,
    level: ConsistencyLevel,
    ctx: &NamingCtx<'_>,
) -> Vec<TupleSolution> {
    const MAX_EXHAUSTIVE_TUPLES: usize = 12;
    const MAX_EXHAUSTIVE_WIDTH: usize = 8;
    const ALWAYS_EXHAUSTIVE_WIDTH: usize = 6;
    if partition.covered.len() <= ALWAYS_EXHAUSTIVE_WIDTH
        || (partition.tuples.len() <= MAX_EXHAUSTIVE_TUPLES
            && partition.covered.len() <= MAX_EXHAUSTIVE_WIDTH)
    {
        let solutions = enumerate_solutions(relation, partition, level, ctx);
        if !solutions.is_empty() {
            return solutions;
        }
    }
    greedy_solutions(relation, partition, level, ctx)
}

fn to_group_solution(solution: TupleSolution, partition_tuples: Vec<usize>) -> GroupSolution {
    GroupSolution {
        labels: solution.labels,
        used_tuples: solution.used_tuples,
        partition_tuples,
        expressiveness: solution.expressiveness,
        frequency: solution.frequency,
        is_candidate: solution.is_candidate,
        conflict_repaired: None,
    }
}

/// Solutions of one partition at one level, in partition-tuple form —
/// the carryable half of the partially-consistent path. Keyed by the
/// member tuple set: an append that leaves a partition's members
/// untouched leaves its `Combine*` output untouched too (modulo column
/// padding), so the enumeration can be replayed instead of redone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSolutions {
    /// Member tuple indices of the partition, ascending.
    pub tuples: Vec<usize>,
    /// Raw `Combine*` / greedy output for the partition, pre-ranking.
    /// Shared, so capturing a run's state never deep-copies the
    /// solution lists.
    pub solutions: Arc<Vec<TupleSolution>>,
}

/// The reusable internals of one `name_group` run over a relation.
///
/// `levels` carries the canonical connected-component ids per visited
/// consistency level ([`components`]); appending one tuple only *merges*
/// components (an edge between old tuples never appears or disappears),
/// so [`extend_group_naming`] re-derives each level in O(n) instead of
/// O(n²). `partial` carries the per-partition solutions of the
/// partially-consistent path, reused verbatim for partitions the append
/// did not touch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupNamingState {
    /// `(level, canonical component id per tuple)` for every level the
    /// run partitioned at, in ladder order.
    pub levels: Vec<(ConsistencyLevel, Vec<usize>)>,
    /// Per-partition solutions at the final level, when the run took the
    /// partially-consistent path (partition order).
    pub partial: Option<Vec<PartitionSolutions>>,
}

/// How an extension run may reuse a prior run's state.
struct ExtendSeed<'s> {
    old: &'s GroupNamingState,
    /// True when the new relation has one tuple appended after the old
    /// ones (false when the new schema labeled nothing in this group).
    appended: bool,
    /// Old column index → new column index.
    column_map: &'s [usize],
}

/// Replay a cached solution against a column-remapped relation: labels
/// move through `column_map` (new columns stay null — no old tuple
/// labels them), and the verbatim-occurrence frequency picks up the
/// appended tuple iff it equals the solution. Everything else —
/// contributing tuples, candidacy, expressiveness — is append-invariant.
fn remap_solution(
    solution: &TupleSolution,
    relation: &GroupRelation,
    column_map: &[usize],
    appended: bool,
) -> TupleSolution {
    let mut labels: Vec<Option<String>> = vec![None; relation.width()];
    for (old_col, &new_col) in column_map.iter().enumerate() {
        labels[new_col] = solution.labels[old_col].clone();
    }
    let mut frequency = solution.frequency;
    if appended && relation.tuples[relation.tuples.len() - 1].labels == labels {
        frequency += 1;
    }
    TupleSolution {
        labels,
        used_tuples: solution.used_tuples.clone(),
        is_candidate: solution.is_candidate,
        expressiveness: solution.expressiveness,
        frequency,
    }
}

/// Name the fields of one group (§4.1–§4.3).
pub fn name_group(
    relation: &GroupRelation,
    ctx: &NamingCtx<'_>,
    policy: &NamingPolicy,
) -> GroupNaming {
    name_group_impl(relation, ctx, policy, false, None).0
}

/// [`name_group`], also capturing the run's reusable internals for a
/// later [`extend_group_naming`].
pub fn name_group_stateful(
    relation: &GroupRelation,
    ctx: &NamingCtx<'_>,
    policy: &NamingPolicy,
) -> (GroupNaming, GroupNamingState) {
    let (naming, state) = name_group_impl(relation, ctx, policy, true, None);
    (naming, state.expect("stateful run captures state"))
}

/// Re-run `name_group` over a relation extended from a previous run —
/// same tuples in the same order (columns possibly remapped through
/// `column_map`, new columns null everywhere), plus at most one appended
/// tuple — reusing the previous run's partitioning and per-partition
/// solutions. Produces output identical to [`name_group`] from scratch:
/// component extension and solution replay are exact, not approximate.
pub fn extend_group_naming(
    relation: &GroupRelation,
    old: &GroupNamingState,
    appended: bool,
    column_map: &[usize],
    ctx: &NamingCtx<'_>,
    policy: &NamingPolicy,
) -> (GroupNaming, GroupNamingState) {
    let seed = ExtendSeed {
        old,
        appended,
        column_map,
    };
    let (naming, state) = name_group_impl(relation, ctx, policy, true, Some(&seed));
    (naming, state.expect("stateful run captures state"))
}

fn name_group_impl(
    relation: &GroupRelation,
    ctx: &NamingCtx<'_>,
    policy: &NamingPolicy,
    capture: bool,
    seed: Option<&ExtendSeed<'_>>,
) -> (GroupNaming, Option<GroupNamingState>) {
    if relation.tuples.is_empty() {
        // Nothing is labeled anywhere: the group keeps null labels.
        return (
            GroupNaming {
                alternatives: vec![GroupSolution {
                    labels: vec![None; relation.width()],
                    used_tuples: BTreeSet::new(),
                    partition_tuples: Vec::new(),
                    expressiveness: 0,
                    frequency: 0,
                    is_candidate: false,
                    conflict_repaired: None,
                }],
                level: None,
                consistent: false,
            },
            capture.then(GroupNamingState::default),
        );
    }
    let n = relation.tuples.len();
    // Components at a level: seeded extension when the previous run
    // partitioned at this level (O(n) new-tuple edges), full O(n²)
    // closure otherwise.
    let comps_for = |level: ConsistencyLevel| -> Vec<usize> {
        if let Some(seed) = seed {
            if let Some((_, old)) = seed.old.levels.iter().find(|(l, _)| *l == level) {
                if seed.appended && old.len() + 1 == n {
                    return extend_components(relation, level, ctx, old);
                }
                if !seed.appended && old.len() == n {
                    // No appended tuple: the component structure is
                    // untouched by column padding.
                    return old.clone();
                }
            }
        }
        components(relation, level, ctx)
    };
    let mut visited: Vec<(ConsistencyLevel, Vec<usize>)> = Vec::new();
    for level in policy.levels() {
        let comps = comps_for(level);
        let result = result_from_components(relation, level, &comps);
        visited.push((level, comps));
        if !result.has_full_cover() {
            continue;
        }
        let mut alternatives: Vec<GroupSolution> = Vec::new();
        // Dedup on interned label symbols: equality matches exact-string
        // dedup, but each key is a handful of u32s instead of cloned
        // Strings.
        let mut seen: BTreeSet<Vec<Option<qi_runtime::Symbol>>> = BTreeSet::new();
        for &pi in &result.full {
            let partition = &result.partitions[pi];
            for solution in partition_solutions(relation, partition, level, ctx) {
                let key: Vec<Option<qi_runtime::Symbol>> = solution
                    .labels
                    .iter()
                    .map(|l| l.as_deref().map(|s| ctx.sym(s)))
                    .collect();
                if seen.insert(key) {
                    alternatives.push(to_group_solution(solution, partition.tuples.clone()));
                }
            }
        }
        if alternatives.is_empty() {
            // A covering partition whose Combine* closure still cannot
            // produce a complete tuple (possible when the connecting
            // tuples disagree) — fall through to the next level.
            continue;
        }
        rank(&mut alternatives, policy.selection);
        if policy.repair_conflicts {
            for alternative in &mut alternatives {
                alternative.conflict_repaired =
                    repair_conflicts(&mut alternative.labels, relation, ctx);
            }
        }
        return (
            GroupNaming {
                alternatives,
                level: Some(level),
                consistent: true,
            },
            capture.then_some(GroupNamingState {
                levels: visited,
                partial: None,
            }),
        );
    }
    // Partially consistent solution (§4.2.2).
    let max_level = *policy.levels().last().unwrap_or(&ConsistencyLevel::String);
    // The ladder normally ends at max_level, so its partitioning is
    // already in hand; recompute only under a non-standard ladder.
    let result = match visited.iter().find(|(l, _)| *l == max_level) {
        Some((_, comps)) => result_from_components(relation, max_level, comps),
        None => {
            let comps = comps_for(max_level);
            let result = result_from_components(relation, max_level, &comps);
            visited.push((max_level, comps));
            result
        }
    };
    // Cached per-partition solutions from the previous run, keyed by
    // member tuple set. A current partition with the same members as an
    // old one was untouched by the append (the appended tuple has index
    // n-1, beyond any old member), so its solutions replay via remap.
    let reusable: Option<HashMap<&[usize], &PartitionSolutions>> = seed.and_then(|s| {
        s.old
            .partial
            .as_ref()
            .map(|ps| ps.iter().map(|p| (p.tuples.as_slice(), p)).collect())
    });
    let mut captured: Vec<PartitionSolutions> = Vec::new();
    let mut per_partition: Vec<GroupSolution> = Vec::new();
    for partition in &result.partitions {
        let raw: Arc<Vec<TupleSolution>> = match reusable
            .as_ref()
            .and_then(|m| m.get(partition.tuples.as_slice()))
        {
            Some(old) => {
                let s = seed.expect("reusable implies seed");
                Arc::new(
                    old.solutions
                        .iter()
                        .map(|sol| remap_solution(sol, relation, s.column_map, s.appended))
                        .collect(),
                )
            }
            None => Arc::new(partition_solutions(relation, partition, max_level, ctx)),
        };
        if capture {
            captured.push(PartitionSolutions {
                tuples: partition.tuples.clone(),
                solutions: Arc::clone(&raw),
            });
        }
        // Only the top-ranked solution of a partition feeds the greedy
        // concatenation — select it directly instead of sorting all.
        if let Some(best) = best_of(&raw, policy.selection) {
            per_partition.push(to_group_solution(
                raw[best].clone(),
                partition.tuples.clone(),
            ));
        }
    }
    // Greedy concatenation: start from the widest partial solution, fill
    // nulls from the next widest, repeat. Non-null counts are computed
    // once, not per comparison.
    let mut keyed: Vec<(usize, GroupSolution)> = per_partition
        .into_iter()
        .map(|s| (s.labels.iter().filter(|l| l.is_some()).count(), s))
        .collect();
    keyed.sort_by(|(na, a), (nb, b)| nb.cmp(na).then(a.labels.cmp(&b.labels)));
    let per_partition: Vec<GroupSolution> = keyed.into_iter().map(|(_, s)| s).collect();
    let mut merged: GroupSolution = match per_partition.first() {
        Some(first) => first.clone(),
        None => GroupSolution {
            labels: vec![None; relation.width()],
            used_tuples: BTreeSet::new(),
            partition_tuples: Vec::new(),
            expressiveness: 0,
            frequency: 0,
            is_candidate: false,
            conflict_repaired: None,
        },
    };
    merged.partition_tuples = Vec::new(); // spans partitions
    for other in per_partition.iter().skip(1) {
        if merged.labels.iter().all(Option::is_some) {
            break;
        }
        let mut added = false;
        for (slot, label) in merged.labels.iter_mut().zip(&other.labels) {
            if slot.is_none() && label.is_some() {
                *slot = label.clone();
                added = true;
            }
        }
        if added {
            merged.used_tuples.extend(other.used_tuples.iter().copied());
        }
    }
    merged.expressiveness = tuple_expressiveness(&merged.labels, ctx);
    merged.frequency = 0;
    merged.is_candidate = false;
    if policy.repair_conflicts {
        merged.conflict_repaired = repair_conflicts(&mut merged.labels, relation, ctx);
    }
    (
        GroupNaming {
            alternatives: vec![merged],
            level: None,
            consistent: false,
        },
        capture.then_some(GroupNamingState {
            levels: visited,
            partial: Some(captured),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lexicon::Lexicon;
    use qi_mapping::ClusterId;

    fn cids(n: u32) -> Vec<ClusterId> {
        (0..n).map(ClusterId).collect()
    }

    fn labels(solution: &GroupSolution) -> Vec<&str> {
        solution
            .labels
            .iter()
            .map(|l| l.as_deref().unwrap_or("∅"))
            .collect()
    }

    /// Table 2 end-to-end: the group resolves at the string level to
    /// (Seniors, Adults, Children, Infants).
    #[test]
    fn table2_consistent_solution() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(4),
            &[
                vec![None, Some("Adults"), Some("Children"), None],
                vec![None, Some("Adult"), Some("Child"), Some("Infant")],
                vec![None, Some("Adult"), Some("Child"), None],
                vec![Some("Seniors"), Some("Adults"), Some("Children"), None],
                vec![None, Some("Adults"), Some("Children"), Some("Infants")],
                vec![Some("Seniors"), Some("Adults"), Some("Children"), None],
            ],
        );
        let naming = name_group(&relation, &ctx, &NamingPolicy::default());
        assert!(naming.consistent);
        assert_eq!(naming.level, Some(ConsistencyLevel::String));
        assert_eq!(
            labels(naming.best().unwrap()),
            vec!["Seniors", "Adults", "Children", "Infants"]
        );
    }

    /// Table 3 end-to-end: partially consistent [State, City, Zip Code,
    /// Distance].
    #[test]
    fn table3_partially_consistent() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(4),
            &[
                vec![Some("State"), Some("City"), None, None],
                vec![None, None, Some("Zip Code"), Some("Distance")],
                vec![Some("State"), Some("City"), None, None],
                vec![None, None, Some("Your Zip"), Some("Within")],
            ],
        );
        let naming = name_group(&relation, &ctx, &NamingPolicy::default());
        assert!(!naming.consistent);
        assert_eq!(naming.level, None);
        let best = naming.best().unwrap();
        assert_eq!(best.labels[0].as_deref(), Some("State"));
        assert_eq!(best.labels[1].as_deref(), Some("City"));
        assert!(best.labels[2].is_some());
        assert!(best.labels[3].is_some());
    }

    /// Table 4 end-to-end: resolves at the equality level; the
    /// most-descriptive ranking prefers Max. Number of Stops over
    /// Number of Connections (§4.2.1).
    #[test]
    fn table4_equality_and_expressiveness() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(3),
            &[
                vec![Some("NonStop"), None, Some("Choose an Airline")],
                vec![
                    Some("Number of Connections"),
                    None,
                    Some("Airline Preference"),
                ],
                vec![None, Some("Class of Ticket"), Some("Preferred Airline")],
                vec![
                    Some("Max. Number of Stops"),
                    None,
                    Some("Airline Preference"),
                ],
                vec![None, Some("Class"), Some("Airline")],
            ],
        );
        let naming = name_group(&relation, &ctx, &NamingPolicy::default());
        assert!(naming.consistent);
        assert_eq!(naming.level, Some(ConsistencyLevel::Equality));
        let best = naming.best().unwrap();
        assert_eq!(best.labels[0].as_deref(), Some("Max. Number of Stops"));
        assert_eq!(best.labels[1].as_deref(), Some("Class of Ticket"));
    }

    #[test]
    fn most_general_baseline_prefers_frequent_short_labels() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(2),
            &[
                vec![Some("Make"), Some("Model")],
                vec![Some("Make"), Some("Model")],
                vec![Some("Vehicle Make"), Some("Vehicle Model")],
            ],
        );
        let descriptive = name_group(&relation, &ctx, &NamingPolicy::default());
        assert_eq!(
            labels(descriptive.best().unwrap()),
            vec!["Vehicle Make", "Vehicle Model"]
        );
        let general = name_group(&relation, &ctx, &NamingPolicy::most_general_baseline());
        assert_eq!(labels(general.best().unwrap()), vec!["Make", "Model"]);
    }

    #[test]
    fn level_ladder_respects_policy_cap() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        // Only connectable at the equality level; neither tuple alone
        // covers all three columns.
        let relation = GroupRelation::from_rows(
            &cids(3),
            &[
                vec![Some("Job Type"), Some("Salary"), None],
                vec![Some("Type of Job"), None, Some("Company")],
            ],
        );
        let capped = NamingPolicy {
            max_level: ConsistencyLevel::String,
            ..NamingPolicy::default()
        };
        let naming = name_group(&relation, &ctx, &capped);
        assert!(!naming.consistent, "string level alone cannot connect");
        let full = name_group(&relation, &ctx, &NamingPolicy::default());
        assert!(full.consistent);
        assert_eq!(full.level, Some(ConsistencyLevel::Equality));
    }

    #[test]
    fn empty_relation_yields_null_solution() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(&cids(3), &[]);
        let naming = name_group(&relation, &ctx, &NamingPolicy::default());
        assert!(!naming.consistent);
        assert_eq!(naming.best().unwrap().labels, vec![None, None, None]);
    }

    #[test]
    fn uncoverable_column_does_not_block_consistency() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        // Column 2 is never labeled (the Figure 11 "No Label" field).
        let relation = GroupRelation::from_rows(
            &cids(3),
            &[
                vec![Some("From"), Some("To"), None],
                vec![Some("From"), Some("To"), None],
            ],
        );
        let naming = name_group(&relation, &ctx, &NamingPolicy::default());
        assert!(naming.consistent);
        let best = naming.best().unwrap();
        assert_eq!(best.labels[2], None);
    }

    /// With the default most-descriptive ranking, the expressiveness
    /// criterion already prefers the conflict-free combination — the
    /// repaired labels emerge from `Combine*` itself.
    #[test]
    fn expressiveness_ranking_avoids_conflicts() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(3),
            &[
                vec![Some("Job Type"), Some("Type of Job"), Some("Company Name")],
                vec![Some("Job Type"), Some("Employment Type"), None],
            ],
        );
        let naming = name_group(&relation, &ctx, &NamingPolicy::default());
        assert!(naming.consistent);
        let best = naming.best().unwrap();
        assert_eq!(best.labels[1].as_deref(), Some("Employment Type"));
        assert_eq!(best.conflict_repaired, None, "no conflict left to repair");
    }

    /// Frequency-first ranking picks the homonym-conflicted candidate;
    /// the §4.2.3 repair then swaps in the disambiguating label.
    #[test]
    fn conflict_repair_is_applied() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(3),
            &[
                vec![Some("Job Type"), Some("Type of Job"), Some("Company Name")],
                vec![Some("Job Type"), Some("Type of Job"), Some("Company Name")],
                vec![
                    Some("Job Type"),
                    Some("Employment Type"),
                    Some("Company Name"),
                ],
            ],
        );
        let policy = NamingPolicy {
            selection: LabelSelection::MostGeneral,
            ..NamingPolicy::default()
        };
        let naming = name_group(&relation, &ctx, &policy);
        assert!(naming.consistent);
        let best = naming.best().unwrap();
        assert_eq!(best.conflict_repaired, Some(true));
        assert_eq!(best.labels[1].as_deref(), Some("Employment Type"));
    }
}
