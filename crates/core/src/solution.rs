//! Naming the fields of a group (§4.1–§4.3).
//!
//! `name_group` walks the relaxation ladder of Definition 2: at each
//! consistency level it partitions the group relation (§4.1.1); as soon as
//! some partition covers every (coverable) cluster it extracts all
//! tuple-solutions with `Combine*`, ranks them (§4.2.1: expressiveness,
//! then frequency — or the most-general baseline ordering), repairs
//! homonym conflicts (§4.2.3) and reports a *consistent* naming. If no
//! level produces a covering partition, the greedy concatenation of
//! §4.2.2 builds a *partially consistent* naming instead.

use crate::combine::{enumerate_solutions, greedy_solutions, tuple_expressiveness, TupleSolution};
use crate::conflicts::repair_conflicts;
use crate::consistency::ConsistencyLevel;
use crate::ctx::NamingCtx;
use crate::partition::partition_tuples;
use crate::partition::TuplePartition;
use crate::policy::{LabelSelection, NamingPolicy};
use qi_mapping::GroupRelation;
use std::collections::BTreeSet;

/// One ranked naming alternative for a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSolution {
    /// Labels per cluster column (`None` = no source ever labels it).
    pub labels: Vec<Option<String>>,
    /// Relation tuples whose components were used.
    pub used_tuples: BTreeSet<usize>,
    /// Tuples of the partition that supplied the solution (empty for a
    /// partially consistent solution assembled across partitions).
    pub partition_tuples: Vec<usize>,
    /// Distinct content words across the labels.
    pub expressiveness: usize,
    /// Verbatim occurrences among the relation's tuples.
    pub frequency: usize,
    /// True if one interface supplied the whole solution (Definition 4).
    pub is_candidate: bool,
    /// Homonym repair outcome (`None` = no conflict found).
    pub conflict_repaired: Option<bool>,
}

/// The naming outcome for one group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupNaming {
    /// Alternatives, best first. Non-empty whenever the relation has at
    /// least one tuple.
    pub alternatives: Vec<GroupSolution>,
    /// Level at which consistency was achieved; `None` for partially
    /// consistent outcomes.
    pub level: Option<ConsistencyLevel>,
    /// True when the labels form a consistent solution (Proposition 1).
    pub consistent: bool,
}

impl GroupNaming {
    /// The best alternative, if any.
    pub fn best(&self) -> Option<&GroupSolution> {
        self.alternatives.first()
    }
}

/// Order solutions per the policy's selection strategy.
fn rank(solutions: &mut [GroupSolution], selection: LabelSelection) {
    match selection {
        LabelSelection::MostDescriptive => solutions.sort_by(|a, b| {
            b.expressiveness
                .cmp(&a.expressiveness)
                .then(b.frequency.cmp(&a.frequency))
                .then(a.labels.cmp(&b.labels))
        }),
        LabelSelection::MostGeneral => solutions.sort_by(|a, b| {
            b.frequency
                .cmp(&a.frequency)
                .then(a.expressiveness.cmp(&b.expressiveness))
                .then(a.labels.cmp(&b.labels))
        }),
    }
}

/// Solutions of one partition: the exhaustive `Combine*` enumeration for
/// normally sized groups, falling back to the linear-time spanning-tree
/// construction (§4.2.1) when the group is too wide for enumeration or
/// the state cap was reached without a complete tuple. Wide, loosely
/// consistent collections of clusters are exactly the root "group" the
/// paper accepts partially consistent solutions for (§4), so a single
/// greedy solution is adequate there.
fn partition_solutions(
    relation: &GroupRelation,
    partition: &TuplePartition,
    level: ConsistencyLevel,
    ctx: &NamingCtx<'_>,
) -> Vec<TupleSolution> {
    const MAX_EXHAUSTIVE_TUPLES: usize = 12;
    const MAX_EXHAUSTIVE_WIDTH: usize = 8;
    const ALWAYS_EXHAUSTIVE_WIDTH: usize = 6;
    if partition.covered.len() <= ALWAYS_EXHAUSTIVE_WIDTH
        || (partition.tuples.len() <= MAX_EXHAUSTIVE_TUPLES
            && partition.covered.len() <= MAX_EXHAUSTIVE_WIDTH)
    {
        let solutions = enumerate_solutions(relation, partition, level, ctx);
        if !solutions.is_empty() {
            return solutions;
        }
    }
    greedy_solutions(relation, partition, level, ctx)
}

fn to_group_solution(solution: TupleSolution, partition_tuples: Vec<usize>) -> GroupSolution {
    GroupSolution {
        labels: solution.labels,
        used_tuples: solution.used_tuples,
        partition_tuples,
        expressiveness: solution.expressiveness,
        frequency: solution.frequency,
        is_candidate: solution.is_candidate,
        conflict_repaired: None,
    }
}

/// Name the fields of one group (§4.1–§4.3).
pub fn name_group(
    relation: &GroupRelation,
    ctx: &NamingCtx<'_>,
    policy: &NamingPolicy,
) -> GroupNaming {
    if relation.tuples.is_empty() {
        // Nothing is labeled anywhere: the group keeps null labels.
        return GroupNaming {
            alternatives: vec![GroupSolution {
                labels: vec![None; relation.width()],
                used_tuples: BTreeSet::new(),
                partition_tuples: Vec::new(),
                expressiveness: 0,
                frequency: 0,
                is_candidate: false,
                conflict_repaired: None,
            }],
            level: None,
            consistent: false,
        };
    }
    for level in policy.levels() {
        let result = partition_tuples(relation, level, ctx);
        if !result.has_full_cover() {
            continue;
        }
        let mut alternatives: Vec<GroupSolution> = Vec::new();
        // Dedup on interned label symbols: equality matches exact-string
        // dedup, but each key is a handful of u32s instead of cloned
        // Strings.
        let mut seen: BTreeSet<Vec<Option<qi_runtime::Symbol>>> = BTreeSet::new();
        for &pi in &result.full {
            let partition = &result.partitions[pi];
            for solution in partition_solutions(relation, partition, level, ctx) {
                let key: Vec<Option<qi_runtime::Symbol>> = solution
                    .labels
                    .iter()
                    .map(|l| l.as_deref().map(|s| ctx.sym(s)))
                    .collect();
                if seen.insert(key) {
                    alternatives.push(to_group_solution(solution, partition.tuples.clone()));
                }
            }
        }
        if alternatives.is_empty() {
            // A covering partition whose Combine* closure still cannot
            // produce a complete tuple (possible when the connecting
            // tuples disagree) — fall through to the next level.
            continue;
        }
        rank(&mut alternatives, policy.selection);
        if policy.repair_conflicts {
            for alternative in &mut alternatives {
                alternative.conflict_repaired =
                    repair_conflicts(&mut alternative.labels, relation, ctx);
            }
        }
        return GroupNaming {
            alternatives,
            level: Some(level),
            consistent: true,
        };
    }
    // Partially consistent solution (§4.2.2).
    let max_level = *policy.levels().last().unwrap_or(&ConsistencyLevel::String);
    let result = partition_tuples(relation, max_level, ctx);
    let mut per_partition: Vec<GroupSolution> = Vec::new();
    for partition in &result.partitions {
        let mut solutions: Vec<GroupSolution> =
            partition_solutions(relation, partition, max_level, ctx)
                .into_iter()
                .map(|s| to_group_solution(s, partition.tuples.clone()))
                .collect();
        if solutions.is_empty() {
            continue;
        }
        rank(&mut solutions, policy.selection);
        per_partition.push(solutions.remove(0));
    }
    // Greedy concatenation: start from the widest partial solution, fill
    // nulls from the next widest, repeat.
    per_partition.sort_by(|a, b| {
        let na = a.labels.iter().filter(|l| l.is_some()).count();
        let nb = b.labels.iter().filter(|l| l.is_some()).count();
        nb.cmp(&na).then(a.labels.cmp(&b.labels))
    });
    let mut merged: GroupSolution = match per_partition.first() {
        Some(first) => first.clone(),
        None => GroupSolution {
            labels: vec![None; relation.width()],
            used_tuples: BTreeSet::new(),
            partition_tuples: Vec::new(),
            expressiveness: 0,
            frequency: 0,
            is_candidate: false,
            conflict_repaired: None,
        },
    };
    merged.partition_tuples = Vec::new(); // spans partitions
    for other in per_partition.iter().skip(1) {
        if merged.labels.iter().all(Option::is_some) {
            break;
        }
        let mut added = false;
        for (slot, label) in merged.labels.iter_mut().zip(&other.labels) {
            if slot.is_none() && label.is_some() {
                *slot = label.clone();
                added = true;
            }
        }
        if added {
            merged.used_tuples.extend(other.used_tuples.iter().copied());
        }
    }
    merged.expressiveness = tuple_expressiveness(&merged.labels, ctx);
    merged.frequency = 0;
    merged.is_candidate = false;
    if policy.repair_conflicts {
        merged.conflict_repaired = repair_conflicts(&mut merged.labels, relation, ctx);
    }
    GroupNaming {
        alternatives: vec![merged],
        level: None,
        consistent: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lexicon::Lexicon;
    use qi_mapping::ClusterId;

    fn cids(n: u32) -> Vec<ClusterId> {
        (0..n).map(ClusterId).collect()
    }

    fn labels(solution: &GroupSolution) -> Vec<&str> {
        solution
            .labels
            .iter()
            .map(|l| l.as_deref().unwrap_or("∅"))
            .collect()
    }

    /// Table 2 end-to-end: the group resolves at the string level to
    /// (Seniors, Adults, Children, Infants).
    #[test]
    fn table2_consistent_solution() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(4),
            &[
                vec![None, Some("Adults"), Some("Children"), None],
                vec![None, Some("Adult"), Some("Child"), Some("Infant")],
                vec![None, Some("Adult"), Some("Child"), None],
                vec![Some("Seniors"), Some("Adults"), Some("Children"), None],
                vec![None, Some("Adults"), Some("Children"), Some("Infants")],
                vec![Some("Seniors"), Some("Adults"), Some("Children"), None],
            ],
        );
        let naming = name_group(&relation, &ctx, &NamingPolicy::default());
        assert!(naming.consistent);
        assert_eq!(naming.level, Some(ConsistencyLevel::String));
        assert_eq!(
            labels(naming.best().unwrap()),
            vec!["Seniors", "Adults", "Children", "Infants"]
        );
    }

    /// Table 3 end-to-end: partially consistent [State, City, Zip Code,
    /// Distance].
    #[test]
    fn table3_partially_consistent() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(4),
            &[
                vec![Some("State"), Some("City"), None, None],
                vec![None, None, Some("Zip Code"), Some("Distance")],
                vec![Some("State"), Some("City"), None, None],
                vec![None, None, Some("Your Zip"), Some("Within")],
            ],
        );
        let naming = name_group(&relation, &ctx, &NamingPolicy::default());
        assert!(!naming.consistent);
        assert_eq!(naming.level, None);
        let best = naming.best().unwrap();
        assert_eq!(best.labels[0].as_deref(), Some("State"));
        assert_eq!(best.labels[1].as_deref(), Some("City"));
        assert!(best.labels[2].is_some());
        assert!(best.labels[3].is_some());
    }

    /// Table 4 end-to-end: resolves at the equality level; the
    /// most-descriptive ranking prefers Max. Number of Stops over
    /// Number of Connections (§4.2.1).
    #[test]
    fn table4_equality_and_expressiveness() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(3),
            &[
                vec![Some("NonStop"), None, Some("Choose an Airline")],
                vec![
                    Some("Number of Connections"),
                    None,
                    Some("Airline Preference"),
                ],
                vec![None, Some("Class of Ticket"), Some("Preferred Airline")],
                vec![
                    Some("Max. Number of Stops"),
                    None,
                    Some("Airline Preference"),
                ],
                vec![None, Some("Class"), Some("Airline")],
            ],
        );
        let naming = name_group(&relation, &ctx, &NamingPolicy::default());
        assert!(naming.consistent);
        assert_eq!(naming.level, Some(ConsistencyLevel::Equality));
        let best = naming.best().unwrap();
        assert_eq!(best.labels[0].as_deref(), Some("Max. Number of Stops"));
        assert_eq!(best.labels[1].as_deref(), Some("Class of Ticket"));
    }

    #[test]
    fn most_general_baseline_prefers_frequent_short_labels() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(2),
            &[
                vec![Some("Make"), Some("Model")],
                vec![Some("Make"), Some("Model")],
                vec![Some("Vehicle Make"), Some("Vehicle Model")],
            ],
        );
        let descriptive = name_group(&relation, &ctx, &NamingPolicy::default());
        assert_eq!(
            labels(descriptive.best().unwrap()),
            vec!["Vehicle Make", "Vehicle Model"]
        );
        let general = name_group(&relation, &ctx, &NamingPolicy::most_general_baseline());
        assert_eq!(labels(general.best().unwrap()), vec!["Make", "Model"]);
    }

    #[test]
    fn level_ladder_respects_policy_cap() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        // Only connectable at the equality level; neither tuple alone
        // covers all three columns.
        let relation = GroupRelation::from_rows(
            &cids(3),
            &[
                vec![Some("Job Type"), Some("Salary"), None],
                vec![Some("Type of Job"), None, Some("Company")],
            ],
        );
        let capped = NamingPolicy {
            max_level: ConsistencyLevel::String,
            ..NamingPolicy::default()
        };
        let naming = name_group(&relation, &ctx, &capped);
        assert!(!naming.consistent, "string level alone cannot connect");
        let full = name_group(&relation, &ctx, &NamingPolicy::default());
        assert!(full.consistent);
        assert_eq!(full.level, Some(ConsistencyLevel::Equality));
    }

    #[test]
    fn empty_relation_yields_null_solution() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(&cids(3), &[]);
        let naming = name_group(&relation, &ctx, &NamingPolicy::default());
        assert!(!naming.consistent);
        assert_eq!(naming.best().unwrap().labels, vec![None, None, None]);
    }

    #[test]
    fn uncoverable_column_does_not_block_consistency() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        // Column 2 is never labeled (the Figure 11 "No Label" field).
        let relation = GroupRelation::from_rows(
            &cids(3),
            &[
                vec![Some("From"), Some("To"), None],
                vec![Some("From"), Some("To"), None],
            ],
        );
        let naming = name_group(&relation, &ctx, &NamingPolicy::default());
        assert!(naming.consistent);
        let best = naming.best().unwrap();
        assert_eq!(best.labels[2], None);
    }

    /// With the default most-descriptive ranking, the expressiveness
    /// criterion already prefers the conflict-free combination — the
    /// repaired labels emerge from `Combine*` itself.
    #[test]
    fn expressiveness_ranking_avoids_conflicts() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(3),
            &[
                vec![Some("Job Type"), Some("Type of Job"), Some("Company Name")],
                vec![Some("Job Type"), Some("Employment Type"), None],
            ],
        );
        let naming = name_group(&relation, &ctx, &NamingPolicy::default());
        assert!(naming.consistent);
        let best = naming.best().unwrap();
        assert_eq!(best.labels[1].as_deref(), Some("Employment Type"));
        assert_eq!(best.conflict_repaired, None, "no conflict left to repair");
    }

    /// Frequency-first ranking picks the homonym-conflicted candidate;
    /// the §4.2.3 repair then swaps in the disambiguating label.
    #[test]
    fn conflict_repair_is_applied() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(3),
            &[
                vec![Some("Job Type"), Some("Type of Job"), Some("Company Name")],
                vec![Some("Job Type"), Some("Type of Job"), Some("Company Name")],
                vec![
                    Some("Job Type"),
                    Some("Employment Type"),
                    Some("Company Name"),
                ],
            ],
        );
        let policy = NamingPolicy {
            selection: LabelSelection::MostGeneral,
            ..NamingPolicy::default()
        };
        let naming = name_group(&relation, &ctx, &policy);
        assert!(naming.consistent);
        let best = naming.best().unwrap();
        assert_eq!(best.conflict_repaired, Some(true));
        assert_eq!(best.labels[1].as_deref(), Some("Employment Type"));
    }
}
