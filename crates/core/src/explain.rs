//! Human-readable provenance for every label decision.
//!
//! A practical integrator needs more than a labeled tree — it needs to
//! answer "*why* is this field called `Preferred Airline`?" This module
//! renders a per-node narrative from the artifacts the labeler already
//! records: group outcomes (level, conflict repair), isolated elections,
//! internal-node candidate sets with their LI rules, and the Definition 6
//! / blocked-by-ancestor verdicts.

use crate::labeler::LabeledInterface;
use qi_schema::NodeId;

/// Render the full explanation as indented text.
pub fn render(labeled: &LabeledInterface) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Naming explanation — {}\n",
        match labeled.report.class {
            Some(class) => format!("interface is {class}"),
            None => "unclassified".to_string(),
        }
    ));
    // Group-by-group narrative.
    for group in &labeled.report.groups {
        out.push_str(&format!("\ngroup [{}]\n", group.description));
        match group.level {
            Some(level) => out.push_str(&format!(
                "  consistent naming found at the {level} level of Definition 2\n"
            )),
            None if group.consistent => {}
            None => out.push_str(
                "  no covering partition at any level: partially consistent solution (§4.2.2)\n",
            ),
        }
        out.push_str(&format!(
            "  labels: {}\n",
            group
                .labels
                .iter()
                .map(|l| l.as_deref().unwrap_or("∅"))
                .collect::<Vec<_>>()
                .join(" | ")
        ));
        match group.conflict_repaired {
            Some(true) => out.push_str("  homonym conflict detected and repaired (§4.2.3)\n"),
            Some(false) => out.push_str("  homonym conflict detected but NOT repairable\n"),
            None => {}
        }
        if group.labels.iter().any(Option::is_none) {
            out.push_str("  an unlabeled member has no label on any source interface\n");
        }
    }
    // Internal-node narrative, in document order.
    out.push_str("\ninternal nodes:\n");
    for id in labeled.tree.preorder() {
        if id == NodeId::ROOT || labeled.tree.node(id).is_leaf() {
            continue;
        }
        explain_internal(labeled, id, &mut out);
    }
    out
}

fn explain_internal(labeled: &LabeledInterface, id: NodeId, out: &mut String) {
    let node = labeled.tree.node(id);
    let depth = labeled.tree.node_depth(id).saturating_sub(1);
    let indent = "  ".repeat(depth);
    let Some(decision) = labeled.internal_decisions.get(&id) else {
        return;
    };
    match &decision.chosen {
        Some(label) => {
            out.push_str(&format!("{indent}+ {label:?}"));
            if decision.def6_consistent {
                out.push_str(" — consistent with all descendant group solutions (Def. 6)");
            } else {
                out.push_str(" — weakly consistent: satisfies generality (Def. 5) only");
            }
        }
        None if decision.candidate_count == 0 => {
            out.push_str(&format!(
                "{indent}+ (unlabeled) — no source interface labels any node covering exactly \
                 this field set"
            ));
        }
        None => {
            out.push_str(&format!(
                "{indent}+ (unlabeled) — all {} candidate label(s) already claimed by an \
                 ancestor (the §7 \"promoted to its ancestors\" case)",
                decision.candidate_count
            ));
        }
    }
    out.push('\n');
    if let Some(candidates) = labeled.internal_candidates.get(&id) {
        for candidate in candidates {
            out.push_str(&format!(
                "{indent}    candidate {:?} via {} (from {} source node(s))\n",
                candidate.label, candidate.rule, candidate.frequency
            ));
        }
    }
    let _ = node;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Labeler, NamingPolicy};
    use qi_lexicon::Lexicon;

    fn airline_explanation() -> String {
        let prepared = qi_datasets_shim();
        let lexicon = Lexicon::builtin();
        let labeler = Labeler::new(&lexicon, NamingPolicy::default());
        let labeled = labeler.label(&prepared.0, &prepared.1, &prepared.2);
        render(&labeled)
    }

    /// A small two-interface fixture (the core crate cannot depend on the
    /// corpus crate).
    fn qi_datasets_shim() -> (
        Vec<qi_schema::SchemaTree>,
        qi_mapping::Mapping,
        qi_mapping::Integrated,
    ) {
        use qi_mapping::{expand_one_to_many, FieldRef, Mapping};
        use qi_schema::spec::{leaf, node};
        use qi_schema::SchemaTree;
        let a = SchemaTree::build(
            "a",
            vec![node("Passengers", vec![leaf("Adults"), leaf("Children")])],
        )
        .unwrap();
        let b = SchemaTree::build(
            "b",
            vec![
                node(
                    "Travelers",
                    vec![leaf("Adults"), leaf("Children"), leaf("Infants")],
                ),
                leaf("Promo Code"),
            ],
        )
        .unwrap();
        let al = a.descendant_leaves(qi_schema::NodeId::ROOT);
        let bl = b.descendant_leaves(qi_schema::NodeId::ROOT);
        let mut mapping = Mapping::from_clusters(vec![
            (
                "adult".to_string(),
                vec![FieldRef::new(0, al[0]), FieldRef::new(1, bl[0])],
            ),
            (
                "child".to_string(),
                vec![FieldRef::new(0, al[1]), FieldRef::new(1, bl[1])],
            ),
            ("infant".to_string(), vec![FieldRef::new(1, bl[2])]),
            ("promo".to_string(), vec![FieldRef::new(1, bl[3])]),
        ]);
        let mut schemas = vec![a, b];
        expand_one_to_many(&mut schemas, &mut mapping);
        let integrated = qi_merge::merge(&schemas, &mapping);
        (schemas, mapping, integrated)
    }

    #[test]
    fn explanation_mentions_groups_and_levels() {
        let text = airline_explanation();
        assert!(text.contains("group ["), "{text}");
        assert!(text.contains("string level"), "{text}");
        assert!(text.contains("labels:"), "{text}");
    }

    #[test]
    fn explanation_covers_internal_nodes() {
        let text = airline_explanation();
        assert!(text.contains("internal nodes:"), "{text}");
        assert!(text.contains("candidate"), "{text}");
        assert!(text.contains("LI2"), "{text}");
    }

    #[test]
    fn explanation_reports_classification() {
        let text = airline_explanation();
        assert!(text.contains("interface is"), "{text}");
    }
}
