//! Graph-closure partitioning of group-relation tuples (§4.1.1).
//!
//! Each tuple is a vertex; an edge joins two tuples consistent at the
//! current level (Definition 2). Connected components are the *maximal
//! partitions*: within one partition a consistent solution can be
//! assembled by `Combine*`; the union of the members' non-null columns is
//! the set of clusters the partition can name (Proposition 1).

use crate::consistency::{tuples_consistent, ConsistencyLevel};
use crate::ctx::NamingCtx;
use qi_mapping::GroupRelation;
use std::collections::BTreeSet;

/// One maximal partition of consistent tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuplePartition {
    /// Indices into `GroupRelation::tuples`, ascending.
    pub tuples: Vec<usize>,
    /// Cluster columns covered by at least one member tuple.
    pub covered: BTreeSet<usize>,
}

impl TuplePartition {
    /// Does this partition cover every column of a width-`n` relation?
    pub fn covers_all(&self, n: usize) -> bool {
        self.covered.len() == n
    }
}

/// The partitions of a group relation at one consistency level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionResult {
    /// Level the graph was built at.
    pub level: ConsistencyLevel,
    /// All partitions (connected components), ordered by smallest member
    /// tuple index.
    pub partitions: Vec<TuplePartition>,
    /// Columns labeled by at least one tuple. Columns outside this set are
    /// unlabeled in every source and can never receive a label (the
    /// Real Estate "No Label" field of Figure 11) — they are excluded from
    /// the full-cover requirement.
    pub coverable: BTreeSet<usize>,
    /// Indices (into `partitions`) of partitions covering all coverable
    /// clusters — the partitions that *supply a consistent solution*
    /// (Prop. 1).
    pub full: Vec<usize>,
}

impl PartitionResult {
    /// True if some partition covers every cluster of the group.
    pub fn has_full_cover(&self) -> bool {
        !self.full.is_empty()
    }
}

/// Partition the tuples of `relation` at `level`.
pub fn partition_tuples(
    relation: &GroupRelation,
    level: ConsistencyLevel,
    ctx: &NamingCtx<'_>,
) -> PartitionResult {
    let comp = components(relation, level, ctx);
    result_from_components(relation, level, &comp)
}

fn find(parent: &mut Vec<usize>, x: usize) -> usize {
    if parent[x] != x {
        let root = find(parent, parent[x]);
        parent[x] = root;
    }
    parent[x]
}

/// Canonicalize a union-find forest: entry `i` becomes the smallest
/// tuple index of `i`'s component.
fn canonicalize(parent: &mut Vec<usize>) -> Vec<usize> {
    let n = parent.len();
    let mut smallest: Vec<usize> = (0..n).collect();
    let mut comp: Vec<usize> = Vec::with_capacity(n);
    for i in 0..n {
        let root = find(parent, i);
        // Ascending scan: the first member of a component to reach its
        // root *is* the smallest member.
        if smallest[root] > i {
            smallest[root] = i;
        }
        comp.push(smallest[root].min(root));
    }
    // A root larger than its smallest member records itself on first
    // touch; fix those entries up with a second pass.
    for entry in comp.iter_mut() {
        if smallest[*entry] < *entry {
            *entry = smallest[*entry];
        }
    }
    comp
}

/// The canonical component ids of a partitioning: `comp[i]` is the
/// smallest tuple index in tuple `i`'s connected component. This is the
/// carryable form of a partitioning — [`extend_components`] grows it by
/// one appended tuple without redoing the O(n²) pairwise closure.
pub fn components(
    relation: &GroupRelation,
    level: ConsistencyLevel,
    ctx: &NamingCtx<'_>,
) -> Vec<usize> {
    let n = relation.tuples.len();
    let mut parent: Vec<usize> = (0..n).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if tuples_consistent(&relation.tuples[i], &relation.tuples[j], level, ctx) {
                let ri = find(&mut parent, i);
                let rj = find(&mut parent, j);
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    canonicalize(&mut parent)
}

/// Extend cached [`components`] of a relation's first `n-1` tuples to
/// cover an appended last tuple, in O(n) consistency checks instead of
/// O(n²): edges among the old tuples are untouched by an append (their
/// labels on shared columns are what they always were), so only the new
/// tuple's edges need computing.
pub fn extend_components(
    relation: &GroupRelation,
    level: ConsistencyLevel,
    ctx: &NamingCtx<'_>,
    seed: &[usize],
) -> Vec<usize> {
    let n = relation.tuples.len();
    debug_assert_eq!(
        seed.len() + 1,
        n,
        "seed must cover all but the appended tuple"
    );
    let mut parent: Vec<usize> = (0..n).collect();
    parent[..n - 1].copy_from_slice(seed);
    let appended = &relation.tuples[n - 1];
    for t in 0..n - 1 {
        if tuples_consistent(appended, &relation.tuples[t], level, ctx) {
            let rt = find(&mut parent, t);
            let rn = find(&mut parent, n - 1);
            if rt != rn {
                parent[rt] = rn;
            }
        }
    }
    canonicalize(&mut parent)
}

/// Assemble the full [`PartitionResult`] from canonical component ids.
pub fn result_from_components(
    relation: &GroupRelation,
    level: ConsistencyLevel,
    comp: &[usize],
) -> PartitionResult {
    let mut groups: Vec<(usize, TuplePartition)> = Vec::new();
    for (i, &root) in comp.iter().enumerate() {
        let covered: Vec<usize> = relation.tuples[i].covered_columns();
        match groups.iter_mut().find(|(r, _)| *r == root) {
            Some((_, p)) => {
                p.tuples.push(i);
                p.covered.extend(covered);
            }
            None => {
                groups.push((
                    root,
                    TuplePartition {
                        tuples: vec![i],
                        covered: covered.into_iter().collect(),
                    },
                ));
            }
        }
    }
    let partitions: Vec<TuplePartition> = groups.into_iter().map(|(_, p)| p).collect();
    let coverable: BTreeSet<usize> = partitions
        .iter()
        .flat_map(|p| p.covered.iter().copied())
        .collect();
    let full = partitions
        .iter()
        .enumerate()
        .filter(|(_, p)| p.covered == coverable && !coverable.is_empty())
        .map(|(i, _)| i)
        .collect();
    PartitionResult {
        level,
        partitions,
        coverable,
        full,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lexicon::Lexicon;
    use qi_mapping::ClusterId;

    fn cids(n: u32) -> Vec<ClusterId> {
        (0..n).map(ClusterId).collect()
    }

    /// Table 2 / Figure 4 of the paper: at the string level the airline
    /// passenger group partitions into {aa, british, economytravel,
    /// vacations} and {airfareplanet, airtravel}; only the former covers
    /// all four clusters.
    #[test]
    fn figure4_partitions() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(4),
            &[
                // aa
                vec![None, Some("Adults"), Some("Children"), None],
                // airfareplanet
                vec![None, Some("Adult"), Some("Child"), Some("Infant")],
                // airtravel
                vec![None, Some("Adult"), Some("Child"), None],
                // british
                vec![Some("Seniors"), Some("Adults"), Some("Children"), None],
                // economytravel
                vec![None, Some("Adults"), Some("Children"), Some("Infants")],
                // vacations
                vec![Some("Seniors"), Some("Adults"), Some("Children"), None],
            ],
        );
        let result = partition_tuples(&relation, ConsistencyLevel::String, &ctx);
        assert_eq!(result.partitions.len(), 2);
        let sizes: BTreeSet<usize> = result.partitions.iter().map(|p| p.tuples.len()).collect();
        assert_eq!(sizes, BTreeSet::from([2, 4]));
        // Exactly one partition covers all clusters (Prop. 1 ⇒ a
        // consistent solution exists).
        assert_eq!(result.full.len(), 1);
        let full = &result.partitions[result.full[0]];
        assert_eq!(full.tuples.len(), 4);
        assert!(full.covers_all(4));
        assert!(result.has_full_cover());
    }

    /// Table 3: two disconnected sub-relations, neither covering all four
    /// clusters — no consistent solution, at any level.
    #[test]
    fn table3_no_full_cover() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(4),
            &[
                vec![Some("State"), Some("City"), None, None],
                vec![None, None, Some("Zip Code"), Some("Distance")],
                vec![Some("State"), Some("City"), None, None],
                vec![None, None, Some("Your Zip"), Some("Within")],
            ],
        );
        for level in ConsistencyLevel::LADDER {
            let result = partition_tuples(&relation, level, &ctx);
            assert!(!result.has_full_cover(), "level {level}");
            assert!(result.partitions.len() >= 2);
        }
    }

    /// Table 4: string level leaves singletons; the equality level glues
    /// the middle tuples into a full-cover partition.
    #[test]
    fn table4_equality_rescues() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(
            &cids(3),
            &[
                // aa
                vec![Some("NonStop"), None, Some("Choose an Airline")],
                // airfare
                vec![
                    Some("Number of Connections"),
                    None,
                    Some("Airline Preference"),
                ],
                // alldest
                vec![None, Some("Class of Ticket"), Some("Preferred Airline")],
                // cheap
                vec![
                    Some("Max. Number of Stops"),
                    None,
                    Some("Airline Preference"),
                ],
                // msn
                vec![None, Some("Class"), Some("Airline")],
            ],
        );
        let string_level = partition_tuples(&relation, ConsistencyLevel::String, &ctx);
        assert!(!string_level.has_full_cover());
        let equality = partition_tuples(&relation, ConsistencyLevel::Equality, &ctx);
        assert!(equality.has_full_cover());
        let full = &equality.partitions[equality.full[0]];
        // airfare, alldest, cheap link up (Airline Preference ≍ Preferred
        // Airline, shared Airline Preference string).
        assert!(full.tuples.contains(&1));
        assert!(full.tuples.contains(&2));
        assert!(full.tuples.contains(&3));
    }

    #[test]
    fn empty_relation() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let relation = GroupRelation::from_rows(&cids(2), &[]);
        let result = partition_tuples(&relation, ConsistencyLevel::String, &ctx);
        assert!(result.partitions.is_empty());
        assert!(!result.has_full_cover());
    }
}
