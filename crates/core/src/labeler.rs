//! The three-phase naming algorithm (§6, Definition 8).
//!
//! * **Phase 1** (bottom-up): build the group relations and name every
//!   group (§4), elect labels for isolated clusters (§4.4), and derive the
//!   candidate-label sets of all internal nodes (§5, LI1–LI5).
//! * **Phase 2**: determine the consistency level the schema tree admits —
//!   consistent, weakly consistent or inconsistent (Definition 8,
//!   Propositions 1–2).
//! * **Phase 3** (top-down): assign each node a label from its candidate
//!   set complying with the established level: internal-node labels must
//!   differ from their ancestors' labels, be at least as general as their
//!   descendants' (Definition 5 via [`internal::at_least_as_general`]),
//!   and — for full consistency — be consistent with the solutions chosen
//!   for their descendant groups (Definitions 6–7).

use crate::ctx::NamingCtx;
use crate::internal::{self, CandidateLabel, ClusterInfo, PotentialLabel};
use crate::isolated::{label_isolated_cluster, LabelOccurrence};
use crate::policy::NamingPolicy;
use crate::relabel::{
    CachedGroup, CachedInternal, CachedIsolated, RelabelCache, RelabelDelta, StoredCandidate,
};
use crate::report::{ConsistencyClass, GroupOutcome, LiUsage, NamingReport};
use crate::solution::{
    extend_group_naming, name_group, name_group_stateful, GroupNaming, GroupNamingState,
};
use qi_lexicon::Lexicon;
use qi_mapping::{ClusterId, GroupRelation, Integrated, Mapping};
use qi_schema::{NodeId, SchemaTree};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The naming algorithm, configured once per domain run.
pub struct Labeler<'a> {
    lexicon: &'a Lexicon,
    policy: NamingPolicy,
    /// Worker count for phase-1 group naming: `1` = sequential (the
    /// default), `0` = one worker per hardware thread (clamped), `n` = at
    /// most `n` workers. Parallelism never changes the output — groups
    /// are named independently and collected in order.
    threads: usize,
    /// When false, the naming context's memo-caches are disabled
    /// (benchmark baseline mode).
    cache_enabled: bool,
    /// Metrics registry for per-phase timings, conflict counters and
    /// naming-cache stats. The default disabled handle costs one pointer
    /// check per phase boundary — nothing inside the phase loops.
    telemetry: qi_runtime::Telemetry,
}

/// The labeled integrated interface plus the full naming report.
#[derive(Debug, Clone)]
pub struct LabeledInterface {
    /// The integrated schema tree with labels assigned.
    pub tree: SchemaTree,
    /// Leaf → cluster correspondence (copied from the input).
    pub leaf_cluster: BTreeMap<NodeId, ClusterId>,
    /// What happened: consistency class, group outcomes, LI usage.
    pub report: NamingReport,
    /// Chosen candidate labels per internal node (diagnostics).
    pub internal_candidates: BTreeMap<NodeId, Vec<CandidateLabel>>,
    /// Why each internal node got (or failed to get) its label.
    pub internal_decisions: BTreeMap<NodeId, InternalDecision>,
}

/// How the label assignment went for one internal node (phase 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternalDecision {
    /// The assigned label, if any.
    pub chosen: Option<String>,
    /// Number of candidate labels the node had.
    pub candidate_count: usize,
    /// Definition 6 held for the chosen label against every descendant
    /// group's chosen solution (full vertical consistency).
    pub def6_consistent: bool,
    /// The node had candidates, but all of them duplicate an ancestor's
    /// label — the "candidate promoted to its ancestors" failure (§7).
    pub blocked_by_ancestor: bool,
}

/// Everything phase 1 computed for one group of the integrated interface.
struct GroupWork {
    /// The group's clusters, in column order.
    clusters: Vec<ClusterId>,
    /// The integrated leaves, parallel to `clusters`.
    leaves: Vec<NodeId>,
    /// The internal node the group hangs off (`None` for the root group).
    parent: Option<NodeId>,
    relation: GroupRelation,
    naming: GroupNaming,
    /// Reusable naming internals (present on capturing runs only).
    state: Option<GroupNamingState>,
}

/// How phase 1a obtained one group's naming.
#[derive(Clone, Copy, PartialEq, Eq)]
enum GroupPath {
    /// Full relation build + naming from scratch.
    Computed,
    /// Cache hit: the delta did not touch the group.
    Replayed,
    /// Cached run extended by the appended interface's tuple.
    Extended,
}

impl<'a> Labeler<'a> {
    /// Create a labeler over a lexicon with the given policy.
    pub fn new(lexicon: &'a Lexicon, policy: NamingPolicy) -> Self {
        Labeler {
            lexicon,
            policy,
            threads: 1,
            cache_enabled: true,
            telemetry: qi_runtime::Telemetry::off(),
        }
    }

    /// Fan phase-1 group naming out over up to `threads` workers
    /// (`0` = hardware parallelism). Output is identical to a sequential
    /// run.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enable or disable the naming context's memo-caches for this run.
    pub fn with_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Record per-phase span timings, group/conflict counters and
    /// naming-cache stats into `telemetry` on every [`Labeler::label`]
    /// call. The default is the disabled registry.
    pub fn with_telemetry(mut self, telemetry: qi_runtime::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The active policy.
    pub fn policy(&self) -> &NamingPolicy {
        &self.policy
    }

    /// Run the naming algorithm.
    ///
    /// `schemas` and `mapping` must be in 1:1 form (after
    /// [`qi_mapping::expand_one_to_many`]); `integrated` is the output of
    /// [`qi_merge::merge`] (or any tree whose leaves map to clusters).
    pub fn label(
        &self,
        schemas: &[SchemaTree],
        mapping: &Mapping,
        integrated: &Integrated,
    ) -> LabeledInterface {
        self.run(schemas, mapping, integrated, None, false).0
    }

    /// Run the naming algorithm while capturing reusable phase-1 state,
    /// optionally seeding it from a previous run.
    ///
    /// `reuse` is the cache of the previous run plus the delta the
    /// incremental matcher reported for the appended interface; entries
    /// whose inputs the delta touched are recomputed, everything else is
    /// replayed. With `reuse = None` this is a batch run that merely
    /// records the cache. The labeled output is identical to
    /// [`Labeler::label`] either way — the equivalence tests in
    /// `tests/incremental.rs` compare the two paths byte-for-byte through
    /// the snapshot encoding.
    pub fn label_with(
        &self,
        schemas: &[SchemaTree],
        mapping: &Mapping,
        integrated: &Integrated,
        reuse: Option<(&RelabelCache, &RelabelDelta)>,
    ) -> (LabeledInterface, RelabelCache) {
        let (labeled, cache) = self.run(schemas, mapping, integrated, reuse, true);
        (labeled, cache.expect("capture was requested"))
    }

    fn run(
        &self,
        schemas: &[SchemaTree],
        mapping: &Mapping,
        integrated: &Integrated,
        reuse: Option<(&RelabelCache, &RelabelDelta)>,
        capture: bool,
    ) -> (LabeledInterface, Option<RelabelCache>) {
        let run_span = self.telemetry.timed("label");
        // A delta run inherits the previous run's naming memo: interning,
        // normalization and pairwise relations are pure functions of the
        // lexicon and the label strings, so the carried state is
        // output-neutral and saves re-deriving the whole domain's labels
        // to rename a few groups.
        let ctx = match reuse {
            Some((cache, _)) => NamingCtx::with_memo(self.lexicon, cache.memo()),
            None => NamingCtx::new(self.lexicon),
        };
        ctx.set_cache_enabled(self.cache_enabled);
        let mut report = NamingReport::default();
        let mut tree = integrated.tree.clone();
        let partition = integrated.partition();

        // ---------- Phase 1a: name the groups -------------------------------
        // Groups are independent: each worker builds the relation and names
        // the group against the shared (Sync) context; results come back in
        // input order, so the parallel run is byte-identical to sequential.
        // The children of the root are treated as one special group for
        // which partially consistent solutions are accepted (§4).
        let mut specs: Vec<(Vec<ClusterId>, Vec<NodeId>, Option<NodeId>)> = partition
            .groups
            .iter()
            .map(|g| (g.clusters.clone(), g.leaves.clone(), Some(g.parent)))
            .collect();
        if !partition.root.is_empty() {
            let clusters: Vec<ClusterId> = partition.root.iter().map(|&(_, c)| c).collect();
            let leaves: Vec<NodeId> = partition.root.iter().map(|&(l, _)| l).collect();
            specs.push((clusters, leaves, None));
        }
        // Cached group keys carry the previous run's column order; an
        // appended interface may permute the integrated tree's leaves, so
        // also index the keys by their sorted cluster set for an
        // order-insensitive second-chance lookup.
        let sorted_keys: HashMap<Vec<ClusterId>, &Vec<ClusterId>> = reuse
            .map(|(cache, _)| {
                cache
                    .groups
                    .keys()
                    .map(|k| {
                        let mut sorted = k.clone();
                        sorted.sort_unstable();
                        (sorted, k)
                    })
                    .collect()
            })
            .unwrap_or_default();
        let phase_span = self.telemetry.timed("label.phase1.groups");
        let group_results: Vec<(GroupWork, GroupPath)> =
            qi_runtime::parallel_map(&specs, self.threads, |_, (clusters, leaves, parent)| {
                let work = |relation, naming, state, path| {
                    (
                        GroupWork {
                            clusters: clusters.clone(),
                            leaves: leaves.clone(),
                            parent: *parent,
                            relation,
                            naming,
                            state,
                        },
                        path,
                    )
                };
                if let Some((cache, delta)) = reuse {
                    // A cached group is replayable when its column set is
                    // untouched: no dirty cluster, and no new cluster (new
                    // ids miss the key lookup). The appended schema then
                    // contributes only an all-null tuple, which the
                    // relation builder omits — so relation and naming are
                    // unchanged.
                    if delta.clean(clusters) {
                        if let Some(hit) = cache.groups.get(clusters) {
                            return work(
                                hit.relation.clone(),
                                hit.naming.clone(),
                                capture.then(|| hit.state.clone()),
                                GroupPath::Replayed,
                            );
                        }
                    }
                    // A touched group — dirty members and/or columns born
                    // with the appended interface — extends its cached run:
                    // old tuples are column-remapped (never re-read from
                    // their schemas), the new schema contributes at most
                    // one appended tuple, and the naming is re-derived from
                    // the cached partitioning and partition solutions.
                    let old_key: Vec<ClusterId> = clusters
                        .iter()
                        .copied()
                        .filter(|c| !delta.new_clusters.contains(c))
                        .collect();
                    let hit = cache.groups.get(&old_key).or_else(|| {
                        let mut sorted = old_key.clone();
                        sorted.sort_unstable();
                        sorted_keys.get(&sorted).and_then(|k| cache.groups.get(*k))
                    });
                    if let Some(hit) = hit {
                        if let Some((relation, column_map, appended)) =
                            hit.relation.extend_for_append(
                                clusters,
                                mapping,
                                schemas,
                                delta.new_schema,
                                &delta.new_clusters,
                            )
                        {
                            debug_assert_eq!(
                                relation,
                                GroupRelation::build(clusters, mapping, schemas),
                                "extended relation diverged from a full rebuild"
                            );
                            let (naming, state) = extend_group_naming(
                                &relation,
                                &hit.state,
                                appended,
                                &column_map,
                                &ctx,
                                &self.policy,
                            );
                            debug_assert_eq!(
                                naming,
                                name_group(&relation, &ctx, &self.policy),
                                "extended naming diverged from a full rebuild"
                            );
                            return work(relation, naming, Some(state), GroupPath::Extended);
                        }
                    }
                }
                let relation = GroupRelation::build(clusters, mapping, schemas);
                if capture {
                    let (naming, state) = name_group_stateful(&relation, &ctx, &self.policy);
                    work(relation, naming, Some(state), GroupPath::Computed)
                } else {
                    let naming = name_group(&relation, &ctx, &self.policy);
                    work(relation, naming, None, GroupPath::Computed)
                }
            });
        let groups_reused = group_results
            .iter()
            .filter(|(_, path)| *path == GroupPath::Replayed)
            .count();
        let groups_extended = group_results
            .iter()
            .filter(|(_, path)| *path == GroupPath::Extended)
            .count();
        let groups: Vec<GroupWork> = group_results.into_iter().map(|(g, _)| g).collect();
        drop(phase_span);

        // ---------- Phase 1b: isolated clusters ------------------------------
        let phase_span = self.telemetry.timed("label.phase1.isolated");
        let mut isolated_store: HashMap<ClusterId, CachedIsolated> = HashMap::new();
        let mut isolated_reused = 0usize;
        for &(leaf, cluster) in &partition.isolated {
            // An isolated election reads only the cluster's own members,
            // so a clean cluster replays verbatim (LI usage included).
            let cached = reuse.and_then(|(cache, delta)| {
                (!delta.dirty.contains(&cluster))
                    .then(|| cache.isolated.get(&cluster))
                    .flatten()
            });
            let entry = match cached {
                Some(hit) => {
                    isolated_reused += 1;
                    hit.clone()
                }
                None => {
                    let occurrences = isolated_occurrences(schemas, mapping, cluster);
                    let mut usage = LiUsage::default();
                    let chosen =
                        label_isolated_cluster(&occurrences, &ctx, &self.policy, &mut usage);
                    CachedIsolated {
                        chosen,
                        occurrences: occurrences
                            .iter()
                            .map(|o| (o.label.clone(), o.frequency))
                            .collect(),
                        usage,
                    }
                }
            };
            report.li_usage.merge(&entry.usage);
            report.isolated.push(crate::report::IsolatedOutcome {
                leaf,
                chosen: entry.chosen.clone(),
                occurrences: entry.occurrences.clone(),
            });
            tree.set_label(leaf, entry.chosen.clone());
            if capture {
                isolated_store.insert(cluster, entry);
            }
        }
        drop(phase_span);

        // ---------- Phase 1c: candidate labels for internal nodes -----------
        let phase_span = self.telemetry.timed("label.phase1.candidates");
        let potentials = collect_potentials(schemas, mapping);
        let info = collect_cluster_info(schemas, mapping);
        // Bags of the appended schema's potential labels: a cached
        // candidate set over coverage `x` stays valid only if none of
        // these is contained in `x` (contained bags join the candidate
        // classes and the LI5 extension; everything else is filtered on
        // `bag ⊆ x` before it can influence the result).
        let new_bags: Vec<&BTreeSet<ClusterId>> = match reuse {
            Some((_, delta)) => potentials
                .iter()
                .filter(|p| p.schema == delta.new_schema)
                .map(|p| &p.bag)
                .collect(),
            None => Vec::new(),
        };
        let mut internal_store: HashMap<Vec<ClusterId>, CachedInternal> = HashMap::new();
        let mut internal_reused = 0usize;
        let mut internal_candidates: BTreeMap<NodeId, Vec<CandidateLabel>> = BTreeMap::new();
        let mut node_clusters: BTreeMap<NodeId, BTreeSet<ClusterId>> = BTreeMap::new();
        for internal in integrated.tree.internal_nodes() {
            let x: BTreeSet<ClusterId> = integrated
                .tree
                .descendant_leaves(internal.id)
                .into_iter()
                .filter_map(|l| integrated.cluster_of_leaf(l))
                .collect();
            let key: Vec<ClusterId> = x.iter().copied().collect();
            let cached = reuse.and_then(|(cache, delta)| {
                let valid = delta.clean(&key) && new_bags.iter().all(|bag| !bag.is_subset(&x));
                valid.then(|| cache.internal.get(&key)).flatten()
            });
            let candidates = match cached {
                Some(hit) => {
                    internal_reused += 1;
                    report.li_usage.merge(&hit.usage);
                    let candidates: Vec<CandidateLabel> = hit
                        .candidates
                        .iter()
                        .map(|s| s.to_candidate(&ctx))
                        .collect();
                    if capture {
                        internal_store.insert(key, hit.clone());
                    }
                    candidates
                }
                None => {
                    let mut usage = LiUsage::default();
                    let candidates =
                        internal::find_candidates(&x, &potentials, &info, &ctx, &mut usage);
                    report.li_usage.merge(&usage);
                    if capture {
                        internal_store.insert(
                            key,
                            CachedInternal {
                                candidates: candidates
                                    .iter()
                                    .map(StoredCandidate::from_candidate)
                                    .collect(),
                                usage,
                            },
                        );
                    }
                    candidates
                }
            };
            node_clusters.insert(internal.id, x);
            internal_candidates.insert(internal.id, candidates);
        }
        drop(phase_span);

        // ---------- Phase 3a: assign group-field labels ----------------------
        let phase_span = self.telemetry.timed("label.phase3.groups");
        for group in &groups {
            let best = group.naming.best();
            let labels: Vec<Option<String>> = match best {
                Some(solution) => solution.labels.clone(),
                None => vec![None; group.clusters.len()],
            };
            for (leaf, label) in group.leaves.iter().zip(&labels) {
                tree.set_label(*leaf, label.clone());
            }
            // Per column: the distinct source labels the solution chose
            // among, with occurrence counts (provenance candidates).
            let column_options: Vec<Vec<(String, usize)>> = (0..group.clusters.len())
                .map(|column| {
                    let mut options: Vec<(String, usize)> = Vec::new();
                    for tuple in &group.relation.tuples {
                        let Some(label) = &tuple.labels[column] else {
                            continue;
                        };
                        match options.iter_mut().find(|(l, _)| l == label) {
                            Some((_, n)) => *n += 1,
                            None => options.push((label.clone(), 1)),
                        }
                    }
                    options
                })
                .collect();
            report.groups.push(GroupOutcome {
                description: group
                    .clusters
                    .iter()
                    .map(|&c| mapping.cluster(c).concept.clone())
                    .collect::<Vec<_>>()
                    .join(", "),
                level: group.naming.level,
                consistent: group.naming.consistent,
                labels,
                conflict_repaired: best.and_then(|s| s.conflict_repaired),
                leaves: group.leaves.clone(),
                column_options,
            });
        }
        drop(phase_span);

        // ---------- Phase 3b: assign internal-node labels (top-down) --------
        let phase_span = self.telemetry.timed("label.phase3.internal");
        // For Definition 6 checks: which group hangs under which internal
        // node (descendant groups = groups whose parent is a descendant-or-
        // self of the node).
        // Ancestor labels are tracked as interned symbols: the Prop. 2
        // duplication check and the Definition 5 parent lookup become
        // integer comparisons / cache probes instead of String compares.
        let mut assigned: BTreeMap<NodeId, qi_runtime::Symbol> = BTreeMap::new();
        let mut decisions: BTreeMap<NodeId, InternalDecision> = BTreeMap::new();
        let mut weakly = 0usize;
        for id in integrated.tree.preorder() {
            if id == NodeId::ROOT || integrated.tree.node(id).is_leaf() {
                continue;
            }
            let candidates = &internal_candidates[&id];
            if candidates.is_empty() {
                report.internal_without_candidates += 1;
                decisions.insert(
                    id,
                    InternalDecision {
                        chosen: None,
                        candidate_count: 0,
                        def6_consistent: false,
                        blocked_by_ancestor: false,
                    },
                );
                continue;
            }
            let path: Vec<NodeId> = integrated.tree.path_to_root(id);
            let ancestor_labels: Vec<qi_runtime::Symbol> = path
                .iter()
                .filter_map(|p| assigned.get(p).copied())
                .collect();
            let parent_label: Option<(qi_runtime::Symbol, &BTreeSet<ClusterId>)> = path
                .iter()
                .find_map(|p| assigned.get(p).map(|&l| (l, &node_clusters[p])));
            let descendant_groups: Vec<&GroupWork> = groups
                .iter()
                .filter(|g| match g.parent {
                    Some(p) => p == id || integrated.tree.path_to_root(p).contains(&id),
                    None => false,
                })
                .collect();
            let x = &node_clusters[&id];
            // Score every candidate: must not duplicate an ancestor label;
            // prefer Definition 6 consistency with the chosen group
            // solutions, then Definition 5 generality wrt the parent.
            let mut best: Option<(bool, bool, &CandidateLabel)> = None;
            for candidate in candidates {
                if ancestor_labels
                    .iter()
                    .any(|&al| ctx.equal_sym(al, candidate.sym))
                {
                    continue; // Le − L_path(e) requirement (Prop. 2)
                }
                let def6 = descendant_groups
                    .iter()
                    .all(|g| candidate_consistent_with_group(candidate, g));
                let generality_ok = match parent_label {
                    Some((pl, pbag)) => {
                        let pl = ctx.spelling(pl);
                        internal::at_least_as_general(&pl, pbag, &candidate.label, x, &ctx)
                            || internal::at_least_as_general(
                                &pl,
                                pbag,
                                &candidate.label,
                                &candidate.coverage,
                                &ctx,
                            )
                    }
                    None => true,
                };
                let better = match &best {
                    None => true,
                    Some((b_def6, b_gen, b_cand)) => {
                        (
                            def6,
                            generality_ok,
                            candidate.expressiveness,
                            candidate.frequency,
                        ) > (*b_def6, *b_gen, b_cand.expressiveness, b_cand.frequency)
                    }
                };
                if better {
                    best = Some((def6, generality_ok, candidate));
                }
            }
            match best {
                Some((def6, _generality, candidate)) => {
                    assigned.insert(id, candidate.sym);
                    tree.set_label(id, Some(candidate.label.to_string()));
                    report.labeled_internal += 1;
                    decisions.insert(
                        id,
                        InternalDecision {
                            chosen: Some(candidate.label.to_string()),
                            candidate_count: candidates.len(),
                            def6_consistent: def6,
                            blocked_by_ancestor: false,
                        },
                    );
                    if !def6 {
                        weakly += 1;
                    }
                }
                None => {
                    report.unlabeled_internal_with_candidates += 1;
                    decisions.insert(
                        id,
                        InternalDecision {
                            chosen: None,
                            candidate_count: candidates.len(),
                            def6_consistent: false,
                            blocked_by_ancestor: true,
                        },
                    );
                }
            }
        }
        drop(phase_span);

        // ---------- Phase 2 (final): classify (Definition 8) ----------------
        let phase_span = self.telemetry.timed("label.phase2.classify");
        // Regular groups must have consistent solutions; the root group may
        // be partially consistent (§4). Internal nodes with candidates must
        // all be labeled.
        let groups_ok = groups
            .iter()
            .filter(|g| g.parent.is_some())
            .all(|g| g.naming.consistent || g.relation.tuples.is_empty());
        let class = if !groups_ok || report.unlabeled_internal_with_candidates > 0 {
            ConsistencyClass::Inconsistent
        } else if weakly > 0 {
            ConsistencyClass::WeaklyConsistent
        } else {
            ConsistencyClass::Consistent
        };
        report.class = Some(class);
        drop(phase_span);

        // ---------- Field accounting -----------------------------------------
        for leaf in tree.leaves() {
            if leaf.label.is_none() {
                report.unlabeled_fields += 1;
                if !leaf.instances().is_empty() {
                    report.unlabeled_fields_with_instances += 1;
                }
            }
        }

        report.naming_cache = ctx.cache_stats();
        drop(run_span);
        self.record_telemetry(&report, &ctx);
        if self.telemetry.is_enabled() && reuse.is_some() {
            self.telemetry
                .add("labeler.reuse.groups", groups_reused as u64);
            self.telemetry
                .add("labeler.extend.groups", groups_extended as u64);
            self.telemetry
                .add("labeler.reuse.isolated", isolated_reused as u64);
            self.telemetry
                .add("labeler.reuse.internal", internal_reused as u64);
        }

        let cache = capture.then(|| RelabelCache {
            groups: groups
                .into_iter()
                .map(|g| {
                    (
                        g.clusters,
                        CachedGroup {
                            relation: g.relation,
                            naming: g.naming,
                            state: g.state.expect("capturing runs record naming state"),
                        },
                    )
                })
                .collect(),
            internal: internal_store,
            isolated: isolated_store,
            memo: ctx.memo(),
        });

        (
            LabeledInterface {
                tree,
                leaf_cluster: integrated.leaf_cluster.clone(),
                report,
                internal_candidates,
                internal_decisions: decisions,
            },
            cache,
        )
    }

    /// Copy the run's counters and cache stats into the registry. One
    /// pointer check and out when telemetry is off — the phase loops
    /// above never touch the registry directly.
    fn record_telemetry(&self, report: &NamingReport, ctx: &NamingCtx) {
        let telemetry = &self.telemetry;
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.add("labeler.groups_named", report.groups.len() as u64);
        telemetry.add(
            "labeler.groups_consistent",
            report.groups.iter().filter(|g| g.consistent).count() as u64,
        );
        telemetry.add(
            "labeler.conflicts_repaired",
            report
                .groups
                .iter()
                .filter(|g| g.conflict_repaired == Some(true))
                .count() as u64,
        );
        telemetry.add(
            "labeler.conflicts_unrepaired",
            report
                .groups
                .iter()
                .filter(|g| g.conflict_repaired == Some(false))
                .count() as u64,
        );
        telemetry.add("labeler.internal_labeled", report.labeled_internal as u64);
        telemetry.add(
            "labeler.internal_without_candidates",
            report.internal_without_candidates as u64,
        );
        telemetry.add(
            "labeler.internal_blocked",
            report.unlabeled_internal_with_candidates as u64,
        );
        telemetry.add("labeler.unlabeled_fields", report.unlabeled_fields as u64);
        // Only the per-run naming-ctx caches belong to this labeler; the
        // shared lexicon/stemmer caches are recorded as per-domain deltas
        // by the eval runner to avoid double-counting across runs.
        for (name, stats) in ctx.named_cache_stats() {
            telemetry.record_cache(name, &stats);
        }
    }
}

/// Definition 6: a candidate label is consistent with a group's chosen
/// solution when one of its originating schemas supplies a tuple inside
/// the partition that produced the solution (schemas supplying no tuple
/// are vacuously consistent).
fn candidate_consistent_with_group(candidate: &CandidateLabel, group: &GroupWork) -> bool {
    let Some(solution) = group.naming.best() else {
        return true;
    };
    if !group.naming.consistent {
        // Partially consistent solutions span partitions; full Definition
        // 6 consistency is unattainable (the node can only be weakly
        // consistent through this group).
        return false;
    }
    candidate.schemas.iter().any(|&schema| {
        match group
            .relation
            .tuples
            .iter()
            .position(|t| t.schema == schema)
        {
            Some(idx) => solution.partition_tuples.contains(&idx),
            None => true, // no tuple — no conflicting evidence
        }
    })
}

/// Label occurrences of an isolated cluster's member fields, grouped by
/// display-normalized form.
fn isolated_occurrences(
    schemas: &[SchemaTree],
    mapping: &Mapping,
    cluster: ClusterId,
) -> Vec<LabelOccurrence> {
    let mut occurrences: Vec<LabelOccurrence> = Vec::new();
    for member in &mapping.cluster(cluster).members {
        let node = schemas[member.schema].node(member.node);
        let Some(label) = &node.label else { continue };
        let instances = node.instances().to_vec();
        match occurrences
            .iter_mut()
            .find(|o| o.label.eq_ignore_ascii_case(label))
        {
            Some(o) => {
                o.frequency += 1;
                for i in instances {
                    if !o.domain.contains(&i) {
                        o.domain.push(i);
                    }
                }
            }
            None => occurrences.push(LabelOccurrence {
                label: label.clone(),
                frequency: 1,
                domain: instances,
            }),
        }
    }
    occurrences
}

/// All labeled source internal nodes as potential labels (bags computed
/// against the mapping).
fn collect_potentials(schemas: &[SchemaTree], mapping: &Mapping) -> Vec<PotentialLabel> {
    // Reverse index: field → cluster.
    let mut field_cluster: BTreeMap<(usize, NodeId), ClusterId> = BTreeMap::new();
    for cluster in &mapping.clusters {
        for &member in &cluster.members {
            field_cluster.insert((member.schema, member.node), cluster.id);
        }
    }
    let mut potentials = Vec::new();
    for (schema_idx, tree) in schemas.iter().enumerate() {
        for internal in tree.internal_nodes() {
            let Some(label) = &internal.label else {
                continue;
            };
            let bag: BTreeSet<ClusterId> = tree
                .descendant_leaves(internal.id)
                .into_iter()
                .filter_map(|l| field_cluster.get(&(schema_idx, l)).copied())
                .collect();
            if !bag.is_empty() {
                potentials.push(PotentialLabel {
                    label: label.clone(),
                    schema: schema_idx,
                    bag,
                });
            }
        }
    }
    potentials
}

/// Per-cluster instances and field labels (LI5–LI7 side information).
fn collect_cluster_info(
    schemas: &[SchemaTree],
    mapping: &Mapping,
) -> BTreeMap<ClusterId, ClusterInfo> {
    let mut info: BTreeMap<ClusterId, ClusterInfo> = BTreeMap::new();
    for cluster in &mapping.clusters {
        let entry = info.entry(cluster.id).or_default();
        for &member in &cluster.members {
            let node = schemas[member.schema].node(member.node);
            if let Some(label) = &node.label {
                if !entry.field_labels.contains(label) {
                    entry.field_labels.push(label.clone());
                }
            }
            for instance in node.instances() {
                if !entry.instances.contains(instance) {
                    entry.instances.push(instance.clone());
                }
            }
        }
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_mapping::{expand_one_to_many, FieldRef};
    use qi_schema::spec::{leaf, node, select};

    fn field(schemas: &[SchemaTree], schema: usize, label: &str) -> FieldRef {
        let tree = &schemas[schema];
        let id = tree
            .descendant_leaves(NodeId::ROOT)
            .into_iter()
            .find(|&l| tree.node(l).label_str() == label)
            .unwrap_or_else(|| panic!("{label} not found in schema {schema}"));
        FieldRef::new(schema, id)
    }

    /// An airline micro-domain exercising groups, isolated clusters and
    /// internal-node labeling in one run.
    fn airline_fixture() -> (Vec<SchemaTree>, Mapping, Integrated) {
        let a = SchemaTree::build(
            "british",
            vec![
                node(
                    "How many passengers?",
                    vec![leaf("Seniors"), leaf("Adults"), leaf("Children")],
                ),
                node("Service", vec![select("Class", &["Economy", "First"])]),
            ],
        )
        .unwrap();
        let b = SchemaTree::build(
            "economytravel",
            vec![
                node(
                    "Passengers",
                    vec![leaf("Adults"), leaf("Children"), leaf("Infants")],
                ),
                node(
                    "Preferences",
                    vec![select("Class of Ticket", &["Economy", "First"])],
                ),
            ],
        )
        .unwrap();
        let schemas = vec![a, b];
        let mut mapping = Mapping::from_clusters(vec![
            ("c_Senior".to_string(), vec![field(&schemas, 0, "Seniors")]),
            (
                "c_Adult".to_string(),
                vec![field(&schemas, 0, "Adults"), field(&schemas, 1, "Adults")],
            ),
            (
                "c_Child".to_string(),
                vec![
                    field(&schemas, 0, "Children"),
                    field(&schemas, 1, "Children"),
                ],
            ),
            ("c_Infant".to_string(), vec![field(&schemas, 1, "Infants")]),
            (
                "c_Class".to_string(),
                vec![
                    field(&schemas, 0, "Class"),
                    field(&schemas, 1, "Class of Ticket"),
                ],
            ),
        ]);
        let mut schemas = schemas;
        expand_one_to_many(&mut schemas, &mut mapping);
        mapping.validate(&schemas).unwrap();
        let integrated = qi_merge::merge(&schemas, &mapping);
        (schemas, mapping, integrated)
    }

    #[test]
    fn end_to_end_airline_micro_domain() {
        let (schemas, mapping, integrated) = airline_fixture();
        let lexicon = Lexicon::builtin();
        let labeler = Labeler::new(&lexicon, NamingPolicy::default());
        let labeled = labeler.label(&schemas, &mapping, &integrated);
        // Passenger group gets the intersect-and-union solution.
        let mut leaf_labels: Vec<String> = labeled
            .tree
            .leaves()
            .map(|l| l.label_str().to_string())
            .collect();
        leaf_labels.sort();
        for expected in ["Seniors", "Adults", "Children", "Infants"] {
            assert!(
                leaf_labels.iter().any(|l| l == expected),
                "missing {expected} in {leaf_labels:?}"
            );
        }
        // The isolated class cluster is labeled (most descriptive:
        // Class of Ticket).
        assert!(
            leaf_labels.iter().any(|l| l == "Class of Ticket"),
            "isolated cluster unlabeled: {leaf_labels:?}"
        );
        // The passenger internal node receives a candidate label.
        let internal_labels: Vec<String> = labeled
            .tree
            .internal_nodes()
            .filter_map(|n| n.label.clone())
            .collect();
        assert!(
            !internal_labels.is_empty(),
            "no internal node labeled: {}",
            labeled.tree.render()
        );
        assert!(labeled.report.class.is_some());
        assert_eq!(labeled.report.unlabeled_fields, 0);
    }

    #[test]
    fn unlabeled_everywhere_field_stays_unlabeled() {
        // A cluster whose members are unlabeled in all sources (the
        // Figure 11 "No Label" case).
        let a = SchemaTree::build(
            "a",
            vec![node(
                "Lease Rate",
                vec![leaf("From"), qi_schema::spec::unlabeled_leaf()],
            )],
        )
        .unwrap();
        let schemas = vec![a];
        let al = schemas[0].descendant_leaves(NodeId::ROOT);
        let mapping = Mapping::from_clusters(vec![
            ("c_From".to_string(), vec![FieldRef::new(0, al[0])]),
            ("c_To".to_string(), vec![FieldRef::new(0, al[1])]),
        ]);
        let integrated = qi_merge::merge(&schemas, &mapping);
        let lexicon = Lexicon::builtin();
        let labeler = Labeler::new(&lexicon, NamingPolicy::default());
        let labeled = labeler.label(&schemas, &mapping, &integrated);
        assert_eq!(labeled.report.unlabeled_fields, 1);
        // The labeled sibling still gets its label.
        assert!(labeled.tree.leaves().any(|l| l.label_str() == "From"));
    }

    #[test]
    fn report_counts_groups() {
        let (schemas, mapping, integrated) = airline_fixture();
        let lexicon = Lexicon::builtin();
        let labeler = Labeler::new(&lexicon, NamingPolicy::default());
        let labeled = labeler.label(&schemas, &mapping, &integrated);
        assert!(!labeled.report.groups.is_empty());
        let passenger_group = labeled
            .report
            .groups
            .iter()
            .find(|g| g.description.contains("c_Adult"))
            .expect("passenger group reported");
        assert!(passenger_group.consistent);
    }

    /// The blocked-by-ancestor decision (§7's "promoted to its
    /// ancestors") is recorded: the nested fare pair's only candidate is
    /// claimed by the enclosing Fare section.
    #[test]
    fn blocked_candidate_is_recorded() {
        use qi_schema::spec::unlabeled_node as gu;
        let s1 = SchemaTree::build(
            "s1",
            vec![g_fare(vec![leaf("Lowest"), leaf("Highest")]), leaf("Promo")],
        )
        .unwrap();
        let s2 = SchemaTree::build(
            "s2",
            vec![g_fare(vec![
                leaf("Lowest"),
                leaf("Highest"),
                leaf("Currency"),
            ])],
        )
        .unwrap();
        let s3 = SchemaTree::build(
            "s3",
            vec![g_fare(vec![
                gu(vec![leaf("Lowest"), leaf("Highest")]),
                leaf("Currency"),
            ])],
        )
        .unwrap();
        fn g_fare(children: Vec<qi_schema::NodeSpec>) -> qi_schema::NodeSpec {
            node("Fare", children)
        }
        let schemas = vec![s1, s2, s3];
        let mapping = Mapping::from_clusters(vec![
            (
                "min".to_string(),
                vec![
                    field(&schemas, 0, "Lowest"),
                    field(&schemas, 1, "Lowest"),
                    field(&schemas, 2, "Lowest"),
                ],
            ),
            (
                "max".to_string(),
                vec![
                    field(&schemas, 0, "Highest"),
                    field(&schemas, 1, "Highest"),
                    field(&schemas, 2, "Highest"),
                ],
            ),
            (
                "currency".to_string(),
                vec![
                    field(&schemas, 1, "Currency"),
                    field(&schemas, 2, "Currency"),
                ],
            ),
            ("promo".to_string(), vec![field(&schemas, 0, "Promo")]),
        ]);
        let integrated = qi_merge::merge(&schemas, &mapping);
        let lexicon = Lexicon::builtin();
        let labeler = Labeler::new(&lexicon, NamingPolicy::default());
        let labeled = labeler.label(&schemas, &mapping, &integrated);
        // Exactly one node is blocked, and its decision says so.
        let blocked: Vec<_> = labeled
            .internal_decisions
            .values()
            .filter(|d| d.blocked_by_ancestor)
            .collect();
        assert_eq!(blocked.len(), 1, "{:?}", labeled.internal_decisions);
        assert!(blocked[0].chosen.is_none());
        assert!(blocked[0].candidate_count >= 1);
        assert_eq!(
            labeled.report.class,
            Some(crate::ConsistencyClass::Inconsistent)
        );
        // The enclosing section got the contested label.
        assert!(labeled
            .tree
            .internal_nodes()
            .any(|n| n.label_str() == "Fare"));
    }

    /// Decisions for labeled nodes carry the Definition 6 verdict.
    #[test]
    fn decisions_record_def6_verdict() {
        let (schemas, mapping, integrated) = airline_fixture();
        let lexicon = Lexicon::builtin();
        let labeler = Labeler::new(&lexicon, NamingPolicy::default());
        let labeled = labeler.label(&schemas, &mapping, &integrated);
        for (id, decision) in &labeled.internal_decisions {
            if let Some(chosen) = &decision.chosen {
                assert_eq!(
                    labeled.tree.node(*id).label.as_ref(),
                    Some(chosen),
                    "decision and tree disagree"
                );
            }
        }
        assert!(labeled
            .internal_decisions
            .values()
            .any(|d| d.chosen.is_some() && d.def6_consistent));
    }

    /// `label_with` under cache reuse produces exactly what a batch
    /// `label` over the grown domain produces (everything except the
    /// naming-cache hit/miss statistics, which legitimately differ).
    #[test]
    fn label_with_reuse_matches_batch_relabel() {
        let lexicon = Lexicon::builtin();
        let labeler = Labeler::new(&lexicon, NamingPolicy::default());
        let mut schemas = vec![
            SchemaTree::build(
                "a",
                vec![
                    node("Passengers", vec![leaf("Adults"), leaf("Children")]),
                    leaf("Departure Date"),
                ],
            )
            .unwrap(),
            SchemaTree::build(
                "b",
                vec![
                    node("Travelers", vec![leaf("Adults"), leaf("Infants")]),
                    leaf("Airline"),
                ],
            )
            .unwrap(),
        ];
        let base_mapping = qi_mapping::match_by_labels(&schemas, &lexicon);
        let base_integrated = qi_merge::merge(&schemas, &base_mapping);
        let (_, cache) = labeler.label_with(&schemas, &base_mapping, &base_integrated, None);

        schemas.push(
            SchemaTree::build(
                "c",
                vec![node("Who Flies", vec![leaf("Adults"), leaf("Seniors")])],
            )
            .unwrap(),
        );
        let config = qi_mapping::MatcherConfig::default();
        let delta = match qi_mapping::delta_match(&schemas, &base_mapping, &lexicon, config) {
            qi_mapping::DeltaOutcome::Incremental(d) => d,
            other => panic!("expected incremental append, got {other:?}"),
        };
        let integrated = qi_merge::merge(&schemas, &delta.mapping);
        let batch = labeler.label(&schemas, &delta.mapping, &integrated);
        let old_ids: BTreeSet<ClusterId> = base_mapping.clusters.iter().map(|c| c.id).collect();
        let reuse_delta = crate::relabel::RelabelDelta {
            dirty: delta.dirty.clone(),
            new_clusters: delta
                .mapping
                .clusters
                .iter()
                .map(|c| c.id)
                .filter(|id| !old_ids.contains(id))
                .collect(),
            new_schema: schemas.len() - 1,
        };
        let (incremental, next_cache) = labeler.label_with(
            &schemas,
            &delta.mapping,
            &integrated,
            Some((&cache, &reuse_delta)),
        );
        assert_eq!(incremental.tree, batch.tree);
        assert_eq!(incremental.leaf_cluster, batch.leaf_cluster);
        assert_eq!(incremental.internal_decisions, batch.internal_decisions);
        assert_eq!(incremental.report.class, batch.report.class);
        assert_eq!(incremental.report.li_usage, batch.report.li_usage);
        assert_eq!(incremental.report.groups, batch.report.groups);
        assert_eq!(incremental.report.isolated, batch.report.isolated);
        assert_eq!(
            incremental.report.unlabeled_fields,
            batch.report.unlabeled_fields
        );
        assert_eq!(
            incremental.report.labeled_internal,
            batch.report.labeled_internal
        );
        // The captured cache covers the grown domain.
        let (groups, internal, isolated) = next_cache.sizes();
        assert!(groups > 0 || isolated > 0);
        assert!(internal > 0 || integrated.tree.internal_nodes().count() == 0);
    }

    #[test]
    fn policy_accessor() {
        let lexicon = Lexicon::builtin();
        let labeler = Labeler::new(&lexicon, NamingPolicy::most_general_baseline());
        assert_eq!(
            labeler.policy().selection,
            crate::policy::LabelSelection::MostGeneral
        );
    }
}
