//! The naming context: label normalization and relation memoization.
//!
//! Group relations compare the same labels over and over (every pair of
//! tuples, at every consistency level, in every group). `NamingCtx`
//! normalizes each raw label once and memoizes every pairwise relation.

use crate::relations::{relate, LabelRelation};
use qi_lexicon::Lexicon;
use qi_text::LabelText;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Shared state for one naming run (one domain).
///
/// Not `Sync` — create one context per thread; the lexicon behind it is
/// freely shareable.
pub struct NamingCtx<'a> {
    lexicon: &'a Lexicon,
    texts: RefCell<HashMap<String, Rc<LabelText>>>,
    relations: RefCell<HashMap<(String, String), LabelRelation>>,
}

impl<'a> NamingCtx<'a> {
    /// Create a context over a lexicon.
    pub fn new(lexicon: &'a Lexicon) -> Self {
        NamingCtx {
            lexicon,
            texts: RefCell::new(HashMap::new()),
            relations: RefCell::new(HashMap::new()),
        }
    }

    /// The lexicon in use.
    pub fn lexicon(&self) -> &'a Lexicon {
        self.lexicon
    }

    /// Normalized form of a raw label (memoized).
    pub fn text(&self, raw: &str) -> Rc<LabelText> {
        if let Some(t) = self.texts.borrow().get(raw) {
            return Rc::clone(t);
        }
        let t = Rc::new(LabelText::new(raw, self.lexicon));
        self.texts
            .borrow_mut()
            .insert(raw.to_string(), Rc::clone(&t));
        t
    }

    /// Definition 1 relation between two raw labels (memoized, symmetric
    /// up to [`LabelRelation::flip`]).
    pub fn relate(&self, a: &str, b: &str) -> LabelRelation {
        if let Some(&r) = self.relations.borrow().get(&(a.to_string(), b.to_string())) {
            return r;
        }
        let ta = self.text(a);
        let tb = self.text(b);
        let r = relate(&ta, &tb, self.lexicon);
        let mut cache = self.relations.borrow_mut();
        cache.insert((a.to_string(), b.to_string()), r);
        cache.insert((b.to_string(), a.to_string()), r.flip());
        r
    }

    /// `a` and `b` have identical display forms.
    pub fn string_equal(&self, a: &str, b: &str) -> bool {
        self.relate(a, b) == LabelRelation::StringEqual
    }

    /// `a equal b` or stronger.
    pub fn equal(&self, a: &str, b: &str) -> bool {
        matches!(
            self.relate(a, b),
            LabelRelation::StringEqual | LabelRelation::Equal
        )
    }

    /// `a synonym b` or stronger.
    pub fn synonym(&self, a: &str, b: &str) -> bool {
        matches!(
            self.relate(a, b),
            LabelRelation::StringEqual | LabelRelation::Equal | LabelRelation::Synonym
        )
    }

    /// `a` is a strict hypernym of `b`.
    pub fn hypernym(&self, a: &str, b: &str) -> bool {
        self.relate(a, b) == LabelRelation::Hypernym
    }

    /// `a` is *semantically at least as general as* `b` by lexical
    /// evidence alone: equal, synonym or hypernym (Definition 5 condition
    /// (i); condition (ii), descendant-leaf containment, is structural and
    /// checked by the caller).
    pub fn at_least_as_general(&self, a: &str, b: &str) -> bool {
        matches!(
            self.relate(a, b),
            LabelRelation::StringEqual
                | LabelRelation::Equal
                | LabelRelation::Synonym
                | LabelRelation::Hypernym
        )
    }

    /// Expressiveness (content-word count) of a raw label (§4.2.1).
    pub fn expressiveness(&self, raw: &str) -> usize {
        self.text(raw).expressiveness()
    }

    /// Number of labels normalized so far (diagnostics).
    pub fn cached_labels(&self) -> usize {
        self.texts.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_returns_same_rc() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let a = ctx.text("Zip Code");
        let b = ctx.text("Zip Code");
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(ctx.cached_labels(), 1);
    }

    #[test]
    fn relate_is_cached_symmetrically() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        assert_eq!(ctx.relate("Class", "Class of Tickets"), LabelRelation::Hypernym);
        // The flipped direction is answered from cache.
        assert_eq!(ctx.relate("Class of Tickets", "Class"), LabelRelation::Hyponym);
    }

    #[test]
    fn predicate_helpers() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        assert!(ctx.string_equal("From", "from"));
        assert!(ctx.equal("Job Type", "Type of Job"));
        assert!(ctx.synonym("Area of Study", "Field of Work"));
        assert!(ctx.hypernym("Location", "Property Location"));
        assert!(ctx.at_least_as_general("Location", "Location"));
        assert!(ctx.at_least_as_general("Class", "Flight Class"));
        assert!(!ctx.at_least_as_general("Flight Class", "Class"));
        assert_eq!(ctx.expressiveness("Max. Number of Stops"), 3);
    }
}
