//! The naming context: label interning, normalization and relation
//! memoization.
//!
//! Group relations compare the same labels over and over (every pair of
//! tuples, at every consistency level, in every group). `NamingCtx`
//! interns each raw label into a dense [`Symbol`] on first sight,
//! normalizes it once, and memoizes every pairwise relation keyed by
//! `(Symbol, Symbol)` — so the steady-state cost of a comparison is one
//! integer-pair cache probe, with no `String` clones or hashes of raw
//! label text. All state is lock-striped ([`qi_runtime::ShardedCache`])
//! and the context is `Sync`: one context serves a whole domain run,
//! including phase-1 group naming fanned out across threads.

use crate::relations::{relate, LabelRelation};
use qi_lexicon::Lexicon;
use qi_runtime::{CacheStats, Interner, ShardedCache, Symbol};
use qi_text::LabelText;
use std::sync::Arc;

/// The carryable memo state of a naming context: the label interner plus
/// the normalized-text and pairwise-relation caches.
///
/// Every entry is a pure function of the lexicon and the label strings —
/// normalization never depends on run order — so a memo warmed by one
/// run can seed the next without changing any output. Symbols are only
/// ever compared for *equality* (dedup sets, ancestor-label checks);
/// every ranking tie-break in the pipeline orders by spelling, so the
/// numeric symbol ids a carried interner hands out are output-neutral.
/// The incremental ingest path threads one memo through successive
/// relabel runs ([`crate::RelabelCache`]), which is where most of a
/// small append's cost would otherwise go: re-stemming and re-relating
/// the same few hundred domain labels from scratch.
#[derive(Default)]
pub struct NamingMemo {
    interner: Interner,
    texts: ShardedCache<Symbol, Arc<LabelText>>,
    relations: ShardedCache<(Symbol, Symbol), LabelRelation>,
}

impl std::fmt::Debug for NamingMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NamingMemo")
            .field("labels", &self.texts.stats().entries)
            .finish()
    }
}

/// Shared state for one naming run (one domain).
pub struct NamingCtx<'a> {
    lexicon: &'a Lexicon,
    memo: Arc<NamingMemo>,
}

impl<'a> NamingCtx<'a> {
    /// Create a context over a lexicon.
    pub fn new(lexicon: &'a Lexicon) -> Self {
        NamingCtx::with_memo(lexicon, Arc::new(NamingMemo::default()))
    }

    /// Create a context sharing an existing (possibly pre-warmed) memo.
    /// New labels seen by this run are added to the shared memo.
    pub fn with_memo(lexicon: &'a Lexicon, memo: Arc<NamingMemo>) -> Self {
        NamingCtx { lexicon, memo }
    }

    /// The context's memo state, for carrying into a later run.
    pub fn memo(&self) -> Arc<NamingMemo> {
        Arc::clone(&self.memo)
    }

    /// The lexicon in use.
    pub fn lexicon(&self) -> &'a Lexicon {
        self.lexicon
    }

    /// Intern a raw label.
    pub fn sym(&self, raw: &str) -> Symbol {
        self.memo.interner.intern(raw)
    }

    /// A shared lease on the canonical spelling of an interned label.
    pub fn spelling(&self, sym: Symbol) -> Arc<str> {
        self.memo.interner.resolve(sym)
    }

    /// Normalized form of a raw label (memoized).
    pub fn text(&self, raw: &str) -> Arc<LabelText> {
        self.text_sym(self.sym(raw))
    }

    /// Normalized form of an interned label (memoized).
    pub fn text_sym(&self, sym: Symbol) -> Arc<LabelText> {
        if let Some(t) = self.memo.texts.get(&sym) {
            return t;
        }
        let raw = self.memo.interner.resolve(sym);
        let t = Arc::new(LabelText::new(&raw, self.lexicon));
        self.memo.texts.insert(sym, Arc::clone(&t));
        t
    }

    /// Definition 1 relation between two raw labels (memoized, symmetric
    /// up to [`LabelRelation::flip`]).
    pub fn relate(&self, a: &str, b: &str) -> LabelRelation {
        self.relate_sym(self.sym(a), self.sym(b))
    }

    /// Definition 1 relation between two interned labels.
    pub fn relate_sym(&self, a: Symbol, b: Symbol) -> LabelRelation {
        if let Some(r) = self.memo.relations.get(&(a, b)) {
            return r;
        }
        let ta = self.text_sym(a);
        let tb = self.text_sym(b);
        let r = relate(&ta, &tb, self.lexicon);
        self.memo.relations.insert((a, b), r);
        self.memo.relations.insert((b, a), r.flip());
        r
    }

    /// `a` and `b` have identical display forms.
    pub fn string_equal(&self, a: &str, b: &str) -> bool {
        self.relate(a, b) == LabelRelation::StringEqual
    }

    /// `a equal b` or stronger.
    pub fn equal(&self, a: &str, b: &str) -> bool {
        self.equal_sym(self.sym(a), self.sym(b))
    }

    /// `a equal b` or stronger, on interned labels. Identical symbols
    /// short-circuit to `true` without touching the relation cache.
    pub fn equal_sym(&self, a: Symbol, b: Symbol) -> bool {
        a == b
            || matches!(
                self.relate_sym(a, b),
                LabelRelation::StringEqual | LabelRelation::Equal
            )
    }

    /// `a synonym b` or stronger.
    pub fn synonym(&self, a: &str, b: &str) -> bool {
        matches!(
            self.relate(a, b),
            LabelRelation::StringEqual | LabelRelation::Equal | LabelRelation::Synonym
        )
    }

    /// `a` is a strict hypernym of `b`.
    pub fn hypernym(&self, a: &str, b: &str) -> bool {
        self.relate(a, b) == LabelRelation::Hypernym
    }

    /// `a` is a strict hypernym of `b`, on interned labels.
    pub fn hypernym_sym(&self, a: Symbol, b: Symbol) -> bool {
        a != b && self.relate_sym(a, b) == LabelRelation::Hypernym
    }

    /// Expressiveness of an interned label.
    pub fn expressiveness_sym(&self, sym: Symbol) -> usize {
        self.text_sym(sym).expressiveness()
    }

    /// `a` is *semantically at least as general as* `b` by lexical
    /// evidence alone: equal, synonym or hypernym (Definition 5 condition
    /// (i); condition (ii), descendant-leaf containment, is structural and
    /// checked by the caller).
    pub fn at_least_as_general(&self, a: &str, b: &str) -> bool {
        matches!(
            self.relate(a, b),
            LabelRelation::StringEqual
                | LabelRelation::Equal
                | LabelRelation::Synonym
                | LabelRelation::Hypernym
        )
    }

    /// Expressiveness (content-word count) of a raw label (§4.2.1).
    pub fn expressiveness(&self, raw: &str) -> usize {
        self.text(raw).expressiveness()
    }

    /// Number of labels normalized so far (diagnostics).
    pub fn cached_labels(&self) -> usize {
        self.memo.texts.stats().entries
    }

    /// Aggregated hit/miss counters of the context's memo-caches
    /// (normalized texts + pairwise relations).
    pub fn cache_stats(&self) -> CacheStats {
        self.memo.texts.stats().merge(&self.memo.relations.stats())
    }

    /// Per-cache hit/miss counters, keyed by stable cache names
    /// (`naming.texts`, `naming.relations`) for the telemetry registry.
    pub fn named_cache_stats(&self) -> [(&'static str, CacheStats); 2] {
        [
            ("naming.relations", self.memo.relations.stats()),
            ("naming.texts", self.memo.texts.stats()),
        ]
    }

    /// Enable or disable the context's memo-caches (benchmarks measure
    /// the uncached pipeline through this).
    pub fn set_cache_enabled(&self, enabled: bool) {
        self.memo.texts.set_enabled(enabled);
        self.memo.relations.set_enabled(enabled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_returns_same_arc() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let a = ctx.text("Zip Code");
        let b = ctx.text("Zip Code");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.cached_labels(), 1);
    }

    #[test]
    fn interning_is_stable_and_dense() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let a = ctx.sym("Departure City");
        let b = ctx.sym("Departure City");
        assert_eq!(a, b);
        assert_eq!(&*ctx.spelling(a), "Departure City");
        assert_ne!(ctx.sym("Arrival City"), a);
    }

    #[test]
    fn relate_is_cached_symmetrically() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        assert_eq!(
            ctx.relate("Class", "Class of Tickets"),
            LabelRelation::Hypernym
        );
        // The flipped direction is answered from cache.
        assert_eq!(
            ctx.relate("Class of Tickets", "Class"),
            LabelRelation::Hyponym
        );
    }

    #[test]
    fn predicate_helpers() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        assert!(ctx.string_equal("From", "from"));
        assert!(ctx.equal("Job Type", "Type of Job"));
        assert!(ctx.synonym("Area of Study", "Field of Work"));
        assert!(ctx.hypernym("Location", "Property Location"));
        assert!(ctx.at_least_as_general("Location", "Location"));
        assert!(ctx.at_least_as_general("Class", "Flight Class"));
        assert!(!ctx.at_least_as_general("Flight Class", "Class"));
        assert_eq!(ctx.expressiveness("Max. Number of Stops"), 3);
    }

    #[test]
    fn context_is_shareable_across_threads() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ctx = &ctx;
                scope.spawn(move || {
                    assert!(ctx.equal("Job Type", "Type of Job"));
                    assert!(ctx.hypernym("Location", "Property Location"));
                });
            }
        });
        let stats = ctx.cache_stats();
        assert!(stats.hits + stats.misses > 0);
    }
}
