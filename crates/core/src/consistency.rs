//! The three levels of naming consistency (Definition 2).
//!
//! Two tuples of a group relation are consistent at a level when they
//! share at least one cluster column whose labels relate at that level.
//! Levels are cumulative when *relaxing*: the algorithm first demands
//! plain string equality; failing that it accepts content-word equality;
//! failing that, synonymy (§4.1, "the general directions of the
//! algorithm").

use crate::ctx::NamingCtx;
use crate::relations::LabelRelation;
use qi_mapping::GroupTuple;

/// Consistency level of Definition 2, in relaxation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConsistencyLevel {
    /// Plain string comparison on display-normalized labels.
    String,
    /// Content-word set equality.
    Equality,
    /// Definition 1 synonymy.
    Synonymy,
}

impl ConsistencyLevel {
    /// The relaxation ladder, strongest first.
    pub const LADDER: [ConsistencyLevel; 3] = [
        ConsistencyLevel::String,
        ConsistencyLevel::Equality,
        ConsistencyLevel::Synonymy,
    ];

    /// Does `rel` satisfy this level (cumulatively)?
    pub fn admits(self, rel: LabelRelation) -> bool {
        match self {
            ConsistencyLevel::String => rel == LabelRelation::StringEqual,
            ConsistencyLevel::Equality => {
                matches!(rel, LabelRelation::StringEqual | LabelRelation::Equal)
            }
            ConsistencyLevel::Synonymy => matches!(
                rel,
                LabelRelation::StringEqual | LabelRelation::Equal | LabelRelation::Synonym
            ),
        }
    }
}

impl std::fmt::Display for ConsistencyLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyLevel::String => write!(f, "string"),
            ConsistencyLevel::Equality => write!(f, "equality"),
            ConsistencyLevel::Synonymy => write!(f, "synonymy"),
        }
    }
}

/// Definition 2: two tuples are consistent at `level` if some shared
/// cluster column carries labels related at that level.
pub fn tuples_consistent(
    a: &GroupTuple,
    b: &GroupTuple,
    level: ConsistencyLevel,
    ctx: &NamingCtx<'_>,
) -> bool {
    a.labels
        .iter()
        .zip(&b.labels)
        .any(|(la, lb)| match (la, lb) {
            (Some(la), Some(lb)) => level.admits(ctx.relate(la, lb)),
            _ => false,
        })
}

/// Consistency of label rows expressed as slices of options — used on
/// combined (in-progress) tuples that no longer correspond to a single
/// schema.
pub fn rows_consistent(
    a: &[Option<String>],
    b: &[Option<String>],
    level: ConsistencyLevel,
    ctx: &NamingCtx<'_>,
) -> bool {
    a.iter().zip(b).any(|(la, lb)| match (la, lb) {
        (Some(la), Some(lb)) => level.admits(ctx.relate(la, lb)),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lexicon::Lexicon;

    fn tuple(schema: usize, labels: &[Option<&str>]) -> GroupTuple {
        GroupTuple {
            schema,
            labels: labels.iter().map(|l| l.map(str::to_string)).collect(),
        }
    }

    #[test]
    fn ladder_order() {
        assert!(ConsistencyLevel::String < ConsistencyLevel::Equality);
        assert!(ConsistencyLevel::Equality < ConsistencyLevel::Synonymy);
        assert_eq!(ConsistencyLevel::LADDER.len(), 3);
    }

    #[test]
    fn admits_is_cumulative() {
        use LabelRelation::*;
        assert!(ConsistencyLevel::String.admits(StringEqual));
        assert!(!ConsistencyLevel::String.admits(Equal));
        assert!(ConsistencyLevel::Equality.admits(StringEqual));
        assert!(ConsistencyLevel::Equality.admits(Equal));
        assert!(!ConsistencyLevel::Equality.admits(Synonym));
        assert!(ConsistencyLevel::Synonymy.admits(Synonym));
        assert!(!ConsistencyLevel::Synonymy.admits(Hypernym));
    }

    /// Table 2: british and economytravel are string-level consistent via
    /// the shared labels Adults and Children.
    #[test]
    fn table2_string_level() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let british = tuple(
            3,
            &[Some("Seniors"), Some("Adults"), Some("Children"), None],
        );
        let economy = tuple(
            4,
            &[None, Some("Adults"), Some("Children"), Some("Infants")],
        );
        assert!(tuples_consistent(
            &british,
            &economy,
            ConsistencyLevel::String,
            &ctx
        ));
        // aa vs airtravel share no label (aa: Adults/Children; airtravel
        // after expansion: all nulls — modeled here with distinct labels).
        let aa = tuple(0, &[None, Some("Adults"), Some("Children"), None]);
        let airfareplanet = tuple(1, &[None, Some("Adult"), Some("Child"), Some("Infant")]);
        assert!(!tuples_consistent(
            &aa,
            &airfareplanet,
            ConsistencyLevel::String,
            &ctx
        ));
        // …but Adult/Adults are content-word equal, so the equality level
        // connects them.
        assert!(tuples_consistent(
            &aa,
            &airfareplanet,
            ConsistencyLevel::Equality,
            &ctx
        ));
    }

    /// Table 4: Preferred Airline vs Airline Preference is equality-level.
    #[test]
    fn table4_equality_level() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let alldest = tuple(
            2,
            &[None, Some("Class of Ticket"), Some("Preferred Airline")],
        );
        let cheap = tuple(
            3,
            &[
                Some("Max. Number of Stops"),
                None,
                Some("Airline Preference"),
            ],
        );
        assert!(!tuples_consistent(
            &alldest,
            &cheap,
            ConsistencyLevel::String,
            &ctx
        ));
        assert!(tuples_consistent(
            &alldest,
            &cheap,
            ConsistencyLevel::Equality,
            &ctx
        ));
    }

    #[test]
    fn synonymy_level() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        let a = tuple(0, &[Some("Area of Study"), None]);
        let b = tuple(1, &[Some("Field of Work"), Some("Company")]);
        assert!(!tuples_consistent(&a, &b, ConsistencyLevel::Equality, &ctx));
        assert!(tuples_consistent(&a, &b, ConsistencyLevel::Synonymy, &ctx));
    }

    #[test]
    fn disjoint_columns_never_consistent() {
        let lex = Lexicon::builtin();
        let ctx = NamingCtx::new(&lex);
        // Table 3: {State, City} rows vs {Zip, Distance} rows share no
        // column.
        let a = tuple(0, &[Some("State"), Some("City"), None, None]);
        let b = tuple(1, &[None, None, Some("Zip Code"), Some("Distance")]);
        for level in ConsistencyLevel::LADDER {
            assert!(!tuples_consistent(&a, &b, level, &ctx));
        }
    }
}
