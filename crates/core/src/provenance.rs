//! Compact, serializable labeling-decision provenance.
//!
//! [`crate::explain`] renders a free-form narrative for humans; this
//! module distills the same evidence into one flat [`LabelDecision`]
//! record per integrated-tree node — stable enough to persist in a
//! snapshot section, serve over HTTP (`GET /domains/{d}/explain`) and
//! print from `qi explain`. Each record names the node (id + label
//! path), the rule that fired, the chosen label, and every candidate
//! that was considered with its score and accept/reject verdict.
//!
//! Rule strings are a small closed vocabulary:
//!
//! * `group:<level>` — a consistent group solution at a Definition 2
//!   level (`string`/`equality`/`synonymy`), with `+conflict-repaired`
//!   or `+conflict-unrepaired` appended when homonym repair ran;
//! * `group:partial` — the §4.2.2 partially consistent fallback;
//! * `isolated:most-descriptive` / `isolated:most-general` — the §4.4
//!   election under the active [`NamingPolicy`];
//! * `internal:LI1`..`internal:LI7` — the inference rule that produced
//!   the chosen internal-node candidate (`+weak` appended when only
//!   Definition 5 generality holds, not Definition 6 consistency);
//! * `internal:blocked-by-ancestor` — every candidate duplicates an
//!   ancestor label (§7);
//! * `internal:no-candidates` / `unlabeled:no-source-label` — nothing
//!   to decide.

use crate::labeler::LabeledInterface;
use crate::policy::{LabelSelection, NamingPolicy};
use qi_schema::{NodeId, SchemaTree};

/// One candidate label considered for a node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecisionCandidate {
    /// The candidate label text.
    pub label: String,
    /// Occurrence frequency (source interfaces supplying the label).
    pub frequency: u64,
    /// True when this candidate became the node's label.
    pub accepted: bool,
    /// Score detail, e.g. `LI2 expressiveness=2` for internal-node
    /// candidates; empty when the rule carries no extra score.
    pub note: String,
}

/// Why one integrated-tree node carries (or lacks) its label.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelDecision {
    /// Arena id of the node in the labeled integrated tree.
    pub node: u32,
    /// Slash-joined label path from the root (unlabeled ancestors
    /// render as `n<id>`).
    pub path: String,
    /// The rule that fired (see the module docs for the vocabulary).
    pub rule: String,
    /// The assigned label, if any.
    pub chosen: Option<String>,
    /// Every candidate considered, in evaluation order.
    pub candidates: Vec<DecisionCandidate>,
}

/// Slash-joined label path of a node (root excluded).
fn node_path(tree: &SchemaTree, id: NodeId) -> String {
    let mut parts: Vec<String> = tree
        .path_to_root(id)
        .into_iter()
        .filter(|&p| p != NodeId::ROOT)
        .map(|p| segment(tree, p))
        .collect();
    parts.reverse();
    parts.push(segment(tree, id));
    parts.join("/")
}

fn segment(tree: &SchemaTree, id: NodeId) -> String {
    match &tree.node(id).label {
        Some(label) => label.clone(),
        None => id.to_string(),
    }
}

/// Distill the labeler's full diagnostics into one flat decision list,
/// ordered by node id: group fields first-come, isolated elections,
/// then internal nodes.
pub fn decisions(labeled: &LabeledInterface, policy: &NamingPolicy) -> Vec<LabelDecision> {
    let tree = &labeled.tree;
    let mut out: Vec<LabelDecision> = Vec::new();

    // Group fields: the chosen solution per column, with every source
    // label of that column as a candidate.
    for group in &labeled.report.groups {
        let mut rule = match group.level {
            Some(level) => format!("group:{level}"),
            None if group.consistent => "group:trivial".to_string(),
            None => "group:partial".to_string(),
        };
        match group.conflict_repaired {
            Some(true) => rule.push_str("+conflict-repaired"),
            Some(false) => rule.push_str("+conflict-unrepaired"),
            None => {}
        }
        for (column, &leaf) in group.leaves.iter().enumerate() {
            let chosen = group.labels.get(column).cloned().flatten();
            let options = group
                .column_options
                .get(column)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let candidates = options
                .iter()
                .map(|(label, count)| DecisionCandidate {
                    label: label.clone(),
                    frequency: *count as u64,
                    accepted: chosen.as_deref() == Some(label.as_str()),
                    note: String::new(),
                })
                .collect();
            out.push(LabelDecision {
                node: leaf.0,
                path: node_path(tree, leaf),
                rule: if chosen.is_some() {
                    rule.clone()
                } else {
                    "unlabeled:no-source-label".to_string()
                },
                chosen,
                candidates,
            });
        }
    }

    // Isolated clusters: the §4.4 election.
    let election = match policy.selection {
        LabelSelection::MostDescriptive => "isolated:most-descriptive",
        LabelSelection::MostGeneral => "isolated:most-general",
    };
    for isolated in &labeled.report.isolated {
        out.push(LabelDecision {
            node: isolated.leaf.0,
            path: node_path(tree, isolated.leaf),
            rule: if isolated.chosen.is_some() {
                election.to_string()
            } else {
                "unlabeled:no-source-label".to_string()
            },
            chosen: isolated.chosen.clone(),
            candidates: isolated
                .occurrences
                .iter()
                .map(|(label, frequency)| DecisionCandidate {
                    label: label.clone(),
                    frequency: *frequency as u64,
                    accepted: isolated.chosen.as_deref() == Some(label.as_str()),
                    note: String::new(),
                })
                .collect(),
        });
    }

    // Internal nodes: candidate sets with LI rules and the phase-3
    // verdict.
    for (&id, decision) in &labeled.internal_decisions {
        let empty = Vec::new();
        let candidates = labeled.internal_candidates.get(&id).unwrap_or(&empty);
        let rule = match &decision.chosen {
            Some(chosen) => {
                let li = candidates
                    .iter()
                    .find(|c| c.label.as_ref() == chosen.as_str())
                    .map(|c| c.rule.to_string())
                    .unwrap_or_else(|| "LI?".to_string());
                if decision.def6_consistent {
                    format!("internal:{li}")
                } else {
                    format!("internal:{li}+weak")
                }
            }
            None if decision.candidate_count == 0 => "internal:no-candidates".to_string(),
            None => "internal:blocked-by-ancestor".to_string(),
        };
        out.push(LabelDecision {
            node: id.0,
            path: node_path(tree, id),
            rule,
            chosen: decision.chosen.clone(),
            candidates: candidates
                .iter()
                .map(|c| DecisionCandidate {
                    label: c.label.to_string(),
                    frequency: c.frequency as u64,
                    accepted: decision.chosen.as_deref() == Some(c.label.as_ref()),
                    note: format!("{} expressiveness={}", c.rule, c.expressiveness),
                })
                .collect(),
        });
    }

    out.sort_by_key(|d| d.node);
    out
}

/// Render decisions as aligned text for `qi explain`. `filter` keeps
/// only nodes whose path contains the needle (case-insensitive).
pub fn render(decisions: &[LabelDecision], filter: Option<&str>) -> String {
    let needle = filter.map(str::to_ascii_lowercase);
    let mut out = String::new();
    for decision in decisions {
        if let Some(needle) = &needle {
            if !decision.path.to_ascii_lowercase().contains(needle) {
                continue;
            }
        }
        out.push_str(&format!(
            "n{} {}\n  rule: {}\n  label: {}\n",
            decision.node,
            decision.path,
            decision.rule,
            decision.chosen.as_deref().unwrap_or("(unlabeled)"),
        ));
        for candidate in &decision.candidates {
            out.push_str(&format!(
                "  {} {:?} freq={}{}\n",
                if candidate.accepted {
                    "accepted"
                } else {
                    "rejected"
                },
                candidate.label,
                candidate.frequency,
                if candidate.note.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", candidate.note)
                },
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Labeler, NamingPolicy};
    use qi_lexicon::Lexicon;
    use qi_mapping::{expand_one_to_many, FieldRef, Mapping};
    use qi_schema::spec::{leaf, node};
    use qi_schema::SchemaTree;

    fn fixture() -> Vec<LabelDecision> {
        let a = SchemaTree::build(
            "a",
            vec![node("Passengers", vec![leaf("Adults"), leaf("Children")])],
        )
        .unwrap();
        let b = SchemaTree::build(
            "b",
            vec![
                node("Travelers", vec![leaf("Adults"), leaf("Children")]),
                leaf("Promo Code"),
            ],
        )
        .unwrap();
        let al = a.descendant_leaves(qi_schema::NodeId::ROOT);
        let bl = b.descendant_leaves(qi_schema::NodeId::ROOT);
        let mut mapping = Mapping::from_clusters(vec![
            (
                "adult".to_string(),
                vec![FieldRef::new(0, al[0]), FieldRef::new(1, bl[0])],
            ),
            (
                "child".to_string(),
                vec![FieldRef::new(0, al[1]), FieldRef::new(1, bl[1])],
            ),
            ("promo".to_string(), vec![FieldRef::new(1, bl[2])]),
        ]);
        let mut schemas = vec![a, b];
        expand_one_to_many(&mut schemas, &mut mapping);
        let integrated = qi_merge::merge(&schemas, &mapping);
        let lexicon = Lexicon::builtin();
        let policy = NamingPolicy::default();
        let labeled = Labeler::new(&lexicon, policy).label(&schemas, &mapping, &integrated);
        decisions(&labeled, &policy)
    }

    #[test]
    fn every_labeled_node_has_a_decision_with_a_rule() {
        let decisions = fixture();
        assert!(!decisions.is_empty());
        for decision in &decisions {
            assert!(!decision.rule.is_empty());
            assert!(!decision.path.is_empty());
            if let Some(chosen) = &decision.chosen {
                assert!(
                    decision.candidates.iter().any(|c| c.accepted),
                    "chosen {chosen} but no accepted candidate: {decision:?}"
                );
            }
        }
        // Group fields carry a group rule with the consistency level.
        assert!(
            decisions.iter().any(|d| d.rule.starts_with("group:")),
            "{decisions:?}"
        );
        // The internal node's decision names its LI rule.
        assert!(
            decisions.iter().any(|d| d.rule.starts_with("internal:LI")),
            "{decisions:?}"
        );
    }

    #[test]
    fn rejected_alternatives_are_recorded() {
        let decisions = fixture();
        // The Passengers/Travelers internal node considered both source
        // section labels; exactly one was accepted.
        let internal = decisions
            .iter()
            .find(|d| d.rule.starts_with("internal:LI"))
            .expect("internal decision");
        assert!(internal.candidates.iter().any(|c| c.accepted));
        assert!(
            internal.candidates.iter().any(|c| !c.accepted),
            "expected a rejected alternative: {internal:?}"
        );
        assert!(internal.candidates.iter().all(|c| !c.note.is_empty()));
    }

    #[test]
    fn render_filters_by_path() {
        let decisions = fixture();
        let all = render(&decisions, None);
        assert!(all.contains("rule: "));
        assert!(all.contains("accepted"));
        let filtered = render(&decisions, Some("promo"));
        assert!(filtered.contains("Promo Code"), "{filtered}");
        assert!(!filtered.contains("Adults"), "{filtered}");
        assert!(render(&decisions, Some("zzz-no-such-node")).is_empty());
    }
}
