/root/repo/target/debug/examples/custom_domain-596deef016180c0b.d: examples/custom_domain.rs

/root/repo/target/debug/examples/custom_domain-596deef016180c0b: examples/custom_domain.rs

examples/custom_domain.rs:
