/root/repo/target/debug/examples/real_estate-d0a53958745785ca.d: examples/real_estate.rs

/root/repo/target/debug/examples/real_estate-d0a53958745785ca: examples/real_estate.rs

examples/real_estate.rs:
