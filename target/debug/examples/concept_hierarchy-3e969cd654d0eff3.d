/root/repo/target/debug/examples/concept_hierarchy-3e969cd654d0eff3.d: examples/concept_hierarchy.rs

/root/repo/target/debug/examples/concept_hierarchy-3e969cd654d0eff3: examples/concept_hierarchy.rs

examples/concept_hierarchy.rs:
