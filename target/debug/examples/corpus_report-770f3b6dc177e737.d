/root/repo/target/debug/examples/corpus_report-770f3b6dc177e737.d: examples/corpus_report.rs

/root/repo/target/debug/examples/corpus_report-770f3b6dc177e737: examples/corpus_report.rs

examples/corpus_report.rs:
