/root/repo/target/debug/examples/quickstart-1e5a1defaa23fb50.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1e5a1defaa23fb50: examples/quickstart.rs

examples/quickstart.rs:
