/root/repo/target/debug/examples/auto_domain-207ba3131ab99480.d: examples/auto_domain.rs

/root/repo/target/debug/examples/auto_domain-207ba3131ab99480: examples/auto_domain.rs

examples/auto_domain.rs:
