/root/repo/target/debug/deps/qi_eval-7ef1d161e65ed663.d: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/json.rs crates/eval/src/matcher_eval.rs crates/eval/src/metrics.rs crates/eval/src/panel.rs crates/eval/src/runner.rs crates/eval/src/table.rs

/root/repo/target/debug/deps/libqi_eval-7ef1d161e65ed663.rlib: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/json.rs crates/eval/src/matcher_eval.rs crates/eval/src/metrics.rs crates/eval/src/panel.rs crates/eval/src/runner.rs crates/eval/src/table.rs

/root/repo/target/debug/deps/libqi_eval-7ef1d161e65ed663.rmeta: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/json.rs crates/eval/src/matcher_eval.rs crates/eval/src/metrics.rs crates/eval/src/panel.rs crates/eval/src/runner.rs crates/eval/src/table.rs

crates/eval/src/lib.rs:
crates/eval/src/ablation.rs:
crates/eval/src/json.rs:
crates/eval/src/matcher_eval.rs:
crates/eval/src/metrics.rs:
crates/eval/src/panel.rs:
crates/eval/src/runner.rs:
crates/eval/src/table.rs:
