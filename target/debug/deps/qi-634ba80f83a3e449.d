/root/repo/target/debug/deps/qi-634ba80f83a3e449.d: src/lib.rs

/root/repo/target/debug/deps/qi-634ba80f83a3e449: src/lib.rs

src/lib.rs:
