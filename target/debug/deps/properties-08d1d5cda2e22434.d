/root/repo/target/debug/deps/properties-08d1d5cda2e22434.d: tests/properties.rs

/root/repo/target/debug/deps/properties-08d1d5cda2e22434: tests/properties.rs

tests/properties.rs:
