/root/repo/target/debug/deps/formats-08ca0f8a70ea4a27.d: tests/formats.rs

/root/repo/target/debug/deps/formats-08ca0f8a70ea4a27: tests/formats.rs

tests/formats.rs:
