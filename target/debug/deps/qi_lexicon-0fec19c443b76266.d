/root/repo/target/debug/deps/qi_lexicon-0fec19c443b76266.d: crates/lexicon/src/lib.rs crates/lexicon/src/builder.rs crates/lexicon/src/builtin.rs crates/lexicon/src/format.rs crates/lexicon/src/morphy.rs crates/lexicon/src/synset.rs

/root/repo/target/debug/deps/qi_lexicon-0fec19c443b76266: crates/lexicon/src/lib.rs crates/lexicon/src/builder.rs crates/lexicon/src/builtin.rs crates/lexicon/src/format.rs crates/lexicon/src/morphy.rs crates/lexicon/src/synset.rs

crates/lexicon/src/lib.rs:
crates/lexicon/src/builder.rs:
crates/lexicon/src/builtin.rs:
crates/lexicon/src/format.rs:
crates/lexicon/src/morphy.rs:
crates/lexicon/src/synset.rs:
