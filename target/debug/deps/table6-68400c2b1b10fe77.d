/root/repo/target/debug/deps/table6-68400c2b1b10fe77.d: crates/eval/src/bin/table6.rs

/root/repo/target/debug/deps/table6-68400c2b1b10fe77: crates/eval/src/bin/table6.rs

crates/eval/src/bin/table6.rs:
