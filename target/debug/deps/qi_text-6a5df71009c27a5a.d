/root/repo/target/debug/deps/qi_text-6a5df71009c27a5a.d: crates/text/src/lib.rs crates/text/src/normalize.rs crates/text/src/porter.rs crates/text/src/similarity.rs crates/text/src/stopwords.rs crates/text/src/token.rs

/root/repo/target/debug/deps/libqi_text-6a5df71009c27a5a.rlib: crates/text/src/lib.rs crates/text/src/normalize.rs crates/text/src/porter.rs crates/text/src/similarity.rs crates/text/src/stopwords.rs crates/text/src/token.rs

/root/repo/target/debug/deps/libqi_text-6a5df71009c27a5a.rmeta: crates/text/src/lib.rs crates/text/src/normalize.rs crates/text/src/porter.rs crates/text/src/similarity.rs crates/text/src/stopwords.rs crates/text/src/token.rs

crates/text/src/lib.rs:
crates/text/src/normalize.rs:
crates/text/src/porter.rs:
crates/text/src/similarity.rs:
crates/text/src/stopwords.rs:
crates/text/src/token.rs:
