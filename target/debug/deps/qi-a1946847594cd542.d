/root/repo/target/debug/deps/qi-a1946847594cd542.d: src/lib.rs

/root/repo/target/debug/deps/libqi-a1946847594cd542.rlib: src/lib.rs

/root/repo/target/debug/deps/libqi-a1946847594cd542.rmeta: src/lib.rs

src/lib.rs:
