/root/repo/target/debug/deps/qi_runtime-e6c689b8020f78b7.d: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/intern.rs crates/runtime/src/pool.rs crates/runtime/src/rng.rs

/root/repo/target/debug/deps/libqi_runtime-e6c689b8020f78b7.rlib: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/intern.rs crates/runtime/src/pool.rs crates/runtime/src/rng.rs

/root/repo/target/debug/deps/libqi_runtime-e6c689b8020f78b7.rmeta: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/intern.rs crates/runtime/src/pool.rs crates/runtime/src/rng.rs

crates/runtime/src/lib.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/intern.rs:
crates/runtime/src/pool.rs:
crates/runtime/src/rng.rs:
