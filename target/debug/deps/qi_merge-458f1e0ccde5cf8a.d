/root/repo/target/debug/deps/qi_merge-458f1e0ccde5cf8a.d: crates/merge/src/lib.rs crates/merge/src/bags.rs crates/merge/src/order.rs

/root/repo/target/debug/deps/qi_merge-458f1e0ccde5cf8a: crates/merge/src/lib.rs crates/merge/src/bags.rs crates/merge/src/order.rs

crates/merge/src/lib.rs:
crates/merge/src/bags.rs:
crates/merge/src/order.rs:
