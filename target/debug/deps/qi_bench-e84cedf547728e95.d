/root/repo/target/debug/deps/qi_bench-e84cedf547728e95.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/qi_bench-e84cedf547728e95: crates/bench/src/main.rs

crates/bench/src/main.rs:
