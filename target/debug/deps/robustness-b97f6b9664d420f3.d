/root/repo/target/debug/deps/robustness-b97f6b9664d420f3.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-b97f6b9664d420f3: tests/robustness.rs

tests/robustness.rs:
