/root/repo/target/debug/deps/pipeline-8eddbdc42e8080c9.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-8eddbdc42e8080c9: tests/pipeline.rs

tests/pipeline.rs:
