/root/repo/target/debug/deps/ablation-e7b43a768b9b917c.d: crates/eval/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-e7b43a768b9b917c: crates/eval/src/bin/ablation.rs

crates/eval/src/bin/ablation.rs:
