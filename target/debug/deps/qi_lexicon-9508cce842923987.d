/root/repo/target/debug/deps/qi_lexicon-9508cce842923987.d: crates/lexicon/src/lib.rs crates/lexicon/src/builder.rs crates/lexicon/src/builtin.rs crates/lexicon/src/format.rs crates/lexicon/src/morphy.rs crates/lexicon/src/synset.rs

/root/repo/target/debug/deps/libqi_lexicon-9508cce842923987.rlib: crates/lexicon/src/lib.rs crates/lexicon/src/builder.rs crates/lexicon/src/builtin.rs crates/lexicon/src/format.rs crates/lexicon/src/morphy.rs crates/lexicon/src/synset.rs

/root/repo/target/debug/deps/libqi_lexicon-9508cce842923987.rmeta: crates/lexicon/src/lib.rs crates/lexicon/src/builder.rs crates/lexicon/src/builtin.rs crates/lexicon/src/format.rs crates/lexicon/src/morphy.rs crates/lexicon/src/synset.rs

crates/lexicon/src/lib.rs:
crates/lexicon/src/builder.rs:
crates/lexicon/src/builtin.rs:
crates/lexicon/src/format.rs:
crates/lexicon/src/morphy.rs:
crates/lexicon/src/synset.rs:
