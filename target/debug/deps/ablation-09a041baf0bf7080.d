/root/repo/target/debug/deps/ablation-09a041baf0bf7080.d: crates/eval/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-09a041baf0bf7080: crates/eval/src/bin/ablation.rs

crates/eval/src/bin/ablation.rs:
