/root/repo/target/debug/deps/paper_examples-ff77ea1566e18f05.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-ff77ea1566e18f05: tests/paper_examples.rs

tests/paper_examples.rs:
