/root/repo/target/debug/deps/figure10-efcda1af63f97ffe.d: crates/eval/src/bin/figure10.rs

/root/repo/target/debug/deps/figure10-efcda1af63f97ffe: crates/eval/src/bin/figure10.rs

crates/eval/src/bin/figure10.rs:
