/root/repo/target/debug/deps/matcher-fa82cf2d2ce34f88.d: crates/eval/src/bin/matcher.rs

/root/repo/target/debug/deps/matcher-fa82cf2d2ce34f88: crates/eval/src/bin/matcher.rs

crates/eval/src/bin/matcher.rs:
