/root/repo/target/debug/deps/qi_text-343e295eb16d15f4.d: crates/text/src/lib.rs crates/text/src/normalize.rs crates/text/src/porter.rs crates/text/src/similarity.rs crates/text/src/stopwords.rs crates/text/src/token.rs

/root/repo/target/debug/deps/qi_text-343e295eb16d15f4: crates/text/src/lib.rs crates/text/src/normalize.rs crates/text/src/porter.rs crates/text/src/similarity.rs crates/text/src/stopwords.rs crates/text/src/token.rs

crates/text/src/lib.rs:
crates/text/src/normalize.rs:
crates/text/src/porter.rs:
crates/text/src/similarity.rs:
crates/text/src/stopwords.rs:
crates/text/src/token.rs:
