/root/repo/target/debug/deps/cli-dd0fa612413326c6.d: tests/cli.rs

/root/repo/target/debug/deps/cli-dd0fa612413326c6: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_qi=/root/repo/target/debug/qi
