/root/repo/target/debug/deps/qi_bench-5bf439c2892c4e1e.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/qi_bench-5bf439c2892c4e1e: crates/bench/src/main.rs

crates/bench/src/main.rs:
