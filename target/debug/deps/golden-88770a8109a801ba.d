/root/repo/target/debug/deps/golden-88770a8109a801ba.d: tests/golden.rs tests/golden/airline.qis tests/golden/auto.qis tests/golden/book.qis tests/golden/job.qis tests/golden/real_estate.qis tests/golden/car_rental.qis tests/golden/hotels.qis

/root/repo/target/debug/deps/golden-88770a8109a801ba: tests/golden.rs tests/golden/airline.qis tests/golden/auto.qis tests/golden/book.qis tests/golden/job.qis tests/golden/real_estate.qis tests/golden/car_rental.qis tests/golden/hotels.qis

tests/golden.rs:
tests/golden/airline.qis:
tests/golden/auto.qis:
tests/golden/book.qis:
tests/golden/job.qis:
tests/golden/real_estate.qis:
tests/golden/car_rental.qis:
tests/golden/hotels.qis:
