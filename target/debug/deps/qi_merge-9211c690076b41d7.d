/root/repo/target/debug/deps/qi_merge-9211c690076b41d7.d: crates/merge/src/lib.rs crates/merge/src/bags.rs crates/merge/src/order.rs

/root/repo/target/debug/deps/libqi_merge-9211c690076b41d7.rlib: crates/merge/src/lib.rs crates/merge/src/bags.rs crates/merge/src/order.rs

/root/repo/target/debug/deps/libqi_merge-9211c690076b41d7.rmeta: crates/merge/src/lib.rs crates/merge/src/bags.rs crates/merge/src/order.rs

crates/merge/src/lib.rs:
crates/merge/src/bags.rs:
crates/merge/src/order.rs:
