/root/repo/target/debug/deps/qi_datasets-62605b0a54a7063a.d: crates/datasets/src/lib.rs crates/datasets/src/airline.rs crates/datasets/src/auto.rs crates/datasets/src/book.rs crates/datasets/src/car_rental.rs crates/datasets/src/domain.rs crates/datasets/src/hotels.rs crates/datasets/src/job.rs crates/datasets/src/real_estate.rs crates/datasets/src/spec.rs crates/datasets/src/synth.rs

/root/repo/target/debug/deps/libqi_datasets-62605b0a54a7063a.rlib: crates/datasets/src/lib.rs crates/datasets/src/airline.rs crates/datasets/src/auto.rs crates/datasets/src/book.rs crates/datasets/src/car_rental.rs crates/datasets/src/domain.rs crates/datasets/src/hotels.rs crates/datasets/src/job.rs crates/datasets/src/real_estate.rs crates/datasets/src/spec.rs crates/datasets/src/synth.rs

/root/repo/target/debug/deps/libqi_datasets-62605b0a54a7063a.rmeta: crates/datasets/src/lib.rs crates/datasets/src/airline.rs crates/datasets/src/auto.rs crates/datasets/src/book.rs crates/datasets/src/car_rental.rs crates/datasets/src/domain.rs crates/datasets/src/hotels.rs crates/datasets/src/job.rs crates/datasets/src/real_estate.rs crates/datasets/src/spec.rs crates/datasets/src/synth.rs

crates/datasets/src/lib.rs:
crates/datasets/src/airline.rs:
crates/datasets/src/auto.rs:
crates/datasets/src/book.rs:
crates/datasets/src/car_rental.rs:
crates/datasets/src/domain.rs:
crates/datasets/src/hotels.rs:
crates/datasets/src/job.rs:
crates/datasets/src/real_estate.rs:
crates/datasets/src/spec.rs:
crates/datasets/src/synth.rs:
