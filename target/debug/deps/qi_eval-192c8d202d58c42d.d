/root/repo/target/debug/deps/qi_eval-192c8d202d58c42d.d: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/json.rs crates/eval/src/matcher_eval.rs crates/eval/src/metrics.rs crates/eval/src/panel.rs crates/eval/src/runner.rs crates/eval/src/table.rs

/root/repo/target/debug/deps/qi_eval-192c8d202d58c42d: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/json.rs crates/eval/src/matcher_eval.rs crates/eval/src/metrics.rs crates/eval/src/panel.rs crates/eval/src/runner.rs crates/eval/src/table.rs

crates/eval/src/lib.rs:
crates/eval/src/ablation.rs:
crates/eval/src/json.rs:
crates/eval/src/matcher_eval.rs:
crates/eval/src/metrics.rs:
crates/eval/src/panel.rs:
crates/eval/src/runner.rs:
crates/eval/src/table.rs:
