/root/repo/target/debug/deps/table6-d342d6ece25d81ef.d: crates/eval/src/bin/table6.rs

/root/repo/target/debug/deps/table6-d342d6ece25d81ef: crates/eval/src/bin/table6.rs

crates/eval/src/bin/table6.rs:
