/root/repo/target/debug/deps/qi_runtime-1743c0cf25c83d0f.d: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/intern.rs crates/runtime/src/pool.rs crates/runtime/src/rng.rs

/root/repo/target/debug/deps/qi_runtime-1743c0cf25c83d0f: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/intern.rs crates/runtime/src/pool.rs crates/runtime/src/rng.rs

crates/runtime/src/lib.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/intern.rs:
crates/runtime/src/pool.rs:
crates/runtime/src/rng.rs:
