/root/repo/target/debug/deps/qi-fb0d612fdde02ef7.d: src/bin/qi.rs

/root/repo/target/debug/deps/qi-fb0d612fdde02ef7: src/bin/qi.rs

src/bin/qi.rs:
