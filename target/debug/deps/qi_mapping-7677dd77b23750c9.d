/root/repo/target/debug/deps/qi_mapping-7677dd77b23750c9.d: crates/mapping/src/lib.rs crates/mapping/src/cluster.rs crates/mapping/src/clusters_format.rs crates/mapping/src/integrated.rs crates/mapping/src/matcher.rs crates/mapping/src/quality.rs crates/mapping/src/relation.rs

/root/repo/target/debug/deps/libqi_mapping-7677dd77b23750c9.rlib: crates/mapping/src/lib.rs crates/mapping/src/cluster.rs crates/mapping/src/clusters_format.rs crates/mapping/src/integrated.rs crates/mapping/src/matcher.rs crates/mapping/src/quality.rs crates/mapping/src/relation.rs

/root/repo/target/debug/deps/libqi_mapping-7677dd77b23750c9.rmeta: crates/mapping/src/lib.rs crates/mapping/src/cluster.rs crates/mapping/src/clusters_format.rs crates/mapping/src/integrated.rs crates/mapping/src/matcher.rs crates/mapping/src/quality.rs crates/mapping/src/relation.rs

crates/mapping/src/lib.rs:
crates/mapping/src/cluster.rs:
crates/mapping/src/clusters_format.rs:
crates/mapping/src/integrated.rs:
crates/mapping/src/matcher.rs:
crates/mapping/src/quality.rs:
crates/mapping/src/relation.rs:
