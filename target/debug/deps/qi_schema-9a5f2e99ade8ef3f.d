/root/repo/target/debug/deps/qi_schema-9a5f2e99ade8ef3f.d: crates/schema/src/lib.rs crates/schema/src/diff.rs crates/schema/src/error.rs crates/schema/src/html.rs crates/schema/src/node.rs crates/schema/src/spec.rs crates/schema/src/stats.rs crates/schema/src/text_format.rs crates/schema/src/tree.rs

/root/repo/target/debug/deps/libqi_schema-9a5f2e99ade8ef3f.rlib: crates/schema/src/lib.rs crates/schema/src/diff.rs crates/schema/src/error.rs crates/schema/src/html.rs crates/schema/src/node.rs crates/schema/src/spec.rs crates/schema/src/stats.rs crates/schema/src/text_format.rs crates/schema/src/tree.rs

/root/repo/target/debug/deps/libqi_schema-9a5f2e99ade8ef3f.rmeta: crates/schema/src/lib.rs crates/schema/src/diff.rs crates/schema/src/error.rs crates/schema/src/html.rs crates/schema/src/node.rs crates/schema/src/spec.rs crates/schema/src/stats.rs crates/schema/src/text_format.rs crates/schema/src/tree.rs

crates/schema/src/lib.rs:
crates/schema/src/diff.rs:
crates/schema/src/error.rs:
crates/schema/src/html.rs:
crates/schema/src/node.rs:
crates/schema/src/spec.rs:
crates/schema/src/stats.rs:
crates/schema/src/text_format.rs:
crates/schema/src/tree.rs:
