/root/repo/target/debug/deps/matcher-ba17ee11ef61bbb1.d: crates/eval/src/bin/matcher.rs

/root/repo/target/debug/deps/matcher-ba17ee11ef61bbb1: crates/eval/src/bin/matcher.rs

crates/eval/src/bin/matcher.rs:
