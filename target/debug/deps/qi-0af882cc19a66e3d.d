/root/repo/target/debug/deps/qi-0af882cc19a66e3d.d: src/bin/qi.rs

/root/repo/target/debug/deps/qi-0af882cc19a66e3d: src/bin/qi.rs

src/bin/qi.rs:
