/root/repo/target/debug/deps/figure10-3c54495bce8f4074.d: crates/eval/src/bin/figure10.rs

/root/repo/target/debug/deps/figure10-3c54495bce8f4074: crates/eval/src/bin/figure10.rs

crates/eval/src/bin/figure10.rs:
