/root/repo/target/debug/deps/qi_core-91cdb912f48dcf28.d: crates/core/src/lib.rs crates/core/src/combine.rs crates/core/src/conflicts.rs crates/core/src/consistency.rs crates/core/src/ctx.rs crates/core/src/explain.rs crates/core/src/instances.rs crates/core/src/internal.rs crates/core/src/isolated.rs crates/core/src/labeler.rs crates/core/src/partition.rs crates/core/src/policy.rs crates/core/src/relations.rs crates/core/src/report.rs crates/core/src/solution.rs

/root/repo/target/debug/deps/libqi_core-91cdb912f48dcf28.rlib: crates/core/src/lib.rs crates/core/src/combine.rs crates/core/src/conflicts.rs crates/core/src/consistency.rs crates/core/src/ctx.rs crates/core/src/explain.rs crates/core/src/instances.rs crates/core/src/internal.rs crates/core/src/isolated.rs crates/core/src/labeler.rs crates/core/src/partition.rs crates/core/src/policy.rs crates/core/src/relations.rs crates/core/src/report.rs crates/core/src/solution.rs

/root/repo/target/debug/deps/libqi_core-91cdb912f48dcf28.rmeta: crates/core/src/lib.rs crates/core/src/combine.rs crates/core/src/conflicts.rs crates/core/src/consistency.rs crates/core/src/ctx.rs crates/core/src/explain.rs crates/core/src/instances.rs crates/core/src/internal.rs crates/core/src/isolated.rs crates/core/src/labeler.rs crates/core/src/partition.rs crates/core/src/policy.rs crates/core/src/relations.rs crates/core/src/report.rs crates/core/src/solution.rs

crates/core/src/lib.rs:
crates/core/src/combine.rs:
crates/core/src/conflicts.rs:
crates/core/src/consistency.rs:
crates/core/src/ctx.rs:
crates/core/src/explain.rs:
crates/core/src/instances.rs:
crates/core/src/internal.rs:
crates/core/src/isolated.rs:
crates/core/src/labeler.rs:
crates/core/src/partition.rs:
crates/core/src/policy.rs:
crates/core/src/relations.rs:
crates/core/src/report.rs:
crates/core/src/solution.rs:
