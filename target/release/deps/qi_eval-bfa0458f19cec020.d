/root/repo/target/release/deps/qi_eval-bfa0458f19cec020.d: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/json.rs crates/eval/src/matcher_eval.rs crates/eval/src/metrics.rs crates/eval/src/panel.rs crates/eval/src/runner.rs crates/eval/src/table.rs

/root/repo/target/release/deps/libqi_eval-bfa0458f19cec020.rlib: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/json.rs crates/eval/src/matcher_eval.rs crates/eval/src/metrics.rs crates/eval/src/panel.rs crates/eval/src/runner.rs crates/eval/src/table.rs

/root/repo/target/release/deps/libqi_eval-bfa0458f19cec020.rmeta: crates/eval/src/lib.rs crates/eval/src/ablation.rs crates/eval/src/json.rs crates/eval/src/matcher_eval.rs crates/eval/src/metrics.rs crates/eval/src/panel.rs crates/eval/src/runner.rs crates/eval/src/table.rs

crates/eval/src/lib.rs:
crates/eval/src/ablation.rs:
crates/eval/src/json.rs:
crates/eval/src/matcher_eval.rs:
crates/eval/src/metrics.rs:
crates/eval/src/panel.rs:
crates/eval/src/runner.rs:
crates/eval/src/table.rs:
