/root/repo/target/release/deps/qi-da8a31d39689b2f4.d: src/lib.rs

/root/repo/target/release/deps/libqi-da8a31d39689b2f4.rlib: src/lib.rs

/root/repo/target/release/deps/libqi-da8a31d39689b2f4.rmeta: src/lib.rs

src/lib.rs:
