/root/repo/target/release/deps/ablation-5dd9f98413792f71.d: crates/eval/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-5dd9f98413792f71: crates/eval/src/bin/ablation.rs

crates/eval/src/bin/ablation.rs:
