/root/repo/target/release/deps/qi_lexicon-c84a6920c535845c.d: crates/lexicon/src/lib.rs crates/lexicon/src/builder.rs crates/lexicon/src/builtin.rs crates/lexicon/src/format.rs crates/lexicon/src/morphy.rs crates/lexicon/src/synset.rs

/root/repo/target/release/deps/libqi_lexicon-c84a6920c535845c.rlib: crates/lexicon/src/lib.rs crates/lexicon/src/builder.rs crates/lexicon/src/builtin.rs crates/lexicon/src/format.rs crates/lexicon/src/morphy.rs crates/lexicon/src/synset.rs

/root/repo/target/release/deps/libqi_lexicon-c84a6920c535845c.rmeta: crates/lexicon/src/lib.rs crates/lexicon/src/builder.rs crates/lexicon/src/builtin.rs crates/lexicon/src/format.rs crates/lexicon/src/morphy.rs crates/lexicon/src/synset.rs

crates/lexicon/src/lib.rs:
crates/lexicon/src/builder.rs:
crates/lexicon/src/builtin.rs:
crates/lexicon/src/format.rs:
crates/lexicon/src/morphy.rs:
crates/lexicon/src/synset.rs:
