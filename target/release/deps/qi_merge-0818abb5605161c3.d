/root/repo/target/release/deps/qi_merge-0818abb5605161c3.d: crates/merge/src/lib.rs crates/merge/src/bags.rs crates/merge/src/order.rs

/root/repo/target/release/deps/libqi_merge-0818abb5605161c3.rlib: crates/merge/src/lib.rs crates/merge/src/bags.rs crates/merge/src/order.rs

/root/repo/target/release/deps/libqi_merge-0818abb5605161c3.rmeta: crates/merge/src/lib.rs crates/merge/src/bags.rs crates/merge/src/order.rs

crates/merge/src/lib.rs:
crates/merge/src/bags.rs:
crates/merge/src/order.rs:
