/root/repo/target/release/deps/matcher-f2942878a33bfd54.d: crates/eval/src/bin/matcher.rs

/root/repo/target/release/deps/matcher-f2942878a33bfd54: crates/eval/src/bin/matcher.rs

crates/eval/src/bin/matcher.rs:
