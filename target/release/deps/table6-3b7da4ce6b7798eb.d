/root/repo/target/release/deps/table6-3b7da4ce6b7798eb.d: crates/eval/src/bin/table6.rs

/root/repo/target/release/deps/table6-3b7da4ce6b7798eb: crates/eval/src/bin/table6.rs

crates/eval/src/bin/table6.rs:
