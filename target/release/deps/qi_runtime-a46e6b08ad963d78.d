/root/repo/target/release/deps/qi_runtime-a46e6b08ad963d78.d: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/intern.rs crates/runtime/src/pool.rs crates/runtime/src/rng.rs

/root/repo/target/release/deps/libqi_runtime-a46e6b08ad963d78.rlib: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/intern.rs crates/runtime/src/pool.rs crates/runtime/src/rng.rs

/root/repo/target/release/deps/libqi_runtime-a46e6b08ad963d78.rmeta: crates/runtime/src/lib.rs crates/runtime/src/cache.rs crates/runtime/src/intern.rs crates/runtime/src/pool.rs crates/runtime/src/rng.rs

crates/runtime/src/lib.rs:
crates/runtime/src/cache.rs:
crates/runtime/src/intern.rs:
crates/runtime/src/pool.rs:
crates/runtime/src/rng.rs:
