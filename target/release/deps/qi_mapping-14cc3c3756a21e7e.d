/root/repo/target/release/deps/qi_mapping-14cc3c3756a21e7e.d: crates/mapping/src/lib.rs crates/mapping/src/cluster.rs crates/mapping/src/clusters_format.rs crates/mapping/src/integrated.rs crates/mapping/src/matcher.rs crates/mapping/src/quality.rs crates/mapping/src/relation.rs

/root/repo/target/release/deps/libqi_mapping-14cc3c3756a21e7e.rlib: crates/mapping/src/lib.rs crates/mapping/src/cluster.rs crates/mapping/src/clusters_format.rs crates/mapping/src/integrated.rs crates/mapping/src/matcher.rs crates/mapping/src/quality.rs crates/mapping/src/relation.rs

/root/repo/target/release/deps/libqi_mapping-14cc3c3756a21e7e.rmeta: crates/mapping/src/lib.rs crates/mapping/src/cluster.rs crates/mapping/src/clusters_format.rs crates/mapping/src/integrated.rs crates/mapping/src/matcher.rs crates/mapping/src/quality.rs crates/mapping/src/relation.rs

crates/mapping/src/lib.rs:
crates/mapping/src/cluster.rs:
crates/mapping/src/clusters_format.rs:
crates/mapping/src/integrated.rs:
crates/mapping/src/matcher.rs:
crates/mapping/src/quality.rs:
crates/mapping/src/relation.rs:
