/root/repo/target/release/deps/qi-e76673d0059ee70b.d: src/bin/qi.rs

/root/repo/target/release/deps/qi-e76673d0059ee70b: src/bin/qi.rs

src/bin/qi.rs:
