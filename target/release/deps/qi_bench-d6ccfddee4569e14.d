/root/repo/target/release/deps/qi_bench-d6ccfddee4569e14.d: crates/bench/src/main.rs

/root/repo/target/release/deps/qi_bench-d6ccfddee4569e14: crates/bench/src/main.rs

crates/bench/src/main.rs:
