/root/repo/target/release/deps/qi_schema-03de2a58ee76ace9.d: crates/schema/src/lib.rs crates/schema/src/diff.rs crates/schema/src/error.rs crates/schema/src/html.rs crates/schema/src/node.rs crates/schema/src/spec.rs crates/schema/src/stats.rs crates/schema/src/text_format.rs crates/schema/src/tree.rs

/root/repo/target/release/deps/libqi_schema-03de2a58ee76ace9.rlib: crates/schema/src/lib.rs crates/schema/src/diff.rs crates/schema/src/error.rs crates/schema/src/html.rs crates/schema/src/node.rs crates/schema/src/spec.rs crates/schema/src/stats.rs crates/schema/src/text_format.rs crates/schema/src/tree.rs

/root/repo/target/release/deps/libqi_schema-03de2a58ee76ace9.rmeta: crates/schema/src/lib.rs crates/schema/src/diff.rs crates/schema/src/error.rs crates/schema/src/html.rs crates/schema/src/node.rs crates/schema/src/spec.rs crates/schema/src/stats.rs crates/schema/src/text_format.rs crates/schema/src/tree.rs

crates/schema/src/lib.rs:
crates/schema/src/diff.rs:
crates/schema/src/error.rs:
crates/schema/src/html.rs:
crates/schema/src/node.rs:
crates/schema/src/spec.rs:
crates/schema/src/stats.rs:
crates/schema/src/text_format.rs:
crates/schema/src/tree.rs:
