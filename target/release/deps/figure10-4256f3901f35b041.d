/root/repo/target/release/deps/figure10-4256f3901f35b041.d: crates/eval/src/bin/figure10.rs

/root/repo/target/release/deps/figure10-4256f3901f35b041: crates/eval/src/bin/figure10.rs

crates/eval/src/bin/figure10.rs:
