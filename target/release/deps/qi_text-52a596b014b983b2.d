/root/repo/target/release/deps/qi_text-52a596b014b983b2.d: crates/text/src/lib.rs crates/text/src/normalize.rs crates/text/src/porter.rs crates/text/src/similarity.rs crates/text/src/stopwords.rs crates/text/src/token.rs

/root/repo/target/release/deps/libqi_text-52a596b014b983b2.rlib: crates/text/src/lib.rs crates/text/src/normalize.rs crates/text/src/porter.rs crates/text/src/similarity.rs crates/text/src/stopwords.rs crates/text/src/token.rs

/root/repo/target/release/deps/libqi_text-52a596b014b983b2.rmeta: crates/text/src/lib.rs crates/text/src/normalize.rs crates/text/src/porter.rs crates/text/src/similarity.rs crates/text/src/stopwords.rs crates/text/src/token.rs

crates/text/src/lib.rs:
crates/text/src/normalize.rs:
crates/text/src/porter.rs:
crates/text/src/similarity.rs:
crates/text/src/stopwords.rs:
crates/text/src/token.rs:
