//! Query-engine integration tests over generated drift corpora.
//!
//! The optimized executor (interned-symbol comparisons, lexicon
//! predicates pre-resolved into symbol sets) must agree match-for-match
//! with the naive per-node evaluator on every corpus we can throw at
//! it, and the pagination machinery must reassemble the exact full
//! stream page by page.

use qi_core::NamingPolicy;
use qi_datasets::DriftConfig;
use qi_lexicon::Lexicon;
use qi_query::{execute, execute_naive, parse, Budget};
use qi_runtime::Telemetry;
use qi_serve::{build_artifact, run_query, view_of, DomainArtifact, PageParams, QueryError};

/// A query set covering every primitive, every target, every predicate
/// atom and both string operators, plus precedence-sensitive nesting.
const QUERIES: &[&str] = &[
    "find fields",
    "find groups",
    "find nodes",
    "find nodes where unlabeled",
    "find fields where labeled",
    "find fields where label ~ \"date\"",
    "find fields where label = \"Make\"",
    "find nodes where label synonym-of \"passenger\"",
    "find nodes where label hyponym-of \"location\"",
    "find nodes where label hypernym-of \"city\"",
    "find nodes where kind = group",
    "find nodes where rule ~ \"internal\"",
    "find fields where rule ~ \"group\"",
    "find fields where rejected ~ \"a\"",
    "path to groups where labeled",
    "path to fields where label ~ \"city\"",
    "traverse nodes from (kind = group and labeled) where kind = field",
    "traverse fields from (label ~ \"travel\" or label ~ \"passenger\")",
    "find fields where label ~ \"city\" and not unlabeled or label = \"Make\"",
    "find nodes where not (kind = field and unlabeled)",
];

fn drift_artifacts(seed: u64) -> (Vec<DomainArtifact>, Lexicon) {
    let lexicon = Lexicon::builtin();
    let telemetry = Telemetry::off();
    let config = DriftConfig {
        seed,
        domains: 3,
        ..DriftConfig::default()
    };
    let corpus = qi_datasets::generate_drift_corpus(&config, &lexicon);
    let artifacts = corpus
        .iter()
        .map(|domain| build_artifact(domain, &lexicon, NamingPolicy::default(), &telemetry))
        .collect();
    (artifacts, lexicon)
}

/// The core equivalence property: for every drift seed, every domain
/// and every query in the set, the optimized executor and the naive
/// evaluator return the same matches in the same order.
#[test]
fn query_executor_equals_naive_over_drift_corpora() {
    for seed in [1u64, 7, 42] {
        let (artifacts, lexicon) = drift_artifacts(seed);
        for artifact in &artifacts {
            let slug = artifact.slug();
            let view = view_of(artifact, &slug);
            for text in QUERIES {
                let query = parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
                let mut budget = Budget::new(u64::MAX);
                let fast = execute(&query, view, &lexicon, &mut budget)
                    .unwrap_or_else(|e| panic!("{text}: {e:?}"));
                let naive = execute_naive(&query, view, &lexicon);
                assert_eq!(
                    fast, naive,
                    "seed {seed}, domain {slug}, query {text:?}: optimized and naive disagree"
                );
            }
        }
    }
}

/// The canonical rendering of a parsed query re-parses to the same
/// query, for the whole representative set (not just the unit-test
/// fixtures).
#[test]
fn representative_queries_round_trip_through_canonical_form() {
    for text in QUERIES {
        let query = parse(text).unwrap();
        let canonical = query.to_string();
        let reparsed = parse(&canonical).unwrap_or_else(|e| panic!("{canonical}: {e}"));
        assert_eq!(query, reparsed, "{text:?} → {canonical:?}");
    }
}

/// Cursor pagination over a multi-domain drift corpus stitches back
/// into exactly the full stream, for several page sizes.
#[test]
fn pagination_reassembles_the_full_stream_over_drift_corpora() {
    let (artifacts, lexicon) = drift_artifacts(3);
    let mut refs: Vec<&DomainArtifact> = artifacts.iter().collect();
    refs.sort_by_key(|a| a.slug());
    for text in ["find fields", "path to nodes where labeled"] {
        let all = PageParams {
            limit: u64::MAX,
            ..PageParams::default()
        };
        let full = run_query(&refs, &lexicon, text, &all).unwrap();
        assert!(full.next_cursor.is_none());
        assert!(!full.matches.is_empty(), "{text}: drift corpus matched");
        for page_size in [1u64, 3, 17] {
            let mut paged = Vec::new();
            let mut cursor: Option<String> = None;
            loop {
                let params = PageParams {
                    limit: page_size,
                    cursor: cursor.take(),
                    ..PageParams::default()
                };
                let page = run_query(&refs, &lexicon, text, &params).unwrap();
                assert!(page.matches.len() as u64 <= page_size);
                paged.extend(page.matches);
                match page.next_cursor {
                    Some(next) => cursor = Some(next),
                    None => break,
                }
            }
            assert_eq!(paged, full.matches, "{text}, pages of {page_size}");
        }
    }
}

/// An exhausted traversal budget is a typed error, and a version bump
/// underneath an outstanding cursor turns it stale.
#[test]
fn budget_and_staleness_are_typed_errors_over_drift_corpora() {
    let (mut artifacts, lexicon) = drift_artifacts(11);
    {
        let mut refs: Vec<&DomainArtifact> = artifacts.iter().collect();
        refs.sort_by_key(|a| a.slug());
        let starved = PageParams {
            budget: 1,
            ..PageParams::default()
        };
        assert!(matches!(
            run_query(&refs, &lexicon, "find nodes", &starved),
            Err(QueryError::BudgetExhausted { limit: 1 })
        ));
    }
    let cursor = {
        let mut refs: Vec<&DomainArtifact> = artifacts.iter().collect();
        refs.sort_by_key(|a| a.slug());
        let params = PageParams {
            limit: 1,
            ..PageParams::default()
        };
        run_query(&refs, &lexicon, "find fields", &params)
            .unwrap()
            .next_cursor
            .expect("more than one field")
    };
    for artifact in &mut artifacts {
        artifact.version += 1;
    }
    let mut refs: Vec<&DomainArtifact> = artifacts.iter().collect();
    refs.sort_by_key(|a| a.slug());
    let params = PageParams {
        cursor: Some(cursor),
        ..PageParams::default()
    };
    assert!(matches!(
        run_query(&refs, &lexicon, "find fields", &params),
        Err(QueryError::StaleCursor)
    ));
}
