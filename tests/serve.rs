//! End-to-end server tests over a real socket: consistent reads during
//! ingest, request-limit enforcement, keep-alive reuse, pipelining,
//! hot snapshot reload, and graceful shutdown.

use qi_core::NamingPolicy;
use qi_lexicon::Lexicon;
use qi_runtime::Telemetry;
use qi_serve::{build_artifact, Server, ServerConfig, Store};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn auto_store() -> Arc<Store> {
    let lexicon = Lexicon::builtin();
    let telemetry = Telemetry::off();
    let artifact = build_artifact(
        &qi_datasets::auto::domain(),
        &lexicon,
        NamingPolicy::default(),
        &telemetry,
    );
    Arc::new(Store::new(
        vec![artifact],
        lexicon,
        NamingPolicy::default(),
        telemetry,
    ))
}

fn start(store: Arc<Store>, config: ServerConfig) -> qi_serve::ServerHandle {
    Server::with_config(store, Telemetry::new(), config)
        .start()
        .expect("starting test server")
}

/// Raw one-shot HTTP exchange; returns (status, headers, body). Header
/// names come back lowercased for case-insensitive lookups.
fn exchange_full(addr: SocketAddr, raw: &[u8]) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connecting to test server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("sending request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("reading response");
    let text = String::from_utf8_lossy(&response);
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(": "))
        .map(|(name, value)| (name.to_ascii_lowercase(), value.to_string()))
        .collect();
    (status, headers, body)
}

/// Raw one-shot HTTP exchange; returns (status, body).
fn exchange(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let (status, _, body) = exchange_full(addr, raw);
    (status, body)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    exchange(
        addr,
        format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    exchange(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

#[test]
fn read_endpoints_serve_the_store() {
    let handle = start(auto_store(), ServerConfig::default());
    let addr = handle.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(
        body.starts_with("{\"status\":\"ok\",\"domains\":1,"),
        "{body}"
    );

    let (status, body) = get(addr, "/domains");
    assert_eq!(status, 200);
    assert!(body.contains("\"slug\":\"auto\""), "{body}");

    let (status, body) = get(addr, "/domains/auto/labels");
    assert_eq!(status, 200);
    assert!(body.contains("\"cluster\":\"make\""), "{body}");

    let (status, body) = get(addr, "/domains/auto/tree");
    assert_eq!(status, 200);
    assert!(body.contains("interface"), "{body}");

    let (status, _) = get(addr, "/domains/unknown/labels");
    assert_eq!(status, 404);

    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        body.starts_with('{') && body.contains("\"counters\""),
        "{body}"
    );
}

#[test]
fn concurrent_readers_never_see_a_torn_swap() {
    let config = ServerConfig {
        threads: 6,
        ..ServerConfig::default()
    };
    let handle = start(auto_store(), config);
    let addr = handle.addr();

    // The only two states a reader may ever observe: the full pre-swap
    // body and the full post-swap body.
    let (_, before) = get(addr, "/domains/auto/labels");
    let stop = AtomicBool::new(false);
    let torn = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    let mut bodies = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let (status, body) = get(addr, "/domains/auto/labels");
                        assert_eq!(status, 200);
                        bodies.push(body);
                    }
                    bodies
                })
            })
            .collect();

        let (status, _) = post(
            addr,
            "/domains/auto/interfaces",
            "interface extra\n- Make\n- Model\n- Price\n",
        );
        assert_eq!(status, 200, "ingest must succeed");
        stop.store(true, Ordering::Relaxed);
        readers
            .into_iter()
            .flat_map(|r| r.join().unwrap())
            .collect::<Vec<_>>()
    });
    let (_, after) = get(addr, "/domains/auto/labels");
    assert_ne!(before, after, "ingest must change the labels body");
    for body in &torn {
        assert!(
            body == &before || body == &after,
            "reader observed a torn response:\n{body}"
        );
    }
    // Sanity: the loop actually exercised readers during the swap.
    assert!(!torn.is_empty());
}

/// Value of a counter in the `/metrics` JSON body, 0 when absent.
fn counter_in(metrics_json: &str, name: &str) -> u64 {
    metrics_json
        .split(&format!("\"{name}\":"))
        .nth(1)
        .map(|rest| rest.chars().take_while(|c| c.is_ascii_digit()).collect())
        .and_then(|digits: String| digits.parse().ok())
        .unwrap_or(0)
}

#[test]
fn etag_revalidation_serves_304_until_ingest_bumps_the_version() {
    let handle = start(auto_store(), ServerConfig::default());
    let addr = handle.addr();

    let (status, headers, body) = exchange_full(
        addr,
        b"GET /domains/auto/labels HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    let etag = header(&headers, "etag")
        .expect("cached GET carries an ETag")
        .to_string();
    assert!(!body.is_empty());

    // Revalidating with the current ETag: 304, no body, ETag echoed.
    let conditional = format!(
        "GET /domains/auto/labels HTTP/1.1\r\nhost: t\r\nif-none-match: {etag}\r\n\
         connection: close\r\n\r\n"
    );
    let (status, headers, body) = exchange_full(addr, conditional.as_bytes());
    assert_eq!(status, 304);
    assert_eq!(header(&headers, "etag"), Some(etag.as_str()));
    assert!(body.is_empty(), "304 must not carry a body: {body}");

    // An ingest bumps the artifact version; the old validator stops
    // matching and the full new body comes back with a new ETag.
    let (status, _) = post(
        addr,
        "/domains/auto/interfaces",
        "interface extra\n- Make\n- Price\n",
    );
    assert_eq!(status, 200);
    let (status, headers, body) = exchange_full(addr, conditional.as_bytes());
    assert_eq!(status, 200);
    let fresh = header(&headers, "etag").expect("rebuilt GET carries an ETag");
    assert_ne!(fresh, etag, "version bump must change the ETag");
    assert!(!body.is_empty());
}

#[test]
fn repeated_reads_hit_the_rendered_response_cache() {
    let handle = start(auto_store(), ServerConfig::default());
    let addr = handle.addr();

    let (_, first) = get(addr, "/domains/auto/labels");
    for _ in 0..3 {
        let (status, body) = get(addr, "/domains/auto/labels");
        assert_eq!(status, 200);
        assert_eq!(body, first, "cached body must be byte-identical");
    }
    let (_, listing) = get(addr, "/domains");
    let (_, again) = get(addr, "/domains");
    assert_eq!(listing, again);

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let hits = counter_in(&metrics, "serve.cache.hits");
    assert!(hits >= 4, "expected ≥4 cache hits, saw {hits}: {metrics}");
    assert!(counter_in(&metrics, "serve.cache.misses") >= 2);
}

#[test]
fn malformed_and_oversized_requests_get_4xx_not_a_hangup() {
    let config = ServerConfig {
        max_body: 64,
        ..ServerConfig::default()
    };
    let handle = start(auto_store(), config);
    let addr = handle.addr();

    let (status, _) = exchange(addr, b"TOTAL GARBAGE\r\n\r\n");
    assert_eq!(status, 400);

    let (status, _) = exchange(addr, b"GET / HTTP/9.9\r\n\r\n");
    assert_eq!(status, 400);

    let big = "x".repeat(1000);
    let (status, _) = post(addr, "/domains/auto/interfaces", &big);
    assert_eq!(status, 413);

    let huge_header = format!(
        "GET /healthz HTTP/1.1\r\nx-pad: {}\r\n\r\n",
        "a".repeat(16 * 1024)
    );
    let (status, _) = exchange(addr, huge_header.as_bytes());
    assert_eq!(status, 431);

    let (status, _) = post(addr, "/domains/auto/interfaces", "not an interface");
    assert_eq!(status, 400);

    // The server is still healthy after all of that.
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
}

#[test]
fn graceful_shutdown_finishes_in_flight_requests() {
    let mut handle = start(auto_store(), ServerConfig::default());
    let addr = handle.addr();

    let worker = std::thread::spawn(move || {
        post(
            addr,
            "/domains/auto/interfaces",
            "interface late\n- Make\n- Model\n",
        )
    });
    // Give the POST a moment to be accepted, then stop the server.
    std::thread::sleep(Duration::from_millis(30));
    handle.shutdown();
    let (status, body) = worker.join().unwrap();
    assert_eq!(status, 200, "in-flight ingest must complete: {body}");

    // After shutdown the port stops answering.
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(300));
    if let Ok(mut stream) = refused {
        // A lingering accept backlog may take the connection, but nobody
        // serves it: expect EOF or an error, never a response.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(300)));
        let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
        let mut buf = Vec::new();
        let got = stream.read_to_end(&mut buf);
        assert!(
            got.is_err() || buf.is_empty(),
            "server answered after shutdown"
        );
    }
}

#[test]
fn metrics_content_negotiation_over_the_socket() {
    let handle = start(auto_store(), ServerConfig::default());
    let addr = handle.addr();

    // Default (no Accept header): sorted JSON document.
    let (status, headers, body) = exchange_full(
        addr,
        b"GET /metrics HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    assert!(
        body.starts_with('{') && body.contains("\"counters\""),
        "{body}"
    );

    // Prometheus scrapers send Accept: text/plain and get the
    // exposition-format text rendering instead.
    let (status, headers, body) = exchange_full(
        addr,
        b"GET /metrics HTTP/1.1\r\nhost: t\r\naccept: text/plain\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        Some("text/plain; version=0.0.4")
    );
    assert!(
        body.contains("# TYPE qi_serve_http_metrics histogram"),
        "{body}"
    );
    assert!(body.contains("_bucket{le=\"+Inf\"}"), "{body}");
}

#[test]
fn every_response_carries_a_monotonic_request_id() {
    let handle = start(auto_store(), ServerConfig::default());
    let addr = handle.addr();
    let mut previous = 0u64;
    for path in ["/healthz", "/domains", "/metrics", "/nope"] {
        let (_, headers, _) = exchange_full(
            addr,
            format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes(),
        );
        let id: u64 = header(&headers, "x-qi-request-id")
            .unwrap_or_else(|| panic!("{path}: missing x-qi-request-id in {headers:?}"))
            .parse()
            .expect("request id is an integer");
        assert!(id > previous, "{path}: id {id} not after {previous}");
        previous = id;
    }
}

#[test]
fn explain_endpoint_serves_decision_provenance() {
    let handle = start(auto_store(), ServerConfig::default());
    let addr = handle.addr();

    let (status, body) = get(addr, "/domains/auto/explain");
    assert_eq!(status, 200);
    assert!(body.contains("\"domain\":\"Auto\""), "{body}");
    assert!(body.contains("\"rule\":"), "{body}");
    assert!(body.contains("\"candidates\":"), "{body}");

    let (status, _) = get(addr, "/domains/unknown/explain");
    assert_eq!(status, 404);
}

/// A persistent connection that reads content-length-framed responses
/// one at a time, keeping any pipelined surplus buffered for the next
/// read.
struct KeepAliveClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl KeepAliveClient {
    fn connect(addr: SocketAddr) -> KeepAliveClient {
        let stream = TcpStream::connect(addr).expect("connecting to test server");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        KeepAliveClient {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, raw: &[u8]) {
        self.stream.write_all(raw).expect("sending request");
    }

    fn get(&mut self, path: &str) {
        self.send(format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes());
    }

    /// Read exactly one response; panics on EOF mid-response.
    fn response(&mut self) -> (u16, Vec<(String, String)>, String) {
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = self.stream.read(&mut chunk).expect("reading response");
            assert!(n > 0, "peer closed mid-head");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
        let status = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let headers: Vec<(String, String)> = head
            .lines()
            .skip(1)
            .filter_map(|line| line.split_once(": "))
            .map(|(name, value)| (name.to_ascii_lowercase(), value.to_string()))
            .collect();
        let length: usize = header(&headers, "content-length")
            .map(|v| v.parse().expect("numeric content-length"))
            .unwrap_or(0);
        while self.buf.len() < head_end + length {
            let n = self.stream.read(&mut chunk).expect("reading response");
            assert!(n > 0, "peer closed mid-body");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8_lossy(&self.buf[head_end..head_end + length]).to_string();
        self.buf.drain(..head_end + length);
        (status, headers, body)
    }

    /// The connection reached EOF (with nothing buffered).
    fn at_eof(&mut self) -> bool {
        let mut probe = [0u8; 64];
        self.buf.is_empty() && matches!(self.stream.read(&mut probe), Ok(0))
    }
}

#[test]
fn keep_alive_connection_serves_many_requests_and_reports_reuse() {
    let handle = start(auto_store(), ServerConfig::default());
    let addr = handle.addr();

    let mut client = KeepAliveClient::connect(addr);
    for _ in 0..3 {
        client.get("/healthz");
        let (status, headers, body) = client.response();
        assert_eq!(status, 200);
        assert!(
            body.starts_with("{\"status\":\"ok\",\"domains\":1,"),
            "{body}"
        );
        assert_eq!(
            header(&headers, "connection"),
            Some("keep-alive"),
            "HTTP/1.1 responses must not close by default: {headers:?}"
        );
    }
    // The reactor's connection counters see one accept, two reuses.
    client.get("/metrics");
    let (status, _, metrics) = client.response();
    assert_eq!(status, 200);
    assert_eq!(counter_in(&metrics, "serve.conn.accepted"), 1);
    assert!(counter_in(&metrics, "serve.conn.reused") >= 2, "{metrics}");
}

#[test]
fn pipelined_requests_answer_in_order_on_one_socket() {
    let handle = start(auto_store(), ServerConfig::default());
    let addr = handle.addr();

    let mut client = KeepAliveClient::connect(addr);
    // Two requests in a single segment; responses must come back FIFO
    // even though the two handlers run on different workers.
    client.send(
        b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n\
          GET /domains HTTP/1.1\r\nhost: t\r\n\r\n",
    );
    let (status, _, first) = client.response();
    assert_eq!(status, 200);
    assert!(
        first.starts_with("{\"status\":\"ok\",\"domains\":1,"),
        "{first}"
    );
    let (status, _, second) = client.response();
    assert_eq!(status, 200);
    assert!(second.contains("\"slug\":\"auto\""), "{second}");

    client.get("/metrics");
    let (_, _, metrics) = client.response();
    assert!(
        counter_in(&metrics, "serve.conn.pipelined") >= 1,
        "{metrics}"
    );
}

#[test]
fn malformed_second_request_errors_only_after_the_first_answer() {
    let handle = start(auto_store(), ServerConfig::default());
    let addr = handle.addr();

    let mut client = KeepAliveClient::connect(addr);
    client.send(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\nTOTAL GARBAGE\r\n\r\n");
    let (status, headers, _) = client.response();
    assert_eq!(status, 200, "the valid first request must still answer");
    assert_eq!(header(&headers, "connection"), Some("keep-alive"));
    let (status, headers, _) = client.response();
    assert_eq!(status, 400, "the garbage second request maps to 400");
    assert_eq!(
        header(&headers, "connection"),
        Some("close"),
        "a parse error must end the connection: {headers:?}"
    );
    assert!(client.at_eof(), "server must close after the error");
}

#[test]
fn idle_keep_alive_connections_are_closed_after_the_timeout() {
    let config = ServerConfig {
        idle_timeout_ms: 150,
        ..ServerConfig::default()
    };
    let handle = start(auto_store(), config);
    let addr = handle.addr();

    let mut client = KeepAliveClient::connect(addr);
    client.get("/healthz");
    let (status, _, _) = client.response();
    assert_eq!(status, 200);

    // Go quiet past the idle timeout: the server hangs up on us.
    assert!(client.at_eof(), "idle connection must be disconnected");

    let (_, metrics) = get(addr, "/metrics");
    assert!(
        counter_in(&metrics, "serve.conn.idle_closed") >= 1,
        "{metrics}"
    );
}

#[test]
fn request_cap_per_connection_closes_politely() {
    let config = ServerConfig {
        max_requests_per_conn: 2,
        ..ServerConfig::default()
    };
    let handle = start(auto_store(), config);
    let addr = handle.addr();

    let mut client = KeepAliveClient::connect(addr);
    client.get("/healthz");
    let (_, headers, _) = client.response();
    assert_eq!(header(&headers, "connection"), Some("keep-alive"));
    client.get("/healthz");
    let (status, headers, _) = client.response();
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "connection"),
        Some("close"),
        "the capping response must announce the close: {headers:?}"
    );
    assert!(client.at_eof());
}

#[test]
fn admin_reload_swaps_snapshots_under_live_keep_alive_traffic() {
    let lexicon = Lexicon::builtin();
    let telemetry = Telemetry::off();
    let policy = NamingPolicy::default();
    let auto = build_artifact(&qi_datasets::auto::domain(), &lexicon, policy, &telemetry);
    let book = build_artifact(&qi_datasets::book::domain(), &lexicon, policy, &telemetry);
    let snapshot = qi_serve::Snapshot {
        policy,
        domains: vec![auto, book],
    };
    let path = std::env::temp_dir().join(format!("qi-reload-{}.snap", std::process::id()));
    qi_serve::write_snapshot(&path, &snapshot).expect("writing reload snapshot");

    let handle = start(auto_store(), ServerConfig::default());
    let addr = handle.addr();

    // A keep-alive connection opened *before* the reload...
    let mut survivor = KeepAliveClient::connect(addr);
    survivor.get("/domains");
    let (status, _, before) = survivor.response();
    assert_eq!(status, 200);
    assert!(before.contains("\"slug\":\"auto\""), "{before}");
    assert!(!before.contains("\"slug\":\"book\""), "{before}");

    let raw = path.to_string_lossy();
    let (status, reply) = post(addr, "/admin/reload", &raw);
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"domains\":2"), "{reply}");

    // ...keeps serving, and sees the swapped corpus.
    survivor.get("/domains");
    let (status, _, after) = survivor.response();
    assert_eq!(status, 200, "live connections must survive a reload");
    assert!(after.contains("\"slug\":\"book\""), "{after}");
    survivor.get("/domains/book/labels");
    let (status, _, labels) = survivor.response();
    assert_eq!(status, 200);
    assert!(labels.contains("\"domain\":\"Book\""), "{labels}");

    let _ = std::fs::remove_file(&path);
}

fn json_str<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    body.split(&format!("\"{key}\":\""))
        .nth(1)
        .and_then(|rest| rest.split('"').next())
}

#[test]
fn query_endpoint_over_the_socket() {
    let handle = start(auto_store(), ServerConfig::default());
    let addr = handle.addr();

    // GET with a percent-encoded query string.
    let (status, body) = get(addr, "/query?q=find%20fields&limit=2");
    assert_eq!(status, 200);
    assert!(body.contains("\"query\":\"find fields\""), "{body}");
    assert!(body.contains("\"count\":2"), "{body}");
    assert!(body.contains("\"domain\":\"auto\""), "{body}");
    let cursor = json_str(&body, "next_cursor").expect("auto has more than 2 fields");

    // The cursor resumes the stream with different matches.
    let (status, second) = get(
        addr,
        &format!("/query?q=find%20fields&limit=2&cursor={cursor}"),
    );
    assert_eq!(status, 200);
    assert_ne!(body, second);

    // POST body carries the query text verbatim — no encoding needed.
    let (status, posted) = post(addr, "/query", "find fields where label ~ \"make\"");
    assert_eq!(status, 200);
    assert!(posted.contains("\"label\":\"Make\""), "{posted}");

    // Typed failures over the wire: parse error, starved budget.
    let (status, err) = get(addr, "/query?q=find%20widgets");
    assert_eq!(status, 400);
    assert!(err.contains("bad query"), "{err}");
    let (status, err) = get(addr, "/query?q=find%20fields&budget=1");
    assert_eq!(status, 422);
    assert!(err.contains("budget"), "{err}");

    // Cursorless GETs flow through the rendered-response cache: the
    // response carries an ETag and revalidation answers 304.
    let (status, headers, cached) = exchange_full(
        addr,
        b"GET /query?q=find%20fields HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    let etag = header(&headers, "etag").expect("cached query carries an etag");
    assert!(!cached.is_empty());
    let revalidate = format!(
        "GET /query?q=find%20fields HTTP/1.1\r\nhost: t\r\nif-none-match: {etag}\r\n\
         connection: close\r\n\r\n"
    );
    let (status, _, not_modified) = exchange_full(addr, revalidate.as_bytes());
    assert_eq!(status, 304);
    assert!(not_modified.is_empty());

    // Ingest bumps the store generation, so the outstanding page cursor
    // answers 410 Gone.
    let (status, _) = post(
        addr,
        "/domains/auto/interfaces",
        "interface extra\n- Make\n",
    );
    assert_eq!(status, 200);
    let (status, gone) = get(
        addr,
        &format!("/query?q=find%20fields&limit=2&cursor={cursor}"),
    );
    assert_eq!(status, 410);
    assert!(gone.contains("stale"), "{gone}");
}

#[test]
fn explain_pagination_over_the_socket() {
    let handle = start(auto_store(), ServerConfig::default());
    let addr = handle.addr();

    // The bare endpoint still answers the first page (cached path).
    let (status, full) = get(addr, "/domains/auto/explain");
    assert_eq!(status, 200);
    assert!(full.contains("\"rule\":"), "{full}");

    // Page through one decision at a time and count the stream.
    let total: usize = full
        .split("\"decisions\":")
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .and_then(|n| n.parse().ok())
        .expect("explain reports its decision total");
    let mut seen = 0usize;
    let mut cursor: Option<String> = None;
    loop {
        let path = match &cursor {
            Some(c) => format!("/domains/auto/explain?limit=1&cursor={c}"),
            None => "/domains/auto/explain?limit=1".to_string(),
        };
        let (status, page) = get(addr, &path);
        assert_eq!(status, 200, "{page}");
        assert!(page.contains("\"count\":1"), "{page}");
        seen += 1;
        match json_str(&page, "next_cursor") {
            Some(next) => cursor = Some(next.to_string()),
            None => break,
        }
    }
    assert_eq!(seen, total, "paged explain covers every decision");

    // A /query cursor pasted into explain names a different stream.
    let (_, page) = get(addr, "/query?q=find%20fields&limit=1");
    let foreign = json_str(&page, "next_cursor").unwrap();
    let (status, err) = get(addr, &format!("/domains/auto/explain?cursor={foreign}"));
    assert_eq!(status, 400);
    assert!(err.contains("different stream"), "{err}");
}

#[test]
fn healthz_serves_json_and_negotiates_plaintext() {
    let handle = start(auto_store(), ServerConfig::default());
    let addr = handle.addr();

    let (status, headers, body) = exchange_full(
        addr,
        b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "content-type"), Some("application/json"));
    assert!(
        body.starts_with("{\"status\":\"ok\",\"domains\":1,"),
        "{body}"
    );
    assert!(body.contains("\"uptime_seconds\":"), "{body}");
    assert!(body.contains("\"generation\":0"), "{body}");
    assert!(body.contains("\"versions\":{\"auto\":"), "{body}");

    // Plain-text probes (load balancers, shell one-liners) keep the
    // old one-word body under content negotiation.
    let (status, headers, body) = exchange_full(
        addr,
        b"GET /healthz HTTP/1.1\r\nhost: t\r\naccept: text/plain\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "content-type"), Some("text/plain"));
    assert_eq!(body, "ok\n");

    // An ingest bumps both the store generation and the domain version.
    let (status, _) = post(
        addr,
        "/domains/auto/interfaces",
        "interface extra\n- Make\n",
    );
    assert_eq!(status, 200);
    let (_, body) = get(addr, "/healthz");
    assert!(counter_in(&body, "generation") >= 1, "{body}");
}

#[test]
fn synthesized_error_responses_carry_request_ids() {
    let config = ServerConfig {
        max_body: 64,
        ..ServerConfig::default()
    };
    let handle = start(auto_store(), config);
    let addr = handle.addr();

    // Reactor-synthesized parse errors never reach a worker, but they
    // must still be attributable in the access log and client traces.
    for raw in [
        b"TOTAL GARBAGE\r\n\r\n".as_slice(),
        b"GET / HTTP/9.9\r\n\r\n".as_slice(),
    ] {
        let (status, headers, _) = exchange_full(addr, raw);
        assert_eq!(status, 400);
        let id: u64 = header(&headers, "x-qi-request-id")
            .unwrap_or_else(|| panic!("400 missing x-qi-request-id: {headers:?}"))
            .parse()
            .expect("request id is an integer");
        assert!(id > 0);
    }

    let big = "x".repeat(1000);
    let oversized = format!(
        "POST /domains/auto/interfaces HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\
         connection: close\r\n\r\n{big}",
        big.len()
    );
    let (status, headers, _) = exchange_full(addr, oversized.as_bytes());
    assert_eq!(status, 413);
    assert!(header(&headers, "x-qi-request-id").is_some(), "{headers:?}");

    let huge_header = format!(
        "GET /healthz HTTP/1.1\r\nx-pad: {}\r\n\r\n",
        "a".repeat(16 * 1024)
    );
    let (status, headers, _) = exchange_full(addr, huge_header.as_bytes());
    assert_eq!(status, 431);
    assert!(header(&headers, "x-qi-request-id").is_some(), "{headers:?}");
}

#[test]
fn connection_limit_shed_answers_503_with_a_request_id() {
    let config = ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    };
    let handle = start(auto_store(), config);
    let addr = handle.addr();

    // Fill the only slot; at the limit the reactor stops polling the
    // listener, so further connects queue in the accept backlog.
    let mut occupant = KeepAliveClient::connect(addr);
    occupant.get("/healthz");
    let (status, _, _) = occupant.response();
    assert_eq!(status, 200);

    // Two more connects queue behind the occupant. When the occupant
    // leaves, the reactor drains the backlog in one pass: the first
    // takes the freed slot, the second trips the limit and is shed
    // with a synthesized 503. Only read on it — the server never reads
    // a request on that path, and writing one could race the close
    // into a broken pipe.
    let survivor = TcpStream::connect(addr).expect("backlogged connect");
    let mut shed = TcpStream::connect(addr).expect("second backlogged connect");
    shed.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    drop(occupant);
    let mut raw = Vec::new();
    shed.read_to_end(&mut raw)
        .expect("reading the shed response");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 503"), "{text}");
    assert!(
        text.to_ascii_lowercase().contains("x-qi-request-id: "),
        "shed 503 must carry a request id: {text}"
    );

    // Free the slot again: the server still serves, and counted the
    // reject. A fresh connect can itself race into the shed path (the
    // reset discards the 503 in flight), so retry until a slot is free.
    drop(survivor);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let metrics = loop {
        assert!(
            std::time::Instant::now() < deadline,
            "server never freed a connection slot"
        );
        let mut stream = TcpStream::connect(addr).expect("reconnecting");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let sent = stream
            .write_all(b"GET /metrics HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
            .is_ok();
        let mut response = Vec::new();
        if sent && stream.read_to_end(&mut response).is_ok() {
            let text = String::from_utf8_lossy(&response).to_string();
            if text.starts_with("HTTP/1.1 200") {
                break text;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        counter_in(&metrics, "serve.conn.rejected") >= 1,
        "{metrics}"
    );
}

#[test]
fn metrics_history_and_debug_status_over_the_socket() {
    let config = ServerConfig {
        history_interval_ms: 25,
        history_windows: 8,
        ..ServerConfig::default()
    };
    let handle = start(auto_store(), config);
    let addr = handle.addr();

    // Generate traffic until at least one closed window recorded it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let doc = loop {
        assert!(
            std::time::Instant::now() < deadline,
            "no history window ever recorded traffic"
        );
        for _ in 0..3 {
            let (status, _) = get(addr, "/domains/auto/labels");
            assert_eq!(status, 200);
        }
        std::thread::sleep(Duration::from_millis(30));
        let (status, body) = get(addr, "/metrics/history");
        assert_eq!(status, 200);
        let doc = qi_runtime::json::parse(&body).expect("history parses");
        let recorded = doc
            .get("windows")
            .and_then(|w| w.as_array())
            .expect("history has a windows array")
            .iter()
            .any(|w| {
                w.get("counters")
                    .is_some_and(|c| c.u64_or_zero("serve.requests") > 0)
            });
        if recorded {
            break doc;
        }
    };
    assert_eq!(doc.u64_or_zero("interval_ns"), 25_000_000);
    assert_eq!(doc.u64_or_zero("capacity"), 8);
    let windows = doc.get("windows").and_then(|w| w.as_array()).unwrap();
    assert!(windows.len() <= 8);
    // Windows are oldest-first, contiguous, and non-overlapping.
    for pair in windows.windows(2) {
        assert_eq!(
            pair[1].u64_or_zero("index"),
            pair[0].u64_or_zero("index") + 1
        );
        assert!(pair[1].u64_or_zero("start_ns") >= pair[0].u64_or_zero("end_ns"));
    }

    // ?windows=1 returns exactly the newest window; out-of-range is 400.
    let (status, body) = get(addr, "/metrics/history?windows=1");
    assert_eq!(status, 200);
    let one = qi_runtime::json::parse(&body).unwrap();
    assert_eq!(
        one.get("windows").and_then(|w| w.as_array()).unwrap().len(),
        1
    );
    let (status, _) = get(addr, "/metrics/history?windows=9999");
    assert_eq!(status, 400);

    // /debug/status summarizes the same ring as rolling rates.
    let (status, body) = get(addr, "/debug/status");
    assert_eq!(status, 200);
    let status_doc = qi_runtime::json::parse(&body).expect("status parses");
    assert_eq!(
        status_doc.get("status").and_then(|s| s.as_str()),
        Some("ok")
    );
    assert!(body.contains("\"queue_depth\":"), "{body}");
    let rolling = status_doc.get("rolling").expect("status has rolling rates");
    assert!(rolling.u64_or_zero("requests") > 0, "{body}");
    assert!(body.contains("\"requests_per_sec\":"), "{body}");
    assert!(body.contains("\"events\":{\"enabled\":true"), "{body}");
}

/// One `/debug/events` page: returns (next_seq, dropped_watermark,
/// delivered seqs).
fn events_page(addr: SocketAddr, since: u64) -> (u64, u64, Vec<u64>) {
    let (status, body) = get(addr, &format!("/debug/events?since={since}&limit=16"));
    assert_eq!(status, 200, "{body}");
    let doc = qi_runtime::json::parse(&body).expect("events page parses");
    let seqs = doc
        .get("events")
        .and_then(|e| e.as_array())
        .expect("events page has an events array")
        .iter()
        .map(|event| event.u64_or_zero("seq"))
        .collect();
    (
        doc.u64_or_zero("next_seq"),
        doc.u64_or_zero("dropped_watermark"),
        seqs,
    )
}

#[test]
fn debug_events_cursor_resume_survives_ring_eviction_under_load() {
    const WRITERS: u64 = 4;
    const EVENTS_EACH: u64 = 100;
    const CAPACITY: usize = 32;
    let config = ServerConfig {
        events_capacity: CAPACITY,
        ..ServerConfig::default()
    };
    let handle = start(auto_store(), config);
    let addr = handle.addr();

    // Each parse failure emits exactly one `http.read_error` event, so
    // the writers produce a known total far beyond the ring capacity.
    let writers: Vec<_> = (0..WRITERS)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..EVENTS_EACH {
                    let (status, _) = exchange(addr, b"TOTAL GARBAGE\r\n\r\n");
                    assert_eq!(status, 400);
                }
            })
        })
        .collect();

    // Page the recorder concurrently, resuming from `next_seq` each
    // time; the throttle guarantees the ring laps the cursor.
    let mut since = 0u64;
    let mut watermark = 0u64;
    let mut seen = std::collections::BTreeSet::new();
    let collect =
        |since: &mut u64, watermark: &mut u64, seen: &mut std::collections::BTreeSet<u64>| {
            let (next, mark, seqs) = events_page(addr, *since);
            *watermark = (*watermark).max(mark);
            let empty = seqs.is_empty();
            for seq in seqs {
                assert!(seen.insert(seq), "event {seq} delivered twice");
            }
            *since = next;
            empty
        };
    while !writers.iter().all(|w| w.is_finished()) {
        collect(&mut since, &mut watermark, &mut seen);
        std::thread::sleep(Duration::from_millis(2));
    }
    for writer in writers {
        writer.join().unwrap();
    }
    // Drain whatever the ring still holds.
    while !collect(&mut since, &mut watermark, &mut seen) {}

    let total = WRITERS * EVENTS_EACH;
    assert_eq!(
        since, total,
        "the cursor must end at the last emitted event"
    );
    // Eviction is capacity-driven: after `total` emits the ring holds
    // the newest `CAPACITY` events, everything older was dropped.
    assert_eq!(watermark, total - CAPACITY as u64, "drop watermark");
    // The acceptance property: every event was either delivered or is
    // provably below an observed drop watermark — the cursor never
    // silently skips a live event.
    for seq in 1..=total {
        assert!(
            seen.contains(&seq) || seq <= watermark,
            "event {seq} neither delivered nor accounted for by watermark {watermark}"
        );
    }
    // And everything above the final watermark was delivered.
    for seq in watermark + 1..=total {
        assert!(seen.contains(&seq), "live event {seq} lost on resume");
    }
    assert!(seen.iter().all(|seq| (1..=total).contains(seq)));
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let mut handle = start(auto_store(), ServerConfig::default());
    let addr = handle.addr();
    let (status, body) = post(addr, "/admin/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("shutting down"), "{body}");
    handle.wait();
}
