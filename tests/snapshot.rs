//! Snapshot-format integration tests: corpus-scale round trips, the
//! corruption/version guards, and a golden snapshot file pinning the
//! v1 byte layout.
//!
//! The golden file is built from a tiny hand-made artifact (not the
//! pipeline), so it only moves when the *format* changes — label-
//! algorithm changes never invalidate it. To regenerate after an
//! intentional format change, run
//! `UPDATE_GOLDEN=1 cargo test --test snapshot` and review the diff
//! (the format version must be bumped at the same time).

use qi_core::{ConsistencyClass, InferenceRule, LiUsage, NamingPolicy};
use qi_lexicon::Lexicon;
use qi_mapping::{ClusterId, FieldRef, Mapping};
use qi_runtime::Telemetry;
use qi_schema::{NodeId, SchemaTree, Widget};
use qi_serve::{build_corpus_artifacts, DomainArtifact, Snapshot, SnapshotError, FORMAT_VERSION};
use std::collections::BTreeMap;

fn corpus_snapshot() -> Snapshot {
    let lexicon = Lexicon::builtin();
    let policy = NamingPolicy::default();
    let telemetry = Telemetry::off();
    Snapshot {
        policy,
        domains: build_corpus_artifacts(&lexicon, policy, &telemetry),
    }
}

#[test]
fn corpus_round_trip_is_byte_identical() {
    let snapshot = corpus_snapshot();
    let bytes = snapshot.to_bytes();
    let loaded = Snapshot::from_bytes(&bytes).expect("decoding own encoding");
    assert_eq!(loaded.domains.len(), snapshot.domains.len());
    assert_eq!(
        bytes,
        loaded.to_bytes(),
        "write -> read -> write must reproduce the file byte for byte"
    );
    for (a, b) in snapshot.domains.iter().zip(&loaded.domains) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.schemas, b.schemas, "{}: source schemas", a.name);
        assert_eq!(a.labeled, b.labeled, "{}: labeled tree", a.name);
        assert_eq!(a.leaf_cluster, b.leaf_cluster, "{}: leaf clusters", a.name);
        assert_eq!(a.class, b.class);
        assert_eq!(a.li_usage, b.li_usage);
        assert_eq!(a.symbols, b.symbols);
        assert_eq!(a.normalized, b.normalized);
        assert!(!a.decisions.is_empty(), "{}: pipeline provenance", a.name);
        assert_eq!(a.decisions, b.decisions, "{}: decision provenance", a.name);
    }
}

#[test]
fn snapshots_without_decisions_sections_still_load() {
    // Clearing every decision list reproduces the pre-provenance file
    // format exactly (no decisions/ sections); a current reader must
    // accept it and serve empty provenance.
    let mut snapshot = corpus_snapshot();
    for domain in &mut snapshot.domains {
        domain.decisions.clear();
    }
    let old_format = snapshot.to_bytes();
    let full = corpus_snapshot().to_bytes();
    assert!(
        old_format.len() < full.len(),
        "decisions sections add bytes"
    );
    let loaded = Snapshot::from_bytes(&old_format).expect("pre-provenance bytes load");
    assert_eq!(loaded.domains.len(), snapshot.domains.len());
    assert!(loaded.domains.iter().all(|d| d.decisions.is_empty()));
}

#[test]
fn every_corrupted_section_is_rejected() {
    let bytes = corpus_snapshot().to_bytes();
    // Flip one byte in the middle of each eighth of the payload region;
    // whichever section it lands in must be named in the error.
    for i in 1..8 {
        let mut corrupt = bytes.clone();
        let pos = corrupt.len() * i / 8;
        corrupt[pos] ^= 0x40;
        match Snapshot::from_bytes(&corrupt) {
            Ok(_) => panic!("corruption at byte {pos} went unnoticed"),
            Err(
                SnapshotError::ChecksumMismatch { .. }
                | SnapshotError::Truncated
                | SnapshotError::Malformed(_)
                | SnapshotError::BadMagic
                | SnapshotError::UnsupportedVersion { .. },
            ) => {}
            Err(SnapshotError::Io(err)) => panic!("unexpected io error: {err}"),
        }
    }
}

#[test]
fn future_format_version_is_refused_with_both_versions_named() {
    let mut bytes = corpus_snapshot().to_bytes();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 7);
            assert_eq!(supported, FORMAT_VERSION);
            let message = SnapshotError::UnsupportedVersion { found, supported }.to_string();
            assert!(message.contains(&found.to_string()), "{message}");
            assert!(message.contains(&supported.to_string()), "{message}");
        }
        other => panic!("expected version refusal, got {other:?}"),
    }
}

/// A deterministic artifact exercising every field of the format —
/// including an instance value containing `" | "`, which the text
/// format cannot represent but the binary codec must.
fn tiny_artifact() -> DomainArtifact {
    let mut source = SchemaTree::new("a1");
    let make = source.add_leaf(NodeId::ROOT, Some("Make"));
    let color = source.add_leaf_full(
        NodeId::ROOT,
        Some("Color"),
        Widget::SelectList,
        vec!["Red".to_string(), "Blue | Green".to_string()],
    );
    let mapping = Mapping::from_clusters([
        (
            "make".to_string(),
            vec![FieldRef {
                schema: 0,
                node: make,
            }],
        ),
        (
            "color".to_string(),
            vec![FieldRef {
                schema: 0,
                node: color,
            }],
        ),
    ]);
    let mut labeled = SchemaTree::new("tiny");
    let l_make = labeled.add_leaf(NodeId::ROOT, Some("Make"));
    let l_color = labeled.add_leaf_full(
        NodeId::ROOT,
        Some("Color"),
        Widget::SelectList,
        vec!["Red".to_string(), "Blue | Green".to_string()],
    );
    let mut leaf_cluster = BTreeMap::new();
    leaf_cluster.insert(l_make, ClusterId(0));
    leaf_cluster.insert(l_color, ClusterId(1));
    let mut li_usage = LiUsage::default();
    li_usage.record(InferenceRule::ALL[0]);
    li_usage.record(InferenceRule::ALL[0]);
    li_usage.record(InferenceRule::ALL[3]);
    DomainArtifact {
        name: "Tiny".to_string(),
        schemas: vec![source],
        mapping,
        labeled,
        leaf_cluster,
        class: Some(ConsistencyClass::Consistent),
        li_usage,
        unlabeled_fields: 0,
        labeled_internal: 1,
        symbols: vec![
            "Make".to_string(),
            "make".to_string(),
            "Color".to_string(),
            "color".to_string(),
        ],
        normalized: vec![(0, vec![1]), (2, vec![3])],
        // Empty: the golden pins the pre-provenance byte layout (no
        // decisions/ section is written for an empty decision list).
        decisions: vec![],
        version: 0,
        delta: None,
    }
}

#[test]
fn golden_snapshot_v1_byte_layout_is_stable() {
    let snapshot = Snapshot {
        policy: NamingPolicy::default(),
        domains: vec![tiny_artifact()],
    };
    let bytes = snapshot.to_bytes();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/snapshot_v1.snap");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &bytes).expect("writing golden snapshot");
    }
    let golden = std::fs::read(path).expect("tests/golden/snapshot_v1.snap is committed");
    assert_eq!(
        bytes, golden,
        "snapshot v1 byte layout changed; a reader of old files would \
         break. Bump FORMAT_VERSION and regenerate with UPDATE_GOLDEN=1."
    );

    // The golden file must also still decode to the same content.
    let decoded = Snapshot::from_bytes(&golden).expect("decoding golden snapshot");
    let artifact = &decoded.domains[0];
    let reference = tiny_artifact();
    assert_eq!(artifact.name, reference.name);
    assert_eq!(artifact.schemas, reference.schemas);
    assert_eq!(artifact.labeled, reference.labeled);
    assert_eq!(artifact.leaf_cluster, reference.leaf_cluster);
    assert_eq!(artifact.li_usage, reference.li_usage);
    assert_eq!(artifact.symbols, reference.symbols);
    assert_eq!(artifact.normalized, reference.normalized);
    // The pipe-bearing instance survived exactly.
    let color = artifact
        .labeled
        .leaves()
        .find(|l| l.label.as_deref() == Some("Color"));
    assert_eq!(
        color.expect("Color leaf").instances(),
        ["Red".to_string(), "Blue | Green".to_string()]
    );
}

#[test]
fn snapshot_files_round_trip_through_disk() {
    let snapshot = corpus_snapshot();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("qi-snapshot-test-{}.snap", std::process::id()));
    qi_serve::write_snapshot(&path, &snapshot).expect("writing snapshot");
    let loaded = qi_serve::load_snapshot(&path).expect("loading snapshot");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.domains.len(), snapshot.domains.len());
    assert_eq!(loaded.to_bytes(), snapshot.to_bytes());
}

#[test]
fn missing_file_reports_io() {
    let err = qi_serve::load_snapshot(std::path::Path::new("/nonexistent/qi.snap"))
        .expect_err("missing file must fail");
    assert!(matches!(err, SnapshotError::Io(_)), "{err:?}");
}
