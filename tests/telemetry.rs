//! Integration tests for the pipeline telemetry subsystem.
//!
//! Covers the ISSUE 3 acceptance properties end to end:
//!
//! 1. **Determinism** — a full seven-domain corpus run with `threads: 1`
//!    on the deterministic virtual clock produces *byte-identical*
//!    metrics JSON across two runs.
//! 2. **Cross-invariants** — for every cache, `hits + misses ==
//!    lookups`; the matcher scores at least as many candidates as it
//!    merges clusters; every span's child time fits inside its parent's.
//! 3. **Disabled mode** — the default `TelemetryMode::Off` run attaches
//!    no metrics anywhere and serializes to the empty document.
//! 4. **Schema golden** — the key set (names + types) of the emitted
//!    document matches `tests/golden/metrics_schema.txt`, so field
//!    renames can't slip through unnoticed.
//! 5. **Exporter goldens** — the Prometheus text rendering of the
//!    deterministic run matches `tests/golden/prometheus.txt` byte for
//!    byte, and the Chrome-trace rendering is byte-identical across
//!    runs (ISSUE 5). Regenerate goldens with
//!    `UPDATE_GOLDEN=1 cargo test --test telemetry`.

use std::sync::Mutex;

use qi_core::NamingPolicy;
use qi_eval::{evaluate_corpus_with, Panel, RunConfig};
use qi_lexicon::Lexicon;
use qi_mapping::{match_by_labels_stats, MatcherConfig};
use qi_runtime::{MetricsSnapshot, TelemetryMode};

/// The Porter stem cache is process-global and these tests both reset
/// it and assert on deltas attributed from it, so they must not overlap
/// in time. (Integration tests in one binary share the process.)
static STEM_CACHE_GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    STEM_CACHE_GUARD
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One seven-domain metrics document, built exactly like the CLI's
/// `qi eval --metrics` emission: the corpus evaluation's merged
/// snapshot plus a per-domain clustering probe (the evaluation itself
/// runs from ground-truth clusters, so the matcher is exercised
/// separately).
fn seven_domain_document(mode: TelemetryMode) -> MetricsSnapshot {
    qi_text::porter::stem_cache_reset();
    let lexicon = Lexicon::builtin();
    let domains = qi_datasets::all_domains();
    let result = evaluate_corpus_with(
        &domains,
        &lexicon,
        NamingPolicy::default(),
        Panel::default(),
        RunConfig {
            threads: 1,
            telemetry: mode,
            ..RunConfig::default()
        },
    );
    assert!(result.failed.is_empty(), "{:?}", result.failed);
    assert_eq!(result.domains.len(), 7);
    let probe = mode.build();
    for domain in &domains {
        let timer = probe.timed("eval.cluster");
        let (_, stats) = match_by_labels_stats(&domain.schemas, &lexicon, MatcherConfig::default());
        drop(timer);
        stats.record(&probe);
    }
    let mut merged = result.metrics.clone();
    merged.merge(&probe.snapshot());
    merged
}

#[test]
fn seven_domain_metrics_json_is_byte_identical_across_runs() {
    let _guard = lock();
    let first = seven_domain_document(TelemetryMode::Deterministic).to_json();
    let second = seven_domain_document(TelemetryMode::Deterministic).to_json();
    assert!(first.len() > 2, "document suspiciously small: {first}");
    assert_eq!(
        first, second,
        "deterministic runs must serialize identically"
    );
}

#[test]
fn counters_satisfy_cross_invariants() {
    let _guard = lock();
    let doc = seven_domain_document(TelemetryMode::Deterministic);

    // Every cache reports hits + misses == lookups.
    let mut caches = 0usize;
    for (name, lookups) in &doc.counters {
        let Some(cache) = name
            .strip_prefix("cache.")
            .and_then(|rest| rest.strip_suffix(".lookups"))
        else {
            continue;
        };
        caches += 1;
        let hits = doc.counters[&format!("cache.{cache}.hits")];
        let misses = doc.counters[&format!("cache.{cache}.misses")];
        assert_eq!(
            hits + misses,
            *lookups,
            "cache {cache}: {hits} + {misses} != {lookups}"
        );
    }
    // All six instrumented caches are present: three lexicon memos, the
    // stemmer, and the two per-run naming-context caches.
    assert_eq!(caches, 6, "cache names: {:?}", doc.counters.keys());

    // The matcher scores at least as many candidates as it accepts, and
    // accepts at least as many pairs as it merges clusters (a merge
    // consumes an accepted pair; redundant pairs don't merge anything).
    let counter = |name: &str| {
        *doc.counters
            .get(name)
            .unwrap_or_else(|| panic!("missing counter {name}: {:?}", doc.counters.keys()))
    };
    let scored = counter("matcher.pairs_scored");
    let accepted = counter("matcher.pairs_accepted");
    let merged = counter("matcher.clusters_merged");
    assert!(scored >= accepted, "{scored} scored < {accepted} accepted");
    assert!(accepted >= merged, "{accepted} accepted < {merged} merged");
    assert!(merged > 0, "seven domains must merge some clusters");
    assert!(counter("matcher.pairs_generated") >= scored);
    assert!(counter("matcher.fields_total") >= counter("matcher.fields_labeled"));

    // Spans nest: every child's accumulated time fits inside its
    // parent's. (The deterministic clock makes this exact, not racy.)
    let mut nested = 0usize;
    for (name, data) in &doc.spans {
        if let Some(parent) = doc.parent_span(name) {
            nested += 1;
            let parent_data = doc.spans[parent];
            assert!(
                data.total_ns <= parent_data.total_ns,
                "span {name} ({data:?}) exceeds parent {parent} ({parent_data:?})"
            );
        }
    }
    assert!(nested >= 3, "span names: {:?}", doc.spans.keys());

    // The labeler phase counters agree with the span structure: seven
    // domains, each entering every phase once.
    assert_eq!(doc.counters["eval.domains"], 7);
    assert_eq!(doc.spans["eval.domain"].count, 7);
    assert_eq!(doc.spans["label"].count, 7);
    assert_eq!(doc.spans["eval.cluster"].count, 7);

    // Every histogram fed by a `timed` guard shares one clock pair with
    // the same-named span: identical counts and identical total time.
    assert!(!doc.histograms.is_empty(), "{:?}", doc.histograms.keys());
    for (name, hist) in &doc.histograms {
        let span = doc
            .spans
            .get(name)
            .unwrap_or_else(|| panic!("histogram {name} has no matching span"));
        assert_eq!(hist.count(), span.count, "histogram {name} count");
        assert_eq!(hist.sum, span.total_ns, "histogram {name} sum");
        assert!(hist.quantile(0.50) <= hist.quantile(0.99), "{name}");
        assert!(hist.quantile(0.99) <= hist.max, "{name}");
    }
    assert!(
        doc.histograms.contains_key("label"),
        "labeler phases must publish latency histograms: {:?}",
        doc.histograms.keys()
    );
}

#[test]
fn disabled_mode_emits_nothing() {
    let _guard = lock();
    let lexicon = Lexicon::builtin();
    let domains = vec![qi_datasets::auto::domain(), qi_datasets::job::domain()];
    let result = evaluate_corpus_with(
        &domains,
        &lexicon,
        NamingPolicy::default(),
        Panel::default(),
        RunConfig {
            threads: 1,
            ..RunConfig::default()
        },
    );
    assert!(result.failed.is_empty());
    assert!(result.metrics.is_empty(), "{:?}", result.metrics);
    for row in &result.domains {
        assert!(row.metrics.is_empty(), "{}: {:?}", row.name, row.metrics);
    }
    assert_eq!(
        result.metrics.to_json(),
        "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"spans\":{}}"
    );
}

/// Compare `actual` against a committed golden file, rewriting the
/// golden when `UPDATE_GOLDEN=1` is set (same pattern as the snapshot
/// byte-layout golden).
fn assert_matches_golden(actual: &str, file: &str, what: &str) {
    let path = format!("{}/tests/golden/{file}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("writing golden file");
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("tests/golden/{file} is committed: {e}"));
    assert_eq!(
        actual, golden,
        "{what} drifted from tests/golden/{file}; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn metrics_schema_matches_golden() {
    let _guard = lock();
    let schema = seven_domain_document(TelemetryMode::Deterministic).schema();
    assert_matches_golden(&schema, "metrics_schema.txt", "metrics document schema");
}

#[test]
fn prometheus_exposition_matches_golden_and_is_deterministic() {
    let _guard = lock();
    let first = qi_runtime::prometheus_text(&seven_domain_document(TelemetryMode::Deterministic));
    let second = qi_runtime::prometheus_text(&seven_domain_document(TelemetryMode::Deterministic));
    assert_eq!(
        first, second,
        "deterministic runs must render identical Prometheus text"
    );
    assert_matches_golden(&first, "prometheus.txt", "Prometheus exposition");
}

/// A deterministic flight-recorder + time-series run: the virtual
/// clock advances a fixed step per reading, so two runs must serialize
/// the windowed history document byte-for-byte (the ISSUE 10
/// acceptance golden).
fn deterministic_history_document() -> String {
    let telemetry =
        qi_runtime::Telemetry::deterministic().attach_events(qi_runtime::EventRecorder::new(16));
    let series = qi_runtime::TimeSeries::new(1_000_000, 8);
    for window in 0..3u64 {
        for request in 0..=window {
            telemetry.incr("serve.requests");
            telemetry.observe("serve.latency", 1_000 * (request + 1));
        }
        telemetry.gauge("serve.queue.depth", window);
        telemetry.event(
            qi_runtime::Severity::Info,
            qi_runtime::Category::Cache,
            "cache.invalidate",
            || vec![("slug", "auto".into()), ("entries", window.into())],
        );
        series.tick(&telemetry);
    }
    series.history_json(8)
}

#[test]
fn metrics_history_matches_golden_and_is_byte_identical() {
    let first = deterministic_history_document();
    let second = deterministic_history_document();
    assert_eq!(
        first, second,
        "deterministic runs must serialize identical history documents"
    );
    // Counters become per-window increments: each window carries only
    // its own activity, and the recorder's bookkeeping counters flow
    // through the same delta pipeline.
    assert!(first.contains("\"serve.requests\":1"), "{first}");
    assert!(first.contains("\"serve.requests\":3"), "{first}");
    assert!(first.contains("\"events.emitted\":1"), "{first}");
    assert_matches_golden(&first, "metrics_history.json", "windowed metrics history");
}

#[test]
fn chrome_trace_is_byte_identical_across_deterministic_runs() {
    let _guard = lock();
    let first = qi_runtime::chrome_trace(&seven_domain_document(TelemetryMode::Deterministic));
    let second = qi_runtime::chrome_trace(&seven_domain_document(TelemetryMode::Deterministic));
    assert!(
        first.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
        "{first}"
    );
    assert!(first.contains("\"name\":\"label\""), "{first}");
    assert_eq!(
        first, second,
        "deterministic runs must render identical Chrome traces"
    );
}
