//! Golden-snapshot tests: the fully labeled integrated interface of every
//! corpus domain, byte-for-byte. Any change to the text pipeline, the
//! lexicon, the merge, or the naming algorithm that alters an output
//! label shows up here as a readable diff.
//!
//! To regenerate after an *intentional* change, write the new render of
//! each labeled tree to `tests/golden/<domain>.qis` (see
//! `qi_schema::text_format::render`) and review the diff.

use qi_core::{Labeler, NamingPolicy};
use qi_lexicon::Lexicon;

fn labeled_render(domain: qi_datasets::Domain) -> String {
    let prepared = domain.prepare();
    let lexicon = Lexicon::builtin();
    let labeler = Labeler::new(&lexicon, NamingPolicy::default());
    let labeled = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
    qi_schema::text_format::render(&labeled.tree)
}

fn check(domain: qi_datasets::Domain, golden: &str) {
    let name = domain.name.clone();
    let actual = labeled_render(domain);
    assert_eq!(
        actual, golden,
        "{name}: labeled integrated interface changed; \
         if intentional, update tests/golden/"
    );
}

#[test]
fn golden_airline() {
    check(
        qi_datasets::airline::domain(),
        include_str!("golden/airline.qis"),
    );
}

#[test]
fn golden_auto() {
    check(qi_datasets::auto::domain(), include_str!("golden/auto.qis"));
}

#[test]
fn golden_book() {
    check(qi_datasets::book::domain(), include_str!("golden/book.qis"));
}

#[test]
fn golden_job() {
    check(qi_datasets::job::domain(), include_str!("golden/job.qis"));
}

#[test]
fn golden_real_estate() {
    check(
        qi_datasets::real_estate::domain(),
        include_str!("golden/real_estate.qis"),
    );
}

#[test]
fn golden_car_rental() {
    check(
        qi_datasets::car_rental::domain(),
        include_str!("golden/car_rental.qis"),
    );
}

#[test]
fn golden_hotels() {
    check(
        qi_datasets::hotels::domain(),
        include_str!("golden/hotels.qis"),
    );
}

/// The golden snapshots themselves parse back (they are valid corpus
/// artifacts, not just strings).
#[test]
fn golden_files_parse() {
    for text in [
        include_str!("golden/airline.qis"),
        include_str!("golden/auto.qis"),
        include_str!("golden/book.qis"),
        include_str!("golden/job.qis"),
        include_str!("golden/real_estate.qis"),
        include_str!("golden/car_rental.qis"),
        include_str!("golden/hotels.qis"),
    ] {
        let tree = qi_schema::text_format::parse(text).unwrap();
        assert!(tree.leaves().count() >= 18);
    }
}
