//! Robustness: degenerate inputs, degraded modes and failure injection.
//! The library must error (or degrade) cleanly, never panic, on the
//! inputs a careless caller can produce.

use qi::{Lexicon, NamingPolicy};
use qi_core::Labeler;
use qi_eval::{Panel, PanelConfig};
use qi_mapping::{expand_one_to_many, FieldRef, Mapping, MappingError};
use qi_schema::{
    spec::{leaf, unlabeled_leaf},
    NodeId, SchemaTree,
};

/// A single source interface is a valid "integration".
#[test]
fn single_interface_pipeline() {
    let a = SchemaTree::build("solo", vec![leaf("Make"), leaf("Model")]).unwrap();
    let leaves = a.descendant_leaves(NodeId::ROOT);
    let mapping = Mapping::from_clusters(vec![
        ("make".to_string(), vec![FieldRef::new(0, leaves[0])]),
        ("model".to_string(), vec![FieldRef::new(0, leaves[1])]),
    ]);
    let lexicon = Lexicon::builtin();
    let labeled = qi::integrate_and_label(vec![a], mapping, &lexicon, NamingPolicy::default());
    let labels: Vec<&str> = labeled.tree.leaves().map(|l| l.label_str()).collect();
    assert_eq!(labels, vec!["Make", "Model"]);
}

/// An empty mapping produces an empty (but valid) integrated tree — the
/// merge has nothing to place.
#[test]
fn empty_mapping_merges_to_root_only() {
    let a = SchemaTree::build("a", vec![leaf("X")]).unwrap();
    let schemas = vec![a];
    let mapping = Mapping::from_clusters(Vec::<(String, Vec<FieldRef>)>::new());
    let integrated = qi_merge::merge(&schemas, &mapping);
    assert_eq!(integrated.tree.leaves().count(), 0);
    // Labeling it is a no-op, not a panic.
    let lexicon = Lexicon::builtin();
    let labeler = Labeler::new(&lexicon, NamingPolicy::default());
    let labeled = labeler.label(&schemas, &mapping, &integrated);
    assert!(labeled.report.class.is_some());
}

/// All-unlabeled sources: the pipeline runs; every field stays unlabeled
/// and the report says so.
#[test]
fn fully_unlabeled_domain_degrades_cleanly() {
    let a = SchemaTree::build("a", vec![unlabeled_leaf(), unlabeled_leaf()]).unwrap();
    let b = SchemaTree::build("b", vec![unlabeled_leaf(), unlabeled_leaf()]).unwrap();
    let (al, bl) = (
        a.descendant_leaves(NodeId::ROOT),
        b.descendant_leaves(NodeId::ROOT),
    );
    let mapping = Mapping::from_clusters(vec![
        (
            "c0".to_string(),
            vec![FieldRef::new(0, al[0]), FieldRef::new(1, bl[0])],
        ),
        (
            "c1".to_string(),
            vec![FieldRef::new(0, al[1]), FieldRef::new(1, bl[1])],
        ),
    ]);
    let lexicon = Lexicon::builtin();
    let labeled = qi::integrate_and_label(vec![a, b], mapping, &lexicon, NamingPolicy::default());
    assert_eq!(labeled.report.unlabeled_fields, 2);
    assert!(labeled.tree.leaves().all(|l| l.label.is_none()));
}

/// The empty lexicon is a degraded mode, not a failure: string and
/// equality levels still work (Porter stemming needs no lexicon), so the
/// corpus still labels nearly everything.
#[test]
fn empty_lexicon_degrades_not_fails() {
    let lexicon = Lexicon::empty();
    let prepared = qi_datasets::auto::domain().prepare();
    let labeler = Labeler::new(&lexicon, NamingPolicy::default());
    let labeled = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
    let labeled_fields = labeled.tree.leaves().filter(|l| l.label.is_some()).count();
    let total = labeled.tree.leaves().count();
    assert!(
        labeled_fields as f64 / total as f64 > 0.9,
        "{labeled_fields}/{total}"
    );
}

/// Unicode labels flow through tokenization, stemming, normalization and
/// the full pipeline without panicking.
#[test]
fn unicode_labels_are_safe() {
    let a = SchemaTree::build("a", vec![leaf("Prix €"), leaf("Ciudad 城市")]).unwrap();
    let b = SchemaTree::build("b", vec![leaf("Prix €"), leaf("Ciudad 城市")]).unwrap();
    let (al, bl) = (
        a.descendant_leaves(NodeId::ROOT),
        b.descendant_leaves(NodeId::ROOT),
    );
    let mapping = Mapping::from_clusters(vec![
        (
            "price".to_string(),
            vec![FieldRef::new(0, al[0]), FieldRef::new(1, bl[0])],
        ),
        (
            "city".to_string(),
            vec![FieldRef::new(0, al[1]), FieldRef::new(1, bl[1])],
        ),
    ]);
    let lexicon = Lexicon::builtin();
    let labeled = qi::integrate_and_label(vec![a, b], mapping, &lexicon, NamingPolicy::default());
    assert!(labeled.tree.leaves().all(|l| l.label.is_some()));
}

/// Mapping validation rejects every malformed shape with the right error.
#[test]
fn mapping_validation_error_taxonomy() {
    let a = SchemaTree::build("a", vec![leaf("X"), leaf("Y")]).unwrap();
    let leaves = a.descendant_leaves(NodeId::ROOT);
    let schemas = vec![a];
    // 1:m form.
    let one_to_many = Mapping::from_clusters(vec![
        ("c0".to_string(), vec![FieldRef::new(0, leaves[0])]),
        ("c1".to_string(), vec![FieldRef::new(0, leaves[0])]),
    ]);
    assert!(matches!(
        one_to_many.validate(&schemas),
        Err(MappingError::OneToMany { .. })
    ));
    // Dangling schema index.
    let dangling =
        Mapping::from_clusters(vec![("c0".to_string(), vec![FieldRef::new(9, leaves[0])])]);
    assert!(matches!(
        dangling.validate(&schemas),
        Err(MappingError::SchemaOutOfRange { .. })
    ));
    // Non-leaf reference.
    let non_leaf = Mapping::from_clusters(vec![(
        "c0".to_string(),
        vec![FieldRef::new(0, NodeId::ROOT)],
    )]);
    assert!(matches!(
        non_leaf.validate(&schemas),
        Err(MappingError::NotAField { .. })
    ));
    // Errors render as messages.
    for error in [
        one_to_many.validate(&schemas).unwrap_err(),
        dangling.validate(&schemas).unwrap_err(),
        non_leaf.validate(&schemas).unwrap_err(),
    ] {
        assert!(!error.to_string().is_empty());
    }
}

/// 1:m expansion is idempotent: running it twice changes nothing.
#[test]
fn expansion_is_idempotent() {
    let domain = qi_datasets::airline::domain();
    let mut schemas = domain.schemas.clone();
    let mut mapping = domain.mapping.clone();
    expand_one_to_many(&mut schemas, &mut mapping);
    let (schemas_snapshot, mapping_snapshot) = (schemas.clone(), mapping.clone());
    let second = expand_one_to_many(&mut schemas, &mut mapping);
    assert!(second.expanded.is_empty());
    assert_eq!(schemas, schemas_snapshot);
    assert_eq!(mapping, mapping_snapshot);
}

/// Degenerate panels behave: zero judges, zero probabilities, huge seeds.
#[test]
fn panel_degenerate_configs() {
    let prepared = qi_datasets::auto::domain().prepare();
    let lexicon = Lexicon::builtin();
    let labeler = Labeler::new(&lexicon, NamingPolicy::default());
    let labeled = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
    for config in [
        PanelConfig {
            judges: 0,
            ..PanelConfig::default()
        },
        PanelConfig {
            flag_probability: 0.0,
            source_blame_probability: 0.0,
            ..PanelConfig::default()
        },
        PanelConfig {
            flag_probability: 1.0,
            source_blame_probability: 1.0,
            seed: u64::MAX,
            ..PanelConfig::default()
        },
    ] {
        let (ha, ha_star) =
            Panel::new(config).survey("Auto", &labeled, &prepared.schemas, &prepared.mapping);
        assert!((0.0..=1.0).contains(&ha), "{config:?}: HA {ha}");
        assert!(ha_star >= ha - 1e-12, "{config:?}");
        assert!(ha_star <= 1.0 + 1e-12);
    }
}

/// The labeler is a pure function of its inputs: corpus-wide determinism.
#[test]
fn corpus_labeling_is_deterministic() {
    let lexicon = Lexicon::builtin();
    for domain in [
        qi_datasets::hotels::domain(),
        qi_datasets::car_rental::domain(),
    ] {
        let prepared = domain.prepare();
        let labeler = Labeler::new(&lexicon, NamingPolicy::default());
        let a = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
        let b = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
        assert_eq!(a.tree, b.tree);
        assert_eq!(a.report, b.report);
    }
}
