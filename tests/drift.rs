//! Drift-corpus integration tests: seeded determinism end to end
//! (corpus bytes, snapshot bytes, metrics documents), seed independence,
//! and the cloned-vs-drifted cache contrast that pins
//! `replicate_schemas`' role as a throughput baseline — not a cache
//! ceiling — next to the verbatim-clone regime that *is* the ceiling.

use qi_core::NamingPolicy;
use qi_datasets::{all_domains, generate_drift_corpus, replicate_schemas, DriftConfig};
use qi_lexicon::Lexicon;
use qi_mapping::{match_by_labels_with, MatcherConfig};
use qi_runtime::Telemetry;
use qi_serve::{build_artifact, Snapshot};
use std::collections::HashSet;
use std::process::Command;

fn small() -> DriftConfig {
    DriftConfig {
        domains: 3,
        interfaces: 8,
        concepts: 12,
        ..DriftConfig::default()
    }
}

/// Every label token of a corpus, for vocabulary comparisons.
fn vocabulary(corpus: &[qi_datasets::Domain]) -> HashSet<String> {
    let mut words = HashSet::new();
    for domain in corpus {
        for schema in &domain.schemas {
            for node in schema.nodes() {
                if let Some(label) = node.label.as_deref() {
                    for word in label.split_whitespace() {
                        words.insert(word.to_string());
                    }
                }
            }
        }
    }
    words
}

/// The same seed must reproduce the corpus byte for byte — through the
/// text rendering of every interface AND through the full pipeline +
/// snapshot encoding, so a committed drift snapshot is reproducible
/// from its `DriftConfig` alone.
#[test]
fn same_seed_is_byte_identical_through_snapshot() {
    let lexicon = Lexicon::builtin();
    let render = |corpus: &[qi_datasets::Domain]| -> String {
        corpus
            .iter()
            .flat_map(|d| &d.schemas)
            .map(qi_schema::text_format::render)
            .collect()
    };
    let first = generate_drift_corpus(&small(), &lexicon);
    let second = generate_drift_corpus(&small(), &lexicon);
    assert_eq!(render(&first), render(&second));

    let snapshot_bytes = |corpus: &[qi_datasets::Domain]| -> Vec<u8> {
        let policy = NamingPolicy::default();
        let telemetry = Telemetry::off();
        // Fresh caches per run: determinism must not depend on what an
        // earlier pipeline happened to memoize.
        lexicon.reset_caches();
        Snapshot {
            policy,
            domains: corpus
                .iter()
                .map(|d| build_artifact(d, &lexicon, policy, &telemetry))
                .collect(),
        }
        .to_bytes()
    };
    let bytes = snapshot_bytes(&first);
    let again = snapshot_bytes(&second);
    assert_eq!(bytes, again, "snapshot encodings diverged");
    // And the encoding round-trips.
    let decoded = Snapshot::from_bytes(&bytes).expect("decoding own encoding");
    assert_eq!(decoded.to_bytes(), bytes);
}

/// Different seeds must generate materially different corpora — the
/// whole point of the seed sweep in scaled runs is that domains do not
/// repeat one vocabulary.
#[test]
fn different_seeds_produce_distinct_vocabularies() {
    let lexicon = Lexicon::builtin();
    let a = vocabulary(&generate_drift_corpus(&small(), &lexicon));
    let b = vocabulary(&generate_drift_corpus(
        &DriftConfig {
            seed: small().seed ^ 0xDEAD_BEEF,
            ..small()
        },
        &lexicon,
    ));
    let only_a = a.difference(&b).count();
    let only_b = b.difference(&a).count();
    assert!(
        only_a > 10 && only_b > 10,
        "seed change barely moved the vocabulary: {only_a} / {only_b} exclusive words"
    );
}

/// `qi synth --drift --export` + `qi label --metrics
/// --deterministic-timers` twice, in separate processes: the exported
/// corpus and the resulting metrics documents must be byte-identical.
#[test]
fn cli_drift_export_and_metrics_are_deterministic() {
    let dir = std::env::temp_dir().join(format!("qi-drift-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let export = |name: &str| -> std::path::PathBuf {
        let out = dir.join(name);
        let status = Command::new(env!("CARGO_BIN_EXE_qi"))
            .args(["synth", "--drift", "--domains", "1", "--export"])
            .arg(&out)
            .output()
            .expect("run qi synth");
        assert!(status.status.success(), "{:?}", status);
        out.join("drift0")
    };
    let first = export("a");
    let second = export("b");
    let mut files: Vec<String> = std::fs::read_dir(&first)
        .expect("exported domain dir")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    files.sort();
    assert!(!files.is_empty());
    for name in &files {
        assert_eq!(
            std::fs::read(first.join(name)).unwrap(),
            std::fs::read(second.join(name)).unwrap(),
            "{name} differs between exports"
        );
    }

    let metrics = |exported: &std::path::Path, out: &str| -> Vec<u8> {
        let path = dir.join(out);
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_qi"));
        cmd.args(["label", "--deterministic-timers", "--metrics"]);
        cmd.arg(&path);
        for name in &files {
            cmd.arg(exported.join(name));
        }
        let output = cmd.output().expect("run qi label");
        assert!(
            output.status.success(),
            "{}",
            String::from_utf8_lossy(&output.stderr)
        );
        std::fs::read(&path).expect("metrics document")
    };
    let m1 = metrics(&first, "m1.json");
    let m2 = metrics(&second, "m2.json");
    assert!(!m1.is_empty());
    assert_eq!(m1, m2, "metrics documents diverged across processes");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Morphology cache-hit rate of a corpus, measured from reset caches.
/// Only the morphology (`base_form`) cache is probed once per token
/// occurrence; see `Lexicon::morph_cache_stats`.
fn morph_rate(schemas: &[qi_schema::SchemaTree], lexicon: &Lexicon, fuzzy: bool) -> f64 {
    lexicon.reset_caches();
    let before = lexicon.morph_cache_stats();
    let config = MatcherConfig {
        fuzzy,
        ..MatcherConfig::default()
    };
    std::hint::black_box(match_by_labels_with(schemas, lexicon, config));
    lexicon.morph_cache_stats().delta_since(&before).hit_rate()
}

/// Pins the cache regimes the scaled benchmarks compare (and documents
/// the `replicate_schemas` decision): *verbatim* clones are the cache
/// ceiling — every surface repeats, per-occurrence lexicon lookups hit
/// on all but the first copy. *Renamed* replicas (`replicate_schemas`)
/// are deliberately NOT that ceiling: renaming every token makes the
/// vocabulary grow linearly with the replica count, which keeps the
/// matcher-throughput benchmark honest but would *understate* how
/// flattering naive cloning is to caches. The drift corpus must sit
/// materially below the verbatim ceiling.
#[test]
fn verbatim_clones_are_the_cache_ceiling_drift_sits_below() {
    let lexicon = Lexicon::builtin();
    let base = all_domains().remove(0).schemas;

    let mut verbatim = Vec::with_capacity(base.len() * 10);
    for _ in 0..10 {
        verbatim.extend_from_slice(&base);
    }
    let verbatim_rate = morph_rate(&verbatim, &lexicon, false);

    let renamed = replicate_schemas(&base, 10);
    let renamed_rate = morph_rate(&renamed, &lexicon, false);

    let drift = generate_drift_corpus(&small(), &lexicon);
    let drift_schemas: Vec<qi_schema::SchemaTree> = drift
        .iter()
        .flat_map(|d| d.schemas.iter().cloned())
        .collect();
    let drift_rate = morph_rate(&drift_schemas, &lexicon, true);

    assert!(
        verbatim_rate > 0.97,
        "verbatim clones should hit on nearly every lookup: {verbatim_rate:.4}"
    );
    assert!(
        verbatim_rate > drift_rate + 0.02,
        "drift corpus not materially below the cloned ceiling: \
         cloned {verbatim_rate:.4} vs drift {drift_rate:.4}"
    );
    assert!(
        verbatim_rate > renamed_rate + 0.02,
        "renamed replicas should miss far more than verbatim clones: \
         verbatim {verbatim_rate:.4} vs renamed {renamed_rate:.4}"
    );
}
