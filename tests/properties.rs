//! Property-based tests (proptest) over the core data structures and
//! invariants: the text pipeline, Definition 1 relations, the merge
//! substrate and the naming algorithm on randomly generated domains.
//!
//! Gated behind the non-default `proptest` feature so the default
//! `cargo test -q` stays lean. The suite runs against the in-repo
//! `crates/proptest` shim (same API subset, deterministic PRNG, no
//! shrinking — the real crate is unfetchable in the offline build
//! environment); `scripts/check.sh` invokes it via
//! `cargo test --features proptest`. On a networked machine the root
//! dev-dependency can point back at `proptest = "1"` unchanged.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use qi::{Lexicon, NamingPolicy};
use qi_core::{ctx::NamingCtx, relations::relate, Labeler};
use qi_datasets::{SynthConfig, SynthDomain};
use qi_schema::NodeId;
use qi_text::{display_normalize, stem, tokenize, LabelText};

proptest! {
    /// The stemmer never panics, never grows a word, and is
    /// deterministic on arbitrary (including non-ASCII) input.
    #[test]
    fn porter_stem_total_and_shrinking(word in ".{0,24}") {
        let once = stem(&word);
        prop_assert!(once.len() <= word.len().max(2) + 1);
        prop_assert_eq!(stem(&word), once);
    }

    /// Lowercase ASCII words stem to lowercase ASCII.
    #[test]
    fn porter_stem_preserves_ascii(word in "[a-z]{1,16}") {
        let stemmed = stem(&word);
        prop_assert!(stemmed.bytes().all(|b| b.is_ascii_lowercase()));
        prop_assert!(!stemmed.is_empty());
    }

    /// Tokenization yields lowercase alphanumeric tokens only, and
    /// display normalization is idempotent.
    #[test]
    fn tokenize_and_normalize_shape(label in ".{0,48}") {
        for token in tokenize(&label) {
            prop_assert!(!token.is_empty());
            prop_assert!(token.chars().all(|c| c.is_ascii_alphanumeric()));
            prop_assert!(!token.chars().any(|c| c.is_ascii_uppercase()));
        }
        let display = display_normalize(&label);
        prop_assert_eq!(display_normalize(&display), display.clone());
    }

    /// Definition 1 relations are antisymmetric under flip: computing in
    /// the opposite order yields the flipped relation.
    #[test]
    fn relations_flip_symmetry(a in "[A-Za-z ]{1,20}", b in "[A-Za-z ]{1,20}") {
        let lexicon = Lexicon::builtin();
        let ta = LabelText::new(&a, &lexicon);
        let tb = LabelText::new(&b, &lexicon);
        let ab = relate(&ta, &tb, &lexicon);
        let ba = relate(&tb, &ta, &lexicon);
        prop_assert_eq!(ab.flip(), ba);
    }

    /// A label always relates to itself at the string-equal level (unless
    /// empty).
    #[test]
    fn relations_reflexive(a in "[A-Za-z ]{1,20}") {
        let lexicon = Lexicon::builtin();
        let ta = LabelText::new(&a, &lexicon);
        let rel = relate(&ta, &ta, &lexicon);
        if ta.is_empty() {
            prop_assert_eq!(rel, qi_core::LabelRelation::Unrelated);
        } else {
            prop_assert_eq!(rel, qi_core::LabelRelation::StringEqual);
        }
    }

    /// The memoizing context agrees with the direct computation.
    #[test]
    fn ctx_matches_direct(a in "[A-Za-z ]{1,16}", b in "[A-Za-z ]{1,16}") {
        let lexicon = Lexicon::builtin();
        let ctx = NamingCtx::new(&lexicon);
        let direct = relate(
            &LabelText::new(&a, &lexicon),
            &LabelText::new(&b, &lexicon),
            &lexicon,
        );
        prop_assert_eq!(ctx.relate(&a, &b), direct);
        prop_assert_eq!(ctx.relate(&a, &b), direct); // cached path
    }
}

proptest! {
    /// Histogram quantiles against a sorted-vector oracle on random u64
    /// samples: the estimate is always ≥ the true order statistic, and
    /// both fall in the same log-linear bucket (bounded relative error).
    /// Samples derive from a seeded SplitMix64 stream so the shim only
    /// has to generate `(seed, len, q)` — it has no `collection::vec`.
    #[test]
    fn histogram_quantiles_match_sorted_oracle(
        seed in any::<u64>(),
        len in 1usize..64,
        q in 0.0f64..1.0,
    ) {
        use qi_runtime::histogram::{bucket_index, bucket_upper};

        let mut rng = qi_runtime::SplitMix64::new(seed);
        // Mix magnitudes: tiny values, mid-range, and full-width u64s,
        // so both the linear low buckets and log high buckets are hit.
        let samples: Vec<u64> = (0..len)
            .map(|_| {
                let raw = rng.next_u64();
                match raw % 3 {
                    0 => raw % 1000,
                    1 => raw % 1_000_000_000,
                    _ => raw,
                }
            })
            .collect();

        let hist = qi_runtime::Histogram::new();
        for &value in &samples {
            hist.record(value);
        }
        let data = hist.data();

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(data.count(), len as u64, "count");
        prop_assert_eq!(data.max, *sorted.last().unwrap(), "max");
        let sum: u64 = samples.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(data.sum, sum, "sum");

        // The oracle order statistic: the same "smallest value with
        // rank ≥ ceil(q·count)" definition the histogram implements,
        // evaluated exactly on the sorted samples.
        let rank = ((q * len as f64).ceil() as usize).clamp(1, len);
        let truth = sorted[rank - 1];
        let estimate = data.quantile(q);
        prop_assert!(
            estimate >= truth,
            "q={} estimate {} < true order statistic {}",
            q, estimate, truth
        );
        prop_assert_eq!(
            estimate,
            bucket_upper(bucket_index(truth)).min(data.max),
            "estimate must be the truth's own bucket upper bound (clamped to max)"
        );

        // Merging two disjoint halves reproduces the whole.
        let left = qi_runtime::Histogram::new();
        let right = qi_runtime::Histogram::new();
        for (i, &value) in samples.iter().enumerate() {
            if i % 2 == 0 { left.record(value) } else { right.record(value) }
        }
        left.absorb(&right.data());
        prop_assert_eq!(left.data(), data, "absorb of a split must equal the whole");
    }
}

/// Strategy for small synthetic domain configurations.
fn synth_config() -> impl Strategy<Value = SynthConfig> {
    (
        any::<u64>(),
        3usize..10,
        4usize..16,
        1usize..5,
        0.3f64..0.9,
        0.0f64..0.4,
    )
        .prop_map(
            |(seed, interfaces, concepts, groups, coverage, unlabeled)| SynthConfig {
                seed,
                interfaces,
                concepts,
                groups,
                coverage,
                unlabeled_prob: unlabeled,
                group_label_prob: 0.7,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Merge invariants on random domains: every cluster appears as
    /// exactly one integrated leaf, the tree validates, and the partition
    /// classes cover the clusters disjointly.
    #[test]
    fn merge_invariants(config in synth_config()) {
        let synth = SynthDomain::generate(config);
        let prepared = synth.domain.prepare();
        prepared.mapping.validate(&prepared.schemas).unwrap();
        prepared.integrated.tree.validate().unwrap();
        let leaves = prepared.integrated.tree.leaves().count();
        prop_assert_eq!(leaves, prepared.mapping.len());
        // Each cluster maps to exactly one leaf.
        for cluster in &prepared.mapping.clusters {
            prop_assert!(prepared.integrated.leaf_of_cluster(cluster.id).is_some());
        }
        // Partition classes are disjoint and complete.
        let partition = prepared.integrated.partition();
        let grouped: usize = partition.groups.iter().map(|g| g.clusters.len()).sum();
        prop_assert_eq!(
            grouped + partition.root.len() + partition.isolated.len(),
            prepared.mapping.len()
        );
    }

    /// Grouping constraint: fields grouped together on EVERY source that
    /// carries both stay together in the integrated interface whenever
    /// their group's bag survives (they are never split to the root if a
    /// source grouped them and no conflicting evidence exists). Weak form:
    /// the merge never *loses* leaves and never duplicates them.
    #[test]
    fn merge_preserves_leaf_multiplicity(config in synth_config()) {
        let synth = SynthDomain::generate(config);
        let prepared = synth.domain.prepare();
        let mut seen = std::collections::BTreeSet::new();
        for leaf in prepared.integrated.tree.descendant_leaves(NodeId::ROOT) {
            let cluster = prepared.integrated.cluster_of_leaf(leaf).unwrap();
            prop_assert!(seen.insert(cluster), "cluster duplicated");
        }
    }

    /// Naming invariants on random domains: assigned field labels come
    /// from the cluster's own members; the report classification exists;
    /// label assignment is deterministic.
    #[test]
    fn naming_invariants(config in synth_config()) {
        let synth = SynthDomain::generate(config);
        let prepared = synth.domain.prepare();
        let lexicon = Lexicon::builtin();
        let labeler = Labeler::new(&lexicon, NamingPolicy::default());
        let a = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
        let b = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
        prop_assert_eq!(a.tree.clone(), b.tree.clone(), "nondeterministic labeling");
        prop_assert!(a.report.class.is_some());
        for leaf in a.tree.leaves() {
            let Some(label) = &leaf.label else { continue };
            let cluster = a.leaf_cluster[&leaf.id];
            let members = &prepared.mapping.cluster(cluster).members;
            let sourced = members.iter().any(|m| {
                prepared.schemas[m.schema].node(m.node).label.as_ref() == Some(label)
            });
            prop_assert!(sourced, "label {:?} not sourced from its cluster", label);
        }
    }

    /// FldAcc is 100% whenever every cluster has at least one labeled
    /// member (the synthetic generator guarantees it).
    #[test]
    fn synthetic_fields_all_labeled(config in synth_config()) {
        let synth = SynthDomain::generate(config);
        let prepared = synth.domain.prepare();
        let lexicon = Lexicon::builtin();
        let labeler = Labeler::new(&lexicon, NamingPolicy::default());
        let labeled = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
        for leaf in labeled.tree.leaves() {
            prop_assert!(
                leaf.label.is_some(),
                "cluster {} unlabeled despite labeled members",
                prepared.mapping.cluster(labeled.leaf_cluster[&leaf.id]).concept
            );
        }
    }
}

/// Replay the committed regression corpus explicitly. The real crate
/// replays `properties.proptest-regressions` from the recorded hashes
/// before generating novel cases; the shim cannot reconstruct inputs
/// from a hash, so instead it parses the shrunken `SynthConfig`
/// literals out of the file's comments and runs every invariant-bearing
/// property on each — the corpus keeps biting either way.
#[test]
fn regression_corpus_replays() {
    let corpus = include_str!("properties.proptest-regressions");
    let cases = proptest::regressions::parse(corpus, "SynthConfig");
    assert!(!cases.is_empty(), "regression corpus lost its cases");
    for case in &cases {
        let config = SynthConfig {
            seed: case.parse("seed"),
            interfaces: case.parse("interfaces"),
            concepts: case.parse("concepts"),
            groups: case.parse("groups"),
            coverage: case.parse("coverage"),
            unlabeled_prob: case.parse("unlabeled_prob"),
            group_label_prob: case.parse("group_label_prob"),
        };
        let synth = SynthDomain::generate(config.clone());
        let prepared = synth.domain.prepare();
        prepared.mapping.validate(&prepared.schemas).unwrap();
        prepared.integrated.tree.validate().unwrap();
        assert_eq!(
            prepared.integrated.tree.leaves().count(),
            prepared.mapping.len(),
            "{config:?}"
        );
        let lexicon = Lexicon::builtin();
        let labeler = Labeler::new(&lexicon, NamingPolicy::default());
        let a = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
        let b = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
        assert_eq!(a.tree, b.tree, "nondeterministic labeling on {config:?}");
        assert!(a.report.class.is_some(), "{config:?}");
        for leaf in a.tree.leaves() {
            assert!(leaf.label.is_some(), "{config:?}: unlabeled cluster");
        }
    }
}
