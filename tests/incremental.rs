//! Incremental-ingest equivalence property: replaying a randomized
//! ingest sequence through the delta path ([`ingest_interface`], which
//! scores only the new interface against existing clusters, extends the
//! merge and relabels only dirty nodes) must produce artifacts
//! byte-identical — through the snapshot encoding — to forcing a full
//! rebuild ([`ingest_interface_full`]) at every step.
//!
//! The label pool is engineered to exercise every delta outcome: exact
//! joins into existing clusters, morphological variants accepted by the
//! stem/synonym tiers, novel labels that become new singletons, and
//! colliding pairs (`Make` + `Makes` in one interface) that trip the
//! shared-join guard and fall back to a full rebuild. Equivalence is a
//! theorem for the guarded delta path and trivial for the fallback
//! path, so it must hold on *every* step regardless of which path ran.
//!
//! `scripts/check.sh` runs this suite as its incremental-equivalence
//! stage.

use qi_core::NamingPolicy;
use qi_lexicon::Lexicon;
use qi_runtime::{SplitMix64, Telemetry};
use qi_serve::{build_artifact, ingest_interface, ingest_interface_full, DomainArtifact, Snapshot};

/// Snapshot bytes of a single domain — the equivalence oracle. The
/// format persists everything observable (schemas, clusters, labeled
/// tree, symbols, decisions) and excludes the non-semantic carry state
/// (`version`, delta caches).
fn snapshot_bytes(policy: NamingPolicy, artifact: &DomainArtifact) -> Vec<u8> {
    Snapshot {
        policy,
        domains: vec![artifact.clone()],
    }
    .to_bytes()
}

/// Labels spanning joins, variants, singletons, and guard-tripping
/// collisions against the Auto corpus.
const POOL: &[&str] = &[
    "Make",
    "Model",
    "Price",
    "Mileage",
    "Body Style",
    "Color",
    "Year",
    "Zip Code",
    "Makes",
    "Car Model",
    "Maximum Price",
    "Warranty Months",
    "Dealer Name",
    "Fuel Type",
    "Transmission",
    "Seller Rating",
    "Interior Color",
    "Down Payment",
];

fn random_interface(rng: &mut SplitMix64, index: usize) -> qi_schema::SchemaTree {
    let count = 2 + (rng.next_u64() % 4) as usize;
    let mut picked: Vec<&str> = Vec::new();
    while picked.len() < count {
        let label = POOL[(rng.next_u64() % POOL.len() as u64) as usize];
        if !picked.contains(&label) {
            picked.push(label);
        }
    }
    let mut text = format!("interface extra{index}\n");
    for label in picked {
        text.push_str("- ");
        text.push_str(label);
        text.push('\n');
    }
    qi_schema::text_format::parse(&text).expect("generated interface parses")
}

#[test]
fn random_ingest_sequences_match_full_rebuild_byte_for_byte() {
    let lexicon = Lexicon::builtin();
    let policy = NamingPolicy::default();
    let mut delta_ingests = 0;
    for seed in 0..6u64 {
        let mut rng = SplitMix64::new(0x1abe_11ab ^ seed);
        let telemetry = Telemetry::new();
        let base = build_artifact(&qi_datasets::auto::domain(), &lexicon, policy, &telemetry);
        let mut incremental = base.clone();
        let mut full = base;
        for step in 0..5usize {
            let interface = random_interface(&mut rng, step);
            incremental = ingest_interface(
                &incremental,
                interface.clone(),
                &lexicon,
                policy,
                &telemetry,
            );
            full = ingest_interface_full(&full, interface, &lexicon, policy, &telemetry);
            assert_eq!(
                snapshot_bytes(policy, &incremental),
                snapshot_bytes(policy, &full),
                "seed {seed} step {step}: incremental and full rebuild diverged"
            );
        }
        delta_ingests += telemetry
            .snapshot()
            .counters
            .get("serve.ingest.delta")
            .copied()
            .unwrap_or(0);
    }
    // The property is vacuous if every step fell back to a full
    // rebuild; most steps must actually take the delta path.
    assert!(
        delta_ingests >= 10,
        "only {delta_ingests} of 30 ingests took the delta path"
    );
}

#[test]
fn guard_fallbacks_still_match_full_rebuild() {
    let lexicon = Lexicon::builtin();
    let policy = NamingPolicy::default();
    let telemetry = Telemetry::new();
    let base = build_artifact(&qi_datasets::auto::domain(), &lexicon, policy, &telemetry);
    // Warm up: the first ingest always rebuilds fully and captures the
    // delta carry state for the next one.
    let warm = ingest_interface(
        &base,
        qi_schema::text_format::parse("interface warm\n- Color\n- Price\n").unwrap(),
        &lexicon,
        policy,
        &telemetry,
    );
    assert!(warm.delta.is_some());

    // Two fields of one interface matching the same existing cluster
    // (`Make` exactly, `Makes` via stemming) trip the shared-join
    // guard: the delta path must refuse and fall back, and the result
    // must still equal the full rebuild bit for bit.
    let tricky = qi_schema::text_format::parse("interface tricky\n- Make\n- Makes\n").unwrap();
    let incremental = ingest_interface(&warm, tricky.clone(), &lexicon, policy, &telemetry);
    let full = ingest_interface_full(&warm, tricky, &lexicon, policy, &telemetry);
    assert_eq!(
        snapshot_bytes(policy, &incremental),
        snapshot_bytes(policy, &full)
    );
    let counters = telemetry.snapshot().counters;
    let fallbacks: u64 = counters
        .iter()
        .filter(|(name, _)| name.starts_with("serve.ingest.fallback."))
        .map(|(_, &n)| n)
        .sum();
    assert!(fallbacks >= 1, "no fallback recorded: {counters:?}");
}
