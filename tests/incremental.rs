//! Incremental-ingest equivalence property: replaying a randomized
//! ingest sequence through the delta path ([`ingest_interface`], which
//! scores only the new interface against existing clusters, extends the
//! merge and relabels only dirty nodes) must produce artifacts
//! byte-identical — through the snapshot encoding — to forcing a full
//! rebuild ([`ingest_interface_full`]) at every step.
//!
//! The label pool is engineered to exercise every delta outcome: exact
//! joins into existing clusters, morphological variants accepted by the
//! stem/synonym tiers, novel labels that become new singletons, and
//! colliding pairs (`Make` + `Makes` in one interface) that trip the
//! shared-join guard and fall back to a full rebuild. Equivalence is a
//! theorem for the guarded delta path and trivial for the fallback
//! path, so it must hold on *every* step regardless of which path ran.
//!
//! `scripts/check.sh` runs this suite as its incremental-equivalence
//! stage.

use qi_core::NamingPolicy;
use qi_lexicon::Lexicon;
use qi_runtime::{SplitMix64, Telemetry};
use qi_serve::{build_artifact, ingest_interface, ingest_interface_full, DomainArtifact, Snapshot};

/// Snapshot bytes of a single domain — the equivalence oracle. The
/// format persists everything observable (schemas, clusters, labeled
/// tree, symbols, decisions) and excludes the non-semantic carry state
/// (`version`, delta caches).
fn snapshot_bytes(policy: NamingPolicy, artifact: &DomainArtifact) -> Vec<u8> {
    Snapshot {
        policy,
        domains: vec![artifact.clone()],
    }
    .to_bytes()
}

/// Labels spanning joins, variants, singletons, and guard-tripping
/// collisions against the Auto corpus.
const POOL: &[&str] = &[
    "Make",
    "Model",
    "Price",
    "Mileage",
    "Body Style",
    "Color",
    "Year",
    "Zip Code",
    "Makes",
    "Car Model",
    "Maximum Price",
    "Warranty Months",
    "Dealer Name",
    "Fuel Type",
    "Transmission",
    "Seller Rating",
    "Interior Color",
    "Down Payment",
];

fn random_interface(rng: &mut SplitMix64, index: usize) -> qi_schema::SchemaTree {
    let count = 2 + (rng.next_u64() % 4) as usize;
    let mut picked: Vec<&str> = Vec::new();
    while picked.len() < count {
        let label = POOL[(rng.next_u64() % POOL.len() as u64) as usize];
        if !picked.contains(&label) {
            picked.push(label);
        }
    }
    let mut text = format!("interface extra{index}\n");
    for label in picked {
        text.push_str("- ");
        text.push_str(label);
        text.push('\n');
    }
    qi_schema::text_format::parse(&text).expect("generated interface parses")
}

#[test]
fn random_ingest_sequences_match_full_rebuild_byte_for_byte() {
    let lexicon = Lexicon::builtin();
    let policy = NamingPolicy::default();
    let mut delta_ingests = 0;
    for seed in 0..6u64 {
        let mut rng = SplitMix64::new(0x1abe_11ab ^ seed);
        let telemetry = Telemetry::new();
        let base = build_artifact(&qi_datasets::auto::domain(), &lexicon, policy, &telemetry);
        let mut incremental = base.clone();
        let mut full = base;
        for step in 0..5usize {
            let interface = random_interface(&mut rng, step);
            incremental = ingest_interface(
                &incremental,
                interface.clone(),
                &lexicon,
                policy,
                &telemetry,
            );
            full = ingest_interface_full(&full, interface, &lexicon, policy, &telemetry);
            assert_eq!(
                snapshot_bytes(policy, &incremental),
                snapshot_bytes(policy, &full),
                "seed {seed} step {step}: incremental and full rebuild diverged"
            );
        }
        delta_ingests += telemetry
            .snapshot()
            .counters
            .get("serve.ingest.delta")
            .copied()
            .unwrap_or(0);
    }
    // The property is vacuous if every step fell back to a full
    // rebuild; most steps must actually take the delta path.
    assert!(
        delta_ingests >= 10,
        "only {delta_ingests} of 30 ingests took the delta path"
    );
}

/// Drifted-interface ingest: the base artifact is built from the first
/// 8 interfaces of a drift domain, then the *next* 8 interfaces of the
/// same domain — paraphrased, morphologically varied, typo'd,
/// group-reshuffled variants of the same concepts — are ingested one at
/// a time. The drift generator emits interfaces in one seeded stream,
/// so generating the domain at 8 and at 16 interfaces yields an
/// identical prefix (asserted below); the tail is therefore a genuine
/// drifted continuation, not a differently-seeded stranger.
///
/// Whatever mix of delta-path ingests and guard fallbacks the drift
/// labels provoke, every step must equal the full rebuild byte for
/// byte, and every recorded fallback must carry a known
/// `FallbackReason` counter.
#[test]
fn drifted_interface_ingest_matches_full_rebuild() {
    let lexicon = Lexicon::builtin();
    let policy = NamingPolicy::default();
    let mut delta_ingests = 0u64;
    let mut fallbacks = 0u64;
    for seed in 0..4u64 {
        let config = qi_datasets::DriftConfig {
            seed: 0xD81F_7E57 ^ seed,
            domains: 1,
            interfaces: 8,
            concepts: 10,
            ..qi_datasets::DriftConfig::default()
        };
        let extended = qi_datasets::DriftConfig {
            interfaces: 16,
            ..config
        };
        let base_domain = qi_datasets::generate_drift_corpus(&config, &lexicon).remove(0);
        let full_domain = qi_datasets::generate_drift_corpus(&extended, &lexicon).remove(0);
        for (i, schema) in base_domain.schemas.iter().enumerate() {
            assert_eq!(
                qi_schema::text_format::render(schema),
                qi_schema::text_format::render(&full_domain.schemas[i]),
                "seed {seed}: interface stream not prefix-stable at {i}"
            );
        }

        let telemetry = Telemetry::new();
        let base = build_artifact(&base_domain, &lexicon, policy, &telemetry);
        let mut incremental = base.clone();
        let mut full = base;
        for (step, interface) in full_domain.schemas[base_domain.schemas.len()..]
            .iter()
            .enumerate()
        {
            incremental = ingest_interface(
                &incremental,
                interface.clone(),
                &lexicon,
                policy,
                &telemetry,
            );
            full = ingest_interface_full(&full, interface.clone(), &lexicon, policy, &telemetry);
            assert_eq!(
                snapshot_bytes(policy, &incremental),
                snapshot_bytes(policy, &full),
                "seed {seed} drifted step {step}: incremental and full rebuild diverged"
            );
        }

        let counters = telemetry.snapshot().counters;
        delta_ingests += counters.get("serve.ingest.delta").copied().unwrap_or(0);
        let known = [
            "serve.ingest.fallback.expansion",
            "serve.ingest.fallback.base_mismatch",
            "serve.ingest.fallback.bridge",
            "serve.ingest.fallback.shared_join",
        ];
        for (name, &count) in &counters {
            if name.starts_with("serve.ingest.fallback.") {
                assert!(
                    known.contains(&name.as_str()),
                    "seed {seed}: unknown fallback reason counter {name}"
                );
                fallbacks += count;
            }
        }
        // Accounting: each of the 8 delta-capable ingests is classified
        // as exactly one of delta / full (the forced-full oracle calls
        // bypass classification); fallbacks are full rebuilds with a
        // reason.
        let full_ingests = counters.get("serve.ingest.full").copied().unwrap_or(0);
        let deltas = counters.get("serve.ingest.delta").copied().unwrap_or(0);
        assert_eq!(
            deltas + full_ingests,
            8,
            "seed {seed}: ingest accounting off: {counters:?}"
        );
    }
    // The sweep is vacuous if the drifted tail never takes the delta
    // path *and* never trips a guard — either would mean the drift
    // labels stopped interacting with existing clusters.
    assert!(
        delta_ingests + fallbacks > 0,
        "no delta ingests and no fallbacks across all seeds"
    );
}

#[test]
fn guard_fallbacks_still_match_full_rebuild() {
    let lexicon = Lexicon::builtin();
    let policy = NamingPolicy::default();
    let telemetry = Telemetry::new();
    let base = build_artifact(&qi_datasets::auto::domain(), &lexicon, policy, &telemetry);
    // Warm up: the first ingest always rebuilds fully and captures the
    // delta carry state for the next one.
    let warm = ingest_interface(
        &base,
        qi_schema::text_format::parse("interface warm\n- Color\n- Price\n").unwrap(),
        &lexicon,
        policy,
        &telemetry,
    );
    assert!(warm.delta.is_some());

    // Two fields of one interface matching the same existing cluster
    // (`Make` exactly, `Makes` via stemming) trip the shared-join
    // guard: the delta path must refuse and fall back, and the result
    // must still equal the full rebuild bit for bit.
    let tricky = qi_schema::text_format::parse("interface tricky\n- Make\n- Makes\n").unwrap();
    let incremental = ingest_interface(&warm, tricky.clone(), &lexicon, policy, &telemetry);
    let full = ingest_interface_full(&warm, tricky, &lexicon, policy, &telemetry);
    assert_eq!(
        snapshot_bytes(policy, &incremental),
        snapshot_bytes(policy, &full)
    );
    let counters = telemetry.snapshot().counters;
    let fallbacks: u64 = counters
        .iter()
        .filter(|(name, _)| name.starts_with("serve.ingest.fallback."))
        .map(|(_, &n)| n)
        .sum();
    assert!(fallbacks >= 1, "no fallback recorded: {counters:?}");
}
