//! Serialization round-trips over the full corpus: the schema-tree text
//! format and the lexicon text format must reproduce every artifact the
//! evaluation relies on.

use qi_lexicon::{format as lexicon_format, Lexicon};
use qi_schema::text_format;

/// All 150 corpus interfaces survive the schema text format unchanged.
#[test]
fn corpus_interfaces_round_trip() {
    let mut count = 0usize;
    for domain in qi_datasets::all_domains() {
        for tree in &domain.schemas {
            let text = text_format::render(tree);
            let parsed = text_format::parse(&text)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", domain.name, tree.name()));
            assert_eq!(&parsed, tree, "{}/{}", domain.name, tree.name());
            count += 1;
        }
    }
    assert_eq!(count, 150);
}

/// Integrated (merged + labeled) trees also round-trip.
#[test]
fn labeled_integrated_trees_round_trip() {
    let lexicon = Lexicon::builtin();
    for domain in qi_datasets::all_domains() {
        let prepared = domain.prepare();
        let labeler = qi_core::Labeler::new(&lexicon, qi_core::NamingPolicy::default());
        let labeled = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
        let text = text_format::render(&labeled.tree);
        let parsed = text_format::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", domain.name));
        assert_eq!(parsed, labeled.tree, "{}", domain.name);
    }
}

/// The builtin lexicon round-trips through its text format and still
/// drives the pipeline to the same Table 6 row.
#[test]
fn lexicon_round_trip_preserves_evaluation() {
    let builtin = Lexicon::builtin();
    let text = lexicon_format::render(&builtin);
    let reparsed = lexicon_format::parse(&text).unwrap();
    let domain = qi_datasets::auto::domain();
    let policy = qi_core::NamingPolicy::default();
    let panel = qi_eval::Panel::default();
    let a = qi_eval::evaluate_domain(&domain, &builtin, policy, panel);
    let b = qi_eval::evaluate_domain(&domain, &reparsed, policy, panel);
    assert_eq!(a.fld_acc, b.fld_acc);
    assert_eq!(a.int_acc, b.int_acc);
    assert_eq!(a.class, b.class);
    assert_eq!(a.shape.leaves, b.shape.leaves);
}
