//! End-to-end pipeline tests: every Table 6 statistic lands in the
//! paper's band, per domain, and the labeling output satisfies the
//! global invariants the algorithm promises.

use qi::{ConsistencyClass, Lexicon, NamingPolicy};
use qi_core::{InferenceRule, Labeler};
use qi_eval::{evaluate_domain, Panel};

fn eval(domain: qi_datasets::Domain) -> qi_eval::DomainEvaluation {
    let lexicon = Lexicon::builtin();
    evaluate_domain(&domain, &lexicon, NamingPolicy::default(), Panel::default())
}

#[test]
fn airline_row_matches_paper_shape() {
    let row = eval(qi_datasets::airline::domain());
    // Paper: FldAcc 100%, IntAcc 84.6%, HA 96.6%, HA* 98.3%, inconsistent.
    assert!((row.fld_acc - 1.0).abs() < 1e-12, "FldAcc {}", row.fld_acc);
    assert!(
        (0.78..=0.90).contains(&row.int_acc),
        "IntAcc {}",
        row.int_acc
    );
    assert!((0.92..=0.995).contains(&row.ha), "HA {}", row.ha);
    assert!(row.ha_star >= row.ha);
    assert_eq!(row.class, ConsistencyClass::Inconsistent);
    assert_eq!(row.shape.leaves, 24);
}

#[test]
fn auto_row_matches_paper_shape() {
    let row = eval(qi_datasets::auto::domain());
    // Paper: everything at 100%, consistent.
    assert!((row.fld_acc - 1.0).abs() < 1e-12);
    assert!((row.int_acc - 1.0).abs() < 1e-12);
    assert!(row.ha > 0.99, "HA {}", row.ha);
    assert_eq!(row.class, ConsistencyClass::Consistent);
    assert_eq!(row.shape.leaves, 18);
    assert_eq!(row.shape.isolated, 0);
}

#[test]
fn book_row_matches_paper_shape() {
    let row = eval(qi_datasets::book::domain());
    // Paper: FldAcc/IntAcc 100%, HA 98.9%, HA* 100% (errors blamed on
    // sources), consistent or weakly consistent.
    assert!((row.fld_acc - 1.0).abs() < 1e-12);
    assert!((row.int_acc - 1.0).abs() < 1e-12);
    assert!((0.95..1.0).contains(&row.ha), "HA {}", row.ha);
    assert!(row.ha_star > row.ha, "source attribution should lift HA*");
    assert_ne!(row.class, ConsistencyClass::Inconsistent);
    assert_eq!(row.shape.isolated, 1);
}

#[test]
fn job_row_matches_paper_shape() {
    let row = eval(qi_datasets::job::domain());
    // Paper: all 100%, one group, flat interface.
    assert!((row.fld_acc - 1.0).abs() < 1e-12);
    assert!((row.int_acc - 1.0).abs() < 1e-12);
    assert!(row.ha > 0.99, "HA {}", row.ha);
    assert_eq!(row.shape.groups, 1);
    assert!(row.shape.root_leaves >= 14);
    assert_eq!(row.class, ConsistencyClass::Consistent);
}

#[test]
fn real_estate_row_matches_paper_shape() {
    let row = eval(qi_datasets::real_estate::domain());
    // Paper: FldAcc 96.4% (one unlabeled field with no instances),
    // IntAcc 100%, weakly consistent.
    assert!((0.93..1.0).contains(&row.fld_acc), "FldAcc {}", row.fld_acc);
    assert!((row.int_acc - 1.0).abs() < 1e-12, "IntAcc {}", row.int_acc);
    assert_eq!(row.class, ConsistencyClass::WeaklyConsistent);
    assert_eq!(row.shape.isolated, 1);
}

#[test]
fn car_rental_row_matches_paper_shape() {
    let row = eval(qi_datasets::car_rental::domain());
    // Paper: FldAcc 100%, IntAcc 93.4% (a candidate label promoted to an
    // ancestor), inconsistent, widest integrated interface.
    assert!((row.fld_acc - 1.0).abs() < 1e-12);
    assert!(
        (0.88..0.99).contains(&row.int_acc),
        "IntAcc {}",
        row.int_acc
    );
    assert_eq!(row.class, ConsistencyClass::Inconsistent);
    assert_eq!(row.shape.leaves, 34);
    assert_eq!(row.shape.isolated, 3);
    assert_eq!(row.shape.depth, 4);
}

#[test]
fn hotels_row_matches_paper_shape() {
    let row = eval(qi_datasets::hotels::domain());
    // Paper: FldAcc 100%, IntAcc 93.4%, HA lowest of the corpus family
    // (chain-specific frequency-1 fields), HA* above HA.
    assert!((row.fld_acc - 1.0).abs() < 1e-12);
    assert!(
        (0.85..0.99).contains(&row.int_acc),
        "IntAcc {}",
        row.int_acc
    );
    assert!(row.ha < 1.0);
    assert!(row.ha_star > row.ha);
    assert!((2..=4).contains(&row.shape.isolated));
}

/// HA ordering: the domains with frequency-1 / unreadable material score
/// below the clean ones, mirroring Table 6's ordering.
#[test]
fn human_acceptance_ordering() {
    let auto = eval(qi_datasets::auto::domain());
    let job = eval(qi_datasets::job::domain());
    let airline = eval(qi_datasets::airline::domain());
    let hotels = eval(qi_datasets::hotels::domain());
    assert!(auto.ha >= airline.ha);
    assert!(job.ha >= hotels.ha);
    assert!(auto.ha >= hotels.ha);
}

/// Figure 10's headline shape: LI2 dominates, the structural rules
/// (LI2/LI3/LI4/LI5 family) carry most derivations, and every rule fires
/// at least once across the corpus.
#[test]
fn figure10_rule_mix() {
    let lexicon = Lexicon::builtin();
    let result = qi_eval::evaluate_corpus(
        &qi_datasets::all_domains(),
        &lexicon,
        NamingPolicy::default(),
        Panel::default(),
    );
    let usage = &result.li_usage;
    assert!(usage.total() > 30, "total {}", usage.total());
    let li2 = usage.ratio(InferenceRule::Li2);
    for rule in InferenceRule::ALL {
        assert!(
            li2 >= usage.ratio(rule),
            "LI2 ({li2}) should dominate {rule} ({})",
            usage.ratio(rule)
        );
    }
    for rule in [
        InferenceRule::Li1,
        InferenceRule::Li2,
        InferenceRule::Li5,
        InferenceRule::Li6,
        InferenceRule::Li7,
    ] {
        assert!(usage.count(rule) > 0, "{rule} never fired");
    }
    assert!(
        usage.count(InferenceRule::Li3) + usage.count(InferenceRule::Li4) > 0,
        "hierarchy rules never fired"
    );
}

/// Label provenance: every assigned field label occurs verbatim on some
/// member field of that cluster; every internal-node label occurs on some
/// source internal node. The algorithm never invents text.
#[test]
fn labels_are_always_sourced() {
    let lexicon = Lexicon::builtin();
    for domain in qi_datasets::all_domains() {
        let prepared = domain.prepare();
        let labeler = Labeler::new(&lexicon, NamingPolicy::default());
        let labeled = labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated);
        for leaf in labeled.tree.leaves() {
            let Some(label) = &leaf.label else { continue };
            let cluster = labeled.leaf_cluster[&leaf.id];
            let group_sourced = prepared
                .mapping
                .clusters
                .iter()
                .flat_map(|c| &c.members)
                .any(|m| prepared.schemas[m.schema].node(m.node).label.as_ref() == Some(label));
            assert!(
                group_sourced,
                "{}: invented field label {label:?} (cluster {})",
                prepared.name,
                prepared.mapping.cluster(cluster).concept
            );
        }
        let source_internal_labels: Vec<&str> = prepared
            .schemas
            .iter()
            .flat_map(|s| s.internal_nodes())
            .filter_map(|n| n.label.as_deref())
            .collect();
        for node in labeled.tree.internal_nodes() {
            if let Some(label) = &node.label {
                assert!(
                    source_internal_labels.contains(&label.as_str()),
                    "{}: invented internal label {label:?}",
                    prepared.name
                );
            }
        }
    }
}

/// The synthetic generator flows through the entire pipeline too.
#[test]
fn synthetic_domain_end_to_end() {
    let synth = qi_datasets::SynthDomain::generate(qi_datasets::SynthConfig::default());
    let lexicon = Lexicon::builtin();
    let row = evaluate_domain(
        &synth.domain,
        &lexicon,
        NamingPolicy::default(),
        Panel::default(),
    );
    assert_eq!(row.shape.leaves, synth.config.concepts);
    assert!(row.fld_acc > 0.8, "FldAcc {}", row.fld_acc);
}

/// The most-general baseline produces shorter labels on average — the
/// §3.2.1 motivation for preferring descriptive names.
#[test]
fn baseline_is_less_descriptive() {
    let lexicon = Lexicon::builtin();
    let mut descriptive_total = 0.0;
    let mut general_total = 0.0;
    for domain in [qi_datasets::airline::domain(), qi_datasets::auto::domain()] {
        let cmp = qi_eval::ablation::compare_policies(
            &domain,
            &lexicon,
            ("descriptive", NamingPolicy::default()),
            ("general", NamingPolicy::most_general_baseline()),
        );
        descriptive_total += cmp.left_expressiveness;
        general_total += cmp.right_expressiveness;
    }
    assert!(
        descriptive_total >= general_total,
        "descriptive {descriptive_total} < general {general_total}"
    );
}
