//! Randomized property tests for the clustering engines — dependency-free
//! (driven by the in-repo [`SplitMix64`] PRNG, so they run under the
//! default `cargo test -q`, unlike the proptest suite).
//!
//! Three invariants:
//!
//! 1. **Engine equivalence** — the indexed candidate-generation engine
//!    produces the *identical* `Mapping` (cluster ids, concepts, member
//!    order) as the naive reference double loop, on arbitrary randomized
//!    corpora, fuzzy tier on and off, and on a ~100× replicated corpus.
//! 2. **Schema invariant** — no cluster ever holds two fields of one
//!    schema ([`Mapping::validate`]'s `DuplicateSchema` check).
//! 3. **Order invariance on collision-free corpora** — when label
//!    matching restricts to an equivalence relation with at most one
//!    field per class per schema (single distinct non-synonym words), the
//!    clustering is invariant under permutation of the schema input
//!    order. (This is deliberately *not* asserted for general corpora:
//!    with multi-sense synonymy the greedy merge order is load-bearing —
//!    different schema orders can legitimately resolve clashes
//!    differently.)

use qi_datasets::{generate_drift_corpus, replicate_schemas, DriftConfig};
use qi_lexicon::Lexicon;
use qi_mapping::matcher::{match_by_labels_stats, match_by_labels_with, MatcherConfig};
use qi_mapping::Mapping;
use qi_runtime::SplitMix64;
use qi_schema::spec::{leaf, unlabeled_leaf, NodeSpec};
use qi_schema::SchemaTree;

/// Label pool exercising every match tier: exact strings, punctuation
/// variants, word-order permutations, lexicon synonyms, abbreviations,
/// typos and stop words.
const LABEL_POOL: &[&str] = &[
    "Departure City",
    "City of Departure",
    "departure city:",
    "Destination City",
    "Arrival City",
    "Town of Departure",
    "Quantity",
    "Qty",
    "Address",
    "Adress",
    "Make",
    "Brand",
    "Model",
    "Price",
    "Cost",
    "Ticket Price",
    "Price of Ticket",
    "Class of Ticket",
    "Ticket Class",
    "Number of Stops",
    "Type of Job",
    "Job Type",
    "Area of Study",
    "Field of Work",
    "Zip Code",
    "zip code",
    "State",
    "Province",
    "Author",
    "Writer",
];

fn random_corpus(rng: &mut SplitMix64) -> Vec<SchemaTree> {
    let n_schemas = 3 + rng.gen_range(6);
    (0..n_schemas)
        .map(|s| {
            let n_fields = 2 + rng.gen_range(11);
            let specs: Vec<NodeSpec> = (0..n_fields)
                .map(|_| {
                    if rng.gen_bool(0.15) {
                        unlabeled_leaf()
                    } else {
                        leaf(LABEL_POOL[rng.gen_range(LABEL_POOL.len())])
                    }
                })
                .collect();
            SchemaTree::build(&format!("schema-{s}"), specs).unwrap()
        })
        .collect()
}

fn cluster(schemas: &[SchemaTree], lexicon: &Lexicon, config: MatcherConfig) -> Mapping {
    match_by_labels_with(schemas, lexicon, config)
}

#[test]
fn indexed_equals_naive_on_random_corpora() {
    let lexicon = Lexicon::builtin();
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(seed);
        let schemas = random_corpus(&mut rng);
        for fuzzy in [false, true] {
            let config = MatcherConfig {
                fuzzy,
                ..MatcherConfig::default()
            };
            let indexed = cluster(&schemas, &lexicon, config);
            let naive = cluster(
                &schemas,
                &lexicon,
                MatcherConfig {
                    naive: true,
                    ..config
                },
            );
            assert_eq!(indexed, naive, "seed={seed} fuzzy={fuzzy}");
        }
    }
}

#[test]
fn no_cluster_holds_two_fields_of_one_schema() {
    let lexicon = Lexicon::builtin();
    for seed in 100..116u64 {
        let mut rng = SplitMix64::new(seed);
        let schemas = random_corpus(&mut rng);
        for fuzzy in [false, true] {
            let config = MatcherConfig {
                fuzzy,
                ..MatcherConfig::default()
            };
            let mapping = cluster(&schemas, &lexicon, config);
            mapping
                .validate(&schemas)
                .unwrap_or_else(|e| panic!("seed={seed} fuzzy={fuzzy}: {e:?}"));
        }
    }
}

/// A cluster partition keyed by schema *name* (stable under input
/// reordering) instead of schema index.
fn partition_by_name(mapping: &Mapping, schemas: &[SchemaTree]) -> Vec<Vec<(String, u32)>> {
    let mut clusters: Vec<Vec<(String, u32)>> = mapping
        .clusters
        .iter()
        .map(|c| {
            let mut members: Vec<(String, u32)> = c
                .members
                .iter()
                .map(|m| (schemas[m.schema].name().to_string(), m.node.index() as u32))
                .collect();
            members.sort();
            members
        })
        .collect();
    clusters.sort();
    clusters
}

#[test]
fn clustering_invariant_under_schema_order_on_collision_free_corpora() {
    // Single distinct non-synonym words: label matching degenerates to
    // exact equality (an equivalence relation), and each schema carries
    // a concept at most once, so no merge can ever clash — the regime
    // where order invariance genuinely holds.
    let lexicon = Lexicon::builtin();
    let concepts: Vec<String> = (0..12).map(|i| format!("concept{i}")).collect();
    for seed in 200..208u64 {
        let mut rng = SplitMix64::new(seed);
        let n_schemas = 3 + rng.gen_range(4);
        let mut schemas: Vec<SchemaTree> = (0..n_schemas)
            .map(|s| {
                let specs: Vec<NodeSpec> = concepts
                    .iter()
                    .filter(|_| rng.gen_bool(0.6))
                    .map(|c| leaf(c))
                    .collect();
                let specs = if specs.is_empty() {
                    vec![leaf(&concepts[0])]
                } else {
                    specs
                };
                SchemaTree::build(&format!("schema-{s}"), specs).unwrap()
            })
            .collect();
        let reference = partition_by_name(
            &cluster(&schemas, &lexicon, MatcherConfig::default()),
            &schemas,
        );
        for _ in 0..4 {
            // Fisher–Yates shuffle of the schema order.
            for i in (1..schemas.len()).rev() {
                let j = rng.gen_range(i + 1);
                schemas.swap(i, j);
            }
            let shuffled = partition_by_name(
                &cluster(&schemas, &lexicon, MatcherConfig::default()),
                &schemas,
            );
            assert_eq!(shuffled, reference, "seed={seed}");
        }
    }
}

/// The telemetry cross-engine invariant: both engines report identical
/// `pairs_accepted` and `clusters_merged` on arbitrary corpora. The
/// indexed candidate set is a superset of the matching pairs and both
/// engines merge accepted pairs in ascending `(i, j)` order with the
/// same clash predicate, so the *outcome* counters must agree even
/// though `pairs_generated` / `pairs_scored` legitimately differ (that
/// difference is the whole point of candidate generation).
#[test]
fn engines_report_identical_outcome_counters() {
    let lexicon = Lexicon::builtin();
    for seed in 300..316u64 {
        let mut rng = SplitMix64::new(seed);
        let schemas = random_corpus(&mut rng);
        for fuzzy in [false, true] {
            let config = MatcherConfig {
                fuzzy,
                ..MatcherConfig::default()
            };
            let (indexed, indexed_stats) = match_by_labels_stats(&schemas, &lexicon, config);
            let (naive, naive_stats) = match_by_labels_stats(
                &schemas,
                &lexicon,
                MatcherConfig {
                    naive: true,
                    ..config
                },
            );
            assert_eq!(indexed, naive, "seed={seed} fuzzy={fuzzy}");
            assert_eq!(
                indexed_stats.pairs_accepted, naive_stats.pairs_accepted,
                "seed={seed} fuzzy={fuzzy}: {indexed_stats:?} vs {naive_stats:?}"
            );
            assert_eq!(
                indexed_stats.clusters_merged, naive_stats.clusters_merged,
                "seed={seed} fuzzy={fuzzy}: {indexed_stats:?} vs {naive_stats:?}"
            );
            // Sanity on both engines' internal ordering of volumes.
            for stats in [&indexed_stats, &naive_stats] {
                assert!(stats.pairs_scored >= stats.pairs_accepted, "{stats:?}");
                assert!(stats.pairs_accepted >= stats.clusters_merged, "{stats:?}");
                assert_eq!(
                    stats.fields_total,
                    stats.fields_labeled + unlabeled(&schemas)
                );
            }
            // The naive reference scores every labeled pair; the indexed
            // engine must never score more than that.
            assert!(
                indexed_stats.pairs_scored <= naive_stats.pairs_scored,
                "seed={seed} fuzzy={fuzzy}: {indexed_stats:?} vs {naive_stats:?}"
            );
        }
    }
}

fn unlabeled(schemas: &[qi_schema::SchemaTree]) -> u64 {
    schemas
        .iter()
        .flat_map(|s| s.leaves())
        .filter(|l| l.label.is_none())
        .count() as u64
}

/// Outcome-counter agreement exactly on the fuzzy decision boundary:
/// 10-character labels two edits apart have normalized Levenshtein
/// similarity exactly 0.8, so with `min_similarity: 0.8` every accept /
/// reject sits on the `>=` threshold — the regime where the indexed
/// engine's length-blocked fuzzy tier is most likely to diverge from
/// the naive double loop if its blocking were unsound.
#[test]
fn engines_agree_on_fuzzy_boundary_corpora() {
    // Pairwise distances within this pool: 1 edit (0.9), 2 edits (0.8,
    // on the boundary) and 3+ edits (below it).
    let pool: &[&str] = &[
        "departure1",
        "departure2",
        "departvre1",
        "abcdefghij",
        "abcdefghxy",
        "abcdefgxyz",
        "abcdwfghij",
        "zbcdefghij",
    ];
    let lexicon = Lexicon::builtin();
    let config = MatcherConfig {
        fuzzy: true,
        min_similarity: 0.8,
        ..MatcherConfig::default()
    };
    for seed in 400..412u64 {
        let mut rng = SplitMix64::new(seed);
        let n_schemas = 3 + rng.gen_range(5);
        let schemas: Vec<SchemaTree> = (0..n_schemas)
            .map(|s| {
                let n_fields = 2 + rng.gen_range(6);
                let specs: Vec<NodeSpec> = (0..n_fields)
                    .map(|_| leaf(pool[rng.gen_range(pool.len())]))
                    .collect();
                SchemaTree::build(&format!("schema-{s}"), specs).unwrap()
            })
            .collect();
        let (indexed, indexed_stats) = match_by_labels_stats(&schemas, &lexicon, config);
        let (naive, naive_stats) = match_by_labels_stats(
            &schemas,
            &lexicon,
            MatcherConfig {
                naive: true,
                ..config
            },
        );
        assert_eq!(indexed, naive, "seed={seed}");
        assert_eq!(
            indexed_stats.pairs_accepted, naive_stats.pairs_accepted,
            "seed={seed}: {indexed_stats:?} vs {naive_stats:?}"
        );
        assert_eq!(
            indexed_stats.clusters_merged, naive_stats.clusters_merged,
            "seed={seed}: {indexed_stats:?} vs {naive_stats:?}"
        );
    }
}

/// Cross-engine equivalence on realistic-drift corpora, swept across
/// paraphrase and field add/drop rates. The drift generator produces
/// exactly the label population the indexed engine's posting lists are
/// weakest on — synonym walks, morphological variants and single-edit
/// typos mixed in one corpus — so beyond cluster equality both engines
/// must attribute every accept to the same tier: the per-tier
/// `accepted_*` counters are part of the cross-engine invariant.
///
/// Each sweep point also runs at `min_similarity: 0.8`, where
/// 10-character drifted twins sit exactly on the `>=` threshold — the
/// regime in which unsound fuzzy blocking would diverge first.
#[test]
fn drift_corpora_indexed_equals_naive_across_rates() {
    let lexicon = Lexicon::builtin();
    // (paraphrase_prob, coverage): none→heavy paraphrasing crossed with
    // high→low field coverage (coverage is the add/drop knob — fields
    // absent below it, novel site-specific fields added on top).
    let sweeps = [(0.0, 0.95), (0.25, 0.7), (0.6, 0.45)];
    for (i, &(paraphrase_prob, coverage)) in sweeps.iter().enumerate() {
        let config = DriftConfig {
            seed: 0x5EED_0000 + i as u64,
            domains: 2,
            interfaces: 6,
            concepts: 10,
            paraphrase_prob,
            coverage,
            ..DriftConfig::default()
        };
        let corpus = generate_drift_corpus(&config, &lexicon);
        let mut synonym_accepts = 0u64;
        for domain in &corpus {
            for min_similarity in [0.85, 0.8] {
                let config = MatcherConfig {
                    fuzzy: true,
                    min_similarity,
                    ..MatcherConfig::default()
                };
                let (indexed, indexed_stats) =
                    match_by_labels_stats(&domain.schemas, &lexicon, config);
                let (naive, naive_stats) = match_by_labels_stats(
                    &domain.schemas,
                    &lexicon,
                    MatcherConfig {
                        naive: true,
                        ..config
                    },
                );
                let ctx = format!(
                    "sweep={i} domain={} min_similarity={min_similarity}",
                    domain.name
                );
                assert_eq!(indexed, naive, "{ctx}");
                indexed.validate(&domain.schemas).expect("valid mapping");
                for (label, a, b) in [
                    (
                        "pairs_accepted",
                        indexed_stats.pairs_accepted,
                        naive_stats.pairs_accepted,
                    ),
                    (
                        "clusters_merged",
                        indexed_stats.clusters_merged,
                        naive_stats.clusters_merged,
                    ),
                    (
                        "accepted_string",
                        indexed_stats.accepted_string,
                        naive_stats.accepted_string,
                    ),
                    (
                        "accepted_word_set",
                        indexed_stats.accepted_word_set,
                        naive_stats.accepted_word_set,
                    ),
                    (
                        "accepted_synonym",
                        indexed_stats.accepted_synonym,
                        naive_stats.accepted_synonym,
                    ),
                    (
                        "accepted_fuzzy",
                        indexed_stats.accepted_fuzzy,
                        naive_stats.accepted_fuzzy,
                    ),
                ] {
                    assert_eq!(a, b, "{ctx}: {label}: {indexed_stats:?} vs {naive_stats:?}");
                }
                synonym_accepts += indexed_stats.accepted_synonym;
            }
        }
        // The heavy-paraphrase sweep point must actually reach the
        // synonym tier, or the sweep silently degenerated.
        if paraphrase_prob > 0.5 {
            assert!(synonym_accepts > 0, "sweep={i} never hit the synonym tier");
        }
    }
}

#[test]
fn scaled_100x_indexed_equals_naive() {
    // A small base corpus keeps the naive O(n²) reference tractable in
    // debug builds while the 100× replication still yields a corpus two
    // orders of magnitude beyond anything the seed benchmark clustered.
    let lexicon = Lexicon::builtin();
    let base = vec![
        SchemaTree::build(
            "a",
            vec![
                leaf("Departure City"),
                leaf("Quantity"),
                leaf("Make"),
                leaf("Class of Ticket"),
                unlabeled_leaf(),
            ],
        )
        .unwrap(),
        SchemaTree::build(
            "b",
            vec![
                leaf("City of Departure"),
                leaf("Qty"),
                leaf("Brand"),
                leaf("Ticket Class"),
            ],
        )
        .unwrap(),
        SchemaTree::build(
            "c",
            vec![leaf("departure city:"), leaf("Adress"), leaf("Model")],
        )
        .unwrap(),
    ];
    let scaled = replicate_schemas(&base, 100);
    assert_eq!(scaled.len(), 300);
    for fuzzy in [false, true] {
        let config = MatcherConfig {
            fuzzy,
            ..MatcherConfig::default()
        };
        let indexed = cluster(&scaled, &lexicon, config);
        let naive = cluster(
            &scaled,
            &lexicon,
            MatcherConfig {
                naive: true,
                ..config
            },
        );
        assert_eq!(indexed, naive, "fuzzy={fuzzy}");
        indexed.validate(&scaled).expect("valid scaled mapping");
        if !fuzzy {
            // Replica vocabularies are disjoint under the non-fuzzy
            // matcher: no cluster crosses replicas. (The fuzzy tier may
            // legitimately connect long renamed twins like
            // `departure1` / `departure2` — similarity 0.9.)
            for c in &indexed.clusters {
                let replica = c.members[0].schema / base.len();
                assert!(c.members.iter().all(|m| m.schema / base.len() == replica));
            }
        }
    }
}
