//! Integration tests reproducing every worked example of the paper —
//! Tables 1–5 and Figures 2, 4, 6, 8, 9, 11 — from the public API and the
//! evaluation corpus.

use qi::{ConsistencyLevel, Lexicon, NamingPolicy};
use qi_core::{
    ctx::NamingCtx, partition::partition_tuples, solution::name_group, InferenceRule, Labeler,
};
use qi_datasets::PreparedDomain;
use qi_mapping::GroupRelation;
use qi_schema::NodeId;

fn labeled(prepared: &PreparedDomain, lexicon: &Lexicon) -> qi::LabeledInterface {
    let labeler = Labeler::new(lexicon, NamingPolicy::default());
    labeler.label(&prepared.schemas, &prepared.mapping, &prepared.integrated)
}

/// Table 1 / Figure 2: `airtravel`'s 1:m `Passengers` field is expanded
/// into an internal node whose label becomes an internal-node candidate
/// and which leaves the passenger clusters in clean 1:1 form.
#[test]
fn table1_passengers_expansion() {
    let domain = qi_datasets::airline::domain();
    let prepared = domain.prepare();
    prepared.mapping.validate(&prepared.schemas).unwrap();
    let airtravel_idx = prepared
        .schemas
        .iter()
        .position(|s| s.name() == "airtravel")
        .unwrap();
    let airtravel = &prepared.schemas[airtravel_idx];
    // After expansion there is an internal node labeled Passengers with
    // four unlabeled leaf children.
    let passengers = airtravel
        .internal_nodes()
        .find(|n| n.label_str() == "Passengers")
        .expect("expanded Passengers node");
    assert_eq!(airtravel.children(passengers.id).len(), 4);
    // Each child sits in a distinct passenger cluster.
    for concept in ["adult", "senior", "child", "infant"] {
        let cluster = prepared.mapping.by_concept(concept).unwrap();
        assert!(
            cluster.member_of(airtravel_idx).is_some(),
            "{concept} lost airtravel's member"
        );
    }
}

/// Table 2: the group relation of the passenger group, rebuilt from the
/// corpus schemas, contains the paper's exact rows for `british` and
/// `economytravel`.
#[test]
fn table2_group_relation_rows() {
    let prepared = qi_datasets::airline::domain().prepare();
    let clusters: Vec<_> = ["senior", "adult", "child", "infant"]
        .iter()
        .map(|c| prepared.mapping.by_concept(c).unwrap().id)
        .collect();
    let relation = GroupRelation::build(&clusters, &prepared.mapping, &prepared.schemas);
    let by_name = |name: &str| {
        let idx = prepared
            .schemas
            .iter()
            .position(|s| s.name() == name)
            .unwrap();
        relation.tuple_of_schema(idx).unwrap().labels.clone()
    };
    assert_eq!(
        by_name("british"),
        vec![
            Some("Seniors".to_string()),
            Some("Adults".to_string()),
            Some("Children".to_string()),
            None
        ]
    );
    assert_eq!(
        by_name("economytravel"),
        vec![
            None,
            Some("Adults".to_string()),
            Some("Children".to_string()),
            Some("Infants".to_string())
        ]
    );
    // §4.1: the intersect-and-union of those rows is the group's
    // consistent solution.
    let lexicon = Lexicon::builtin();
    let ctx = NamingCtx::new(&lexicon);
    let naming = name_group(&relation, &ctx, &NamingPolicy::default());
    assert!(naming.consistent);
    assert_eq!(naming.level, Some(ConsistencyLevel::String));
    let labels: Vec<&str> = naming
        .best()
        .unwrap()
        .labels
        .iter()
        .map(|l| l.as_deref().unwrap())
        .collect();
    assert_eq!(labels, vec!["Seniors", "Adults", "Children", "Infants"]);
}

/// Figure 4: at the string level the passenger group relation splits into
/// partitions, at least one of which covers all four clusters.
#[test]
fn figure4_partition_graph() {
    let prepared = qi_datasets::airline::domain().prepare();
    let clusters: Vec<_> = ["senior", "adult", "child", "infant"]
        .iter()
        .map(|c| prepared.mapping.by_concept(c).unwrap().id)
        .collect();
    let relation = GroupRelation::build(&clusters, &prepared.mapping, &prepared.schemas);
    let lexicon = Lexicon::builtin();
    let ctx = NamingCtx::new(&lexicon);
    let result = partition_tuples(&relation, ConsistencyLevel::String, &ctx);
    assert!(result.partitions.len() >= 2, "heterogeneous labels split");
    assert!(result.has_full_cover(), "Proposition 1 holds");
}

/// Table 3: the auto location group relation carries the paper's rows and
/// the four clusters form a single group of the integrated interface.
#[test]
fn table3_auto_location_rows() {
    let prepared = qi_datasets::auto::domain().prepare();
    let clusters: Vec<_> = ["state", "city", "zip", "distance"]
        .iter()
        .map(|c| prepared.mapping.by_concept(c).unwrap().id)
        .collect();
    let relation = GroupRelation::build(&clusters, &prepared.mapping, &prepared.schemas);
    let by_name = |name: &str| {
        let idx = prepared
            .schemas
            .iter()
            .position(|s| s.name() == name)
            .unwrap();
        relation.tuple_of_schema(idx).unwrap().labels.clone()
    };
    let s = |v: &str| Some(v.to_string());
    assert_eq!(by_name("100auto"), vec![s("State"), s("City"), None, None]);
    assert_eq!(
        by_name("Ads4autos"),
        vec![None, None, s("Zip Code"), s("Distance")]
    );
    assert_eq!(
        by_name("CarMarket"),
        vec![s("State"), s("City"), None, None]
    );
    assert_eq!(
        by_name("cars-1"),
        vec![None, None, s("Your Zip"), s("Within")]
    );
}

/// Table 4: the service-preference rows, and the §4.2.1 expressiveness
/// election in the final integrated interface.
#[test]
fn table4_service_preferences() {
    let prepared = qi_datasets::airline::domain().prepare();
    let clusters: Vec<_> = ["stops", "class", "airline"]
        .iter()
        .map(|c| prepared.mapping.by_concept(c).unwrap().id)
        .collect();
    let relation = GroupRelation::build(&clusters, &prepared.mapping, &prepared.schemas);
    let by_name = |name: &str| {
        let idx = prepared
            .schemas
            .iter()
            .position(|s| s.name() == name)
            .unwrap();
        relation.tuple_of_schema(idx).unwrap().labels.clone()
    };
    let s = |v: &str| Some(v.to_string());
    assert_eq!(
        by_name("aa"),
        vec![s("NonStop"), None, s("Choose an Airline")]
    );
    assert_eq!(
        by_name("alldest"),
        vec![None, s("Class of Ticket"), s("Preferred Airline")]
    );
    assert_eq!(
        by_name("cheap"),
        vec![s("Max. Number of Stops"), None, s("Airline Preference")]
    );
    assert_eq!(by_name("msn"), vec![None, s("Class"), s("Airline")]);
}

/// Table 5 / Figure 6: the integrated Auto tree puts `Car Information`
/// above the `Make/Model` and `Year Range` groups, with `Keywords` inside
/// the model group.
#[test]
fn figure6_auto_integrated_tree() {
    let prepared = qi_datasets::auto::domain().prepare();
    let lexicon = Lexicon::builtin();
    let labeled = labeled(&prepared, &lexicon);
    let find_leaf = |concept: &str| {
        let cluster = prepared.mapping.by_concept(concept).unwrap().id;
        prepared.integrated.leaf_of_cluster(cluster).unwrap()
    };
    let make = find_leaf("make");
    let keyword = find_leaf("keyword");
    let year = find_leaf("year_from");
    let model_node = labeled.tree.lca(&[make, keyword]);
    assert_eq!(labeled.tree.node(model_node).label_str(), "Make/Model");
    let year_node = labeled.tree.lca(&[year, find_leaf("year_to")]);
    assert_eq!(labeled.tree.node(year_node).label_str(), "Year Range");
    let car_info = labeled.tree.lca(&[make, year]);
    assert_eq!(labeled.tree.node(car_info).label_str(), "Car Information");
    assert_ne!(car_info, NodeId::ROOT);
}

/// Figure 8 (middle): the hotels amenity node is labeled by the hypernym
/// question form, absorbed through LI3/LI4.
#[test]
fn figure8_preferences_hierarchy() {
    let prepared = qi_datasets::hotels::domain().prepare();
    let lexicon = Lexicon::builtin();
    let labeled = labeled(&prepared, &lexicon);
    let pool = prepared.mapping.by_concept("pool").unwrap().id;
    let breakfast = prepared.mapping.by_concept("breakfast").unwrap().id;
    let pool_leaf = prepared.integrated.leaf_of_cluster(pool).unwrap();
    let breakfast_leaf = prepared.integrated.leaf_of_cluster(breakfast).unwrap();
    // One amenity group spanning all four amenity concepts.
    let parent = labeled.tree.parent(pool_leaf).unwrap();
    assert_eq!(labeled.tree.parent(breakfast_leaf), Some(parent));
    // "Do you have any preferences?" earns candidacy only by absorbing
    // the specific preference labels through the hypernym hierarchy.
    let candidates = &labeled.internal_candidates[&parent];
    let question = candidates
        .iter()
        .find(|c| &*c.label == "Do you have any preferences?")
        .expect("hierarchy root must be a candidate");
    assert!(matches!(
        question.rule,
        InferenceRule::Li3 | InferenceRule::Li4
    ));
    assert!(labeled.tree.node(parent).label.is_some());
    assert!(
        labeled.report.li_usage.count(InferenceRule::Li3)
            + labeled.report.li_usage.count(InferenceRule::Li4)
            > 0,
        "hypernym-hierarchy inference unused"
    );
}

/// Figure 9 / LI6–LI7 fire on the corpus: the hotel-chain cluster bounds
/// `Chain` to `Hotel Chain` via equal instance domains, and the Book
/// `Hardcover` field label is discarded as a value of `Format`.
#[test]
fn figure9_instance_rules_fire() {
    let lexicon = Lexicon::builtin();
    let hotels = labeled(&qi_datasets::hotels::domain().prepare(), &lexicon);
    assert!(
        hotels.report.li_usage.count(InferenceRule::Li6) > 0,
        "LI6 never fired on hotels"
    );
    let book_prepared = qi_datasets::book::domain().prepare();
    let book = labeled(&book_prepared, &lexicon);
    assert!(
        book.report.li_usage.count(InferenceRule::Li7) > 0,
        "LI7 never fired on book"
    );
    // The isolated format field is labeled, and not by the value label.
    let format = book_prepared.mapping.by_concept("format").unwrap().id;
    let leaf = book_prepared.integrated.leaf_of_cluster(format).unwrap();
    let label = book.tree.node(leaf).label_str();
    assert!(
        label == "Format" || label == "Binding",
        "format labeled {label:?}"
    );
}

/// Figure 11: the integrated Real Estate interface keeps the Lease Rate
/// field unlabeled (no source ever labels it), labels its sibling `To`,
/// and labels the isolated `Garage` cluster.
#[test]
fn figure11_real_estate() {
    let prepared = qi_datasets::real_estate::domain().prepare();
    let lexicon = Lexicon::builtin();
    let labeled = labeled(&prepared, &lexicon);
    let lease_from = prepared.mapping.by_concept("lease_from").unwrap().id;
    let lease_from_leaf = prepared.integrated.leaf_of_cluster(lease_from).unwrap();
    assert!(labeled.tree.node(lease_from_leaf).label.is_none());
    let lease_to = prepared.mapping.by_concept("lease_to").unwrap().id;
    let lease_to_leaf = prepared.integrated.leaf_of_cluster(lease_to).unwrap();
    assert_eq!(labeled.tree.node(lease_to_leaf).label_str(), "To");
    // Same group (siblings).
    assert_eq!(
        labeled.tree.parent(lease_from_leaf),
        labeled.tree.parent(lease_to_leaf)
    );
    let garage = prepared.mapping.by_concept("garage").unwrap().id;
    let garage_leaf = prepared.integrated.leaf_of_cluster(garage).unwrap();
    assert!(labeled.tree.node(garage_leaf).label.is_some());
    assert_eq!(
        labeled.report.class,
        Some(qi::ConsistencyClass::WeaklyConsistent)
    );
}

/// §1 / §4.2.3: the Job integrated interface never shows two equal-level
/// labels (the `Job Type` / `Type of Job` homonym is avoided or
/// repaired).
#[test]
fn job_homonyms_resolved() {
    let prepared = qi_datasets::job::domain().prepare();
    let lexicon = Lexicon::builtin();
    let out = labeled(&prepared, &lexicon);
    let ctx = NamingCtx::new(&lexicon);
    let labels: Vec<String> = out.tree.leaves().filter_map(|l| l.label.clone()).collect();
    for i in 0..labels.len() {
        for j in (i + 1)..labels.len() {
            assert!(
                !ctx.equal(&labels[i], &labels[j]),
                "homonym pair survived: {:?} / {:?}",
                labels[i],
                labels[j]
            );
        }
    }
}

// ---------------------------------------------------------------------
// The query engine over the paper's own examples: the same artifacts
// the pipeline builds, interrogated through the composable /query
// syntax (tree structure × lexicon relations × labeling provenance).

fn airline_query(text: &str) -> Vec<qi_query::QueryMatch> {
    let lexicon = Lexicon::builtin();
    let telemetry = qi_runtime::Telemetry::off();
    let artifact = qi_serve::build_artifact(
        &qi_datasets::airline::domain(),
        &lexicon,
        NamingPolicy::default(),
        &telemetry,
    );
    qi_serve::run_query(
        &[&artifact],
        &lexicon,
        text,
        &qi_serve::PageParams::default(),
    )
    .unwrap_or_else(|e| panic!("{text}: {e}"))
    .matches
}

/// Table 1 / Figure 2 as a query: traversing down from the expanded
/// `Passengers` internal node yields exactly the four passenger-kind
/// fields, in tree order.
#[test]
fn figure2_passenger_expansion_answers_a_traverse_query() {
    let fields = airline_query("traverse fields from (label = \"Passengers\")");
    let labels: Vec<&str> = fields.iter().map(|m| m.label.as_deref().unwrap()).collect();
    assert_eq!(labels, ["Adults", "Seniors", "Children", "Infants"]);
    assert!(fields.iter().all(|m| m.path.starts_with("Passengers/")));
}

/// Definition 1 as a query predicate: `traveler` never appears in any
/// airline label, but the lexicon's synonymy reaches the `Passengers`
/// group the internal-node labeler named.
#[test]
fn definition1_synonymy_reaches_the_passengers_group() {
    let groups = airline_query("find groups where label synonym-of \"traveler\"");
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].label.as_deref(), Some("Passengers"));
    assert!(
        groups[0]
            .rule
            .as_deref()
            .unwrap()
            .starts_with("internal:LI"),
        "the group was named by an internal-node rule: {:?}",
        groups[0].rule
    );
}

/// §4.2 / Figure 10: the internal-node labeling rules fire across the
/// airline tree and are queryable by the rule that produced each label;
/// the strict-LI2 subset is strictly smaller than all internal rules.
#[test]
fn figure10_internal_rules_are_queryable_provenance() {
    let li2 = airline_query("find nodes where rule = \"internal:LI2\"");
    assert!(!li2.is_empty());
    assert!(li2.iter().any(|m| m.label.as_deref() == Some("Passengers")));
    let all_internal = airline_query("find nodes where rule ~ \"internal:\"");
    assert!(
        all_internal.len() > li2.len(),
        "weak/blocked variants exist"
    );
}

/// Figure 9's committee loser is preserved as provenance: the cluster
/// label `Leaving from` lost the vote to `Departure City`, and the
/// rejected-candidate predicate finds the winner by naming the loser.
#[test]
fn figure9_rejected_candidates_are_queryable() {
    let fields = airline_query("find fields where rejected = \"Leaving from\"");
    assert_eq!(fields.len(), 1);
    assert_eq!(fields[0].label.as_deref(), Some("Departure City"));
}

/// §3.1: 1:m expansion leaves the four passenger leaves without source
/// labels of their own in some interfaces; the integrated tree still
/// carries unlabeled nodes, and the query engine can isolate them.
#[test]
fn unlabeled_nodes_are_queryable() {
    let unlabeled = airline_query("find nodes where unlabeled");
    assert!(!unlabeled.is_empty());
    assert!(unlabeled.iter().all(|m| m.label.is_none()));
    let labeled = airline_query("find nodes where labeled");
    assert!(labeled.len() > unlabeled.len());
    assert!(labeled.iter().all(|m| m.label.is_some()));
}
