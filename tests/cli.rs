//! End-to-end tests of the `qi` command-line binary.

use std::process::Command;

fn qi(args: &[&str]) -> (String, String, bool) {
    let output = Command::new(env!("CARGO_BIN_EXE_qi"))
        .args(args)
        .output()
        .expect("run qi binary");
    (
        String::from_utf8_lossy(&output.stdout).to_string(),
        String::from_utf8_lossy(&output.stderr).to_string(),
        output.status.success(),
    )
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = qi(&["help"]);
    assert!(ok);
    assert!(stdout.contains("usage:"));
    assert!(stdout.contains("qi label"));
}

#[test]
fn unknown_command_fails() {
    let (_, stderr, ok) = qi(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn stem_words() {
    let (stdout, _, ok) = qi(&["stem", "connections", "Preferred"]);
    assert!(ok);
    assert!(stdout.contains("connections -> connect"));
    assert!(stdout.contains("Preferred -> prefer"));
}

#[test]
fn relate_labels() {
    let (stdout, _, ok) = qi(&["relate", "Type of Job", "Job Type"]);
    assert!(ok);
    assert!(stdout.contains("Equal"));
    let (stdout, _, ok) = qi(&["relate", "Class", "Class of Tickets"]);
    assert!(ok);
    assert!(stdout.contains("Hypernym"));
}

#[test]
fn label_pipeline_from_files() {
    let dir = std::env::temp_dir().join(format!("qi-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.qis");
    let b = dir.join("b.qis");
    std::fs::write(
        &a,
        "interface a\n+ Passengers\n  - Adults\n  - Children\n- Promo Code\n",
    )
    .unwrap();
    std::fs::write(
        &b,
        "interface b\n+ Travelers\n  - Adults\n  - Children\n  - Infants\n",
    )
    .unwrap();
    let (stdout, stderr, ok) = qi(&["label", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Adults"), "{stdout}");
    assert!(stdout.contains("Infants"), "{stdout}");
    assert!(stderr.contains("clusters"), "{stderr}");
    // --html mode produces a form.
    let (html, _, ok) = qi(&["label", "--html", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(ok);
    assert!(html.contains("<form"), "{html}");
    assert!(html.contains("<fieldset>"));
    // --explain mode narrates.
    let (explained, _, ok) = qi(&[
        "label",
        "--explain",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(ok);
    assert!(explained.contains("Naming explanation"), "{explained}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corpus_export_writes_150_files() {
    let dir = std::env::temp_dir().join(format!("qi-corpus-test-{}", std::process::id()));
    let (stdout, stderr, ok) = qi(&["corpus", "export", dir.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("wrote 150 interfaces"), "{stdout}");
    // Every exported interface parses back.
    let mut parsed = 0usize;
    for domain_dir in std::fs::read_dir(&dir).unwrap() {
        let domain_dir = domain_dir.unwrap().path();
        if !domain_dir.is_dir() {
            continue;
        }
        for file in std::fs::read_dir(&domain_dir).unwrap() {
            let text = std::fs::read_to_string(file.unwrap().path()).unwrap();
            qi_schema::text_format::parse(&text).unwrap();
            parsed += 1;
        }
    }
    assert_eq!(parsed, 150);
    // And the lexicon parses back too.
    let lexicon_text = std::fs::read_to_string(dir.join("lexicon.txt")).unwrap();
    qi_lexicon::format::parse(&lexicon_text).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eval_ladder_shows_progression() {
    let (stdout, _, ok) = qi(&["eval", "ablation-ladder"]);
    assert!(ok);
    assert!(
        stdout.contains("cap=string    consistent groups 0/6"),
        "{stdout}"
    );
    assert!(
        stdout.contains("cap=synonymy  consistent groups 6/6"),
        "{stdout}"
    );
}

#[test]
fn explain_names_the_fired_rule_and_rejected_candidates() {
    // Unfiltered: every decision of the Auto domain, one per node.
    let (stdout, stderr, ok) = qi(&["explain", "auto"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("Auto"), "{stderr}");
    assert!(stderr.contains("decisions"), "{stderr}");
    assert!(stdout.contains("rule: "), "{stdout}");

    // Filtered to one node: the year-range lower bound is named by the
    // group-label vote, which must show both the winner and the losers.
    let (stdout, stderr, ok) = qi(&["explain", "auto", "Year Range/From"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("rule: group:string"), "{stdout}");
    assert!(stdout.contains("accepted \"From\""), "{stdout}");
    assert!(stdout.contains("rejected \"Min\""), "{stdout}");
    assert!(stdout.contains("rejected \"Year\""), "{stdout}");

    // Unknown domains fail and list what exists; a filter matching no
    // node path fails too instead of printing an empty report.
    let (_, stderr, ok) = qi(&["explain", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("builtin domains"), "{stderr}");
    assert!(stderr.contains("auto"), "{stderr}");
    let (_, stderr, ok) = qi(&["explain", "auto", "no-such-node-path"]);
    assert!(!ok);
    assert!(stderr.contains("no node path"), "{stderr}");
}

#[test]
fn fetch_reports_http_errors_with_a_nonzero_exit() {
    // A live in-process server backs the probe, like `qi serve` would.
    let lexicon = qi_lexicon::Lexicon::builtin();
    let telemetry = qi_runtime::Telemetry::new();
    let artifact = qi_serve::build_artifact(
        &qi_datasets::auto::domain(),
        &lexicon,
        qi_core::NamingPolicy::default(),
        &telemetry,
    );
    let store = std::sync::Arc::new(qi_serve::Store::new(
        vec![artifact],
        lexicon,
        qi_core::NamingPolicy::default(),
        telemetry.clone(),
    ));
    let mut handle =
        qi_serve::Server::with_config(store, telemetry, qi_serve::ServerConfig::default())
            .start()
            .expect("starting test server");
    let addr = handle.addr();

    // 2xx: body on stdout, quiet stderr, success exit.
    let (stdout, stderr, ok) = qi(&["fetch", &format!("http://{addr}/healthz")]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("\"status\":\"ok\""), "{stdout}");

    // Content negotiation rides through --accept.
    let (stdout, stderr, ok) = qi(&[
        "fetch",
        "--accept",
        "text/plain",
        &format!("http://{addr}/metrics"),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("# TYPE "), "{stdout}");

    // Non-2xx: non-zero exit with the server's status line on stderr.
    let (_, stderr, ok) = qi(&["fetch", &format!("http://{addr}/domains/nope/labels")]);
    assert!(!ok, "a 404 probe must fail");
    assert!(stderr.contains("HTTP/1.1 404"), "{stderr}");
    assert!(stderr.contains("-> 404"), "{stderr}");

    handle.shutdown();
}

#[test]
fn label_with_explicit_clusters() {
    let dir = std::env::temp_dir().join(format!("qi-clusters-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.qis");
    let b = dir.join("b.qis");
    let clusters = dir.join("clusters.txt");
    std::fs::write(&a, "interface a\n- Departing from\n- Going to\n").unwrap();
    std::fs::write(&b, "interface b\n- From\n- To\n").unwrap();
    std::fs::write(
        &clusters,
        "cluster from\n  a: Departing from\n  b: From\ncluster to\n  a: Going to\n  b: To\n",
    )
    .unwrap();
    let (stdout, stderr, ok) = qi(&[
        "label",
        "--clusters",
        clusters.to_str().unwrap(),
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    // Two clusters — the heuristic matcher would have produced four,
    // since `From` and `Departing from` are not lexically related.
    assert!(stderr.contains("2 clusters"), "{stderr}");
    assert!(stdout.contains("Departing from"), "{stdout}");
    // Bad clusters file fails with a located error.
    std::fs::write(&clusters, "cluster x\n  a: Nope\n").unwrap();
    let (_, stderr, ok) = qi(&[
        "label",
        "--clusters",
        clusters.to_str().unwrap(),
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(stderr.contains("line 2"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
