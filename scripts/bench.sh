#!/usr/bin/env sh
# Build the benchmark harness, run the cached/parallel configuration
# (including the scaled 1000x cloned + drift stages) and the uncached
# single-threaded baseline, and print per-stage speedups. Writes
# BENCH_core.json (cached run) and BENCH_baseline.json at the repo
# root. If a committed BENCH_core.json exists in git HEAD, the new
# medians are diffed against it: cluster beyond 25%, the scaled stages
# (cluster_scaled_1000x, label_scaled) beyond 10%, and peak RSS beyond
# 15% growth are warned about (the run still succeeds — timing noise is
# not an error; the drift-corpus sanity check inside qi-bench IS a hard
# failure).
set -eu
cd "$(dirname "$0")/.."

# Snapshot the reference cluster median before overwriting the file:
# prefer the committed copy, fall back to the pre-run working copy.
reference=""
if git show HEAD:BENCH_core.json >/tmp/bench_ref.json 2>/dev/null; then
    reference=/tmp/bench_ref.json
elif [ -f BENCH_core.json ]; then
    cp BENCH_core.json /tmp/bench_ref.json
    reference=/tmp/bench_ref.json
fi

cargo build --release -p qi-bench

# The cached run includes the scaled (default 1000×) stages and the
# drift corpus; the uncached single-threaded baseline and the telemetry
# rerun skip them (--scale 0) — an uncached 1000× run is pointlessly
# slow and the overhead comparisons only need the core stages.
./target/release/qi-bench --out BENCH_core.json "$@"
./target/release/qi-bench --no-cache --threads 1 --scale 0 --out BENCH_baseline.json "$@"

awk '
    function grab(file, out,   line, n, parts, i, name, ms) {
        getline line < file
        close(file)
        n = split(line, parts, /"name":"/)
        for (i = 2; i <= n; i++) {
            name = parts[i]; sub(/".*/, "", name)
            ms = parts[i]; sub(/.*"median_ms":/, "", ms); sub(/[,}].*/, "", ms)
            out[name] = ms
        }
    }
    BEGIN {
        grab("BENCH_core.json", cached)
        grab("BENCH_baseline.json", base)
        printf "%-20s %12s %12s %9s\n", "stage", "cached ms", "baseline ms", "speedup"
        n = split("normalize cluster cluster_scaled_10x cluster_scaled_100x merge label evaluate cluster_scaled_1000x drift_scaled label_scaled", order, " ")
        for (i = 1; i <= n; i++) {
            s = order[i]
            if (cached[s] + 0 > 0) {
                # The baseline run skips the scaled stages (--scale 0).
                if (base[s] + 0 > 0)
                    printf "%-20s %12.3f %12.3f %8.2fx\n", s, cached[s], base[s], base[s] / cached[s]
                else
                    printf "%-20s %12.3f %12s %9s\n", s, cached[s], "-", "-"
            }
        }
    }'

if [ -n "$reference" ]; then
    awk -v ref="$reference" '
        function grab(file, out,   line, n, parts, i, name, ms) {
            getline line < file
            close(file)
            n = split(line, parts, /"name":"/)
            for (i = 2; i <= n; i++) {
                name = parts[i]; sub(/".*/, "", name)
                ms = parts[i]; sub(/.*"median_ms":/, "", ms); sub(/[,}].*/, "", ms)
                out[name] = ms
            }
        }
        # First occurrence of a bare numeric key (the memory section).
        function field(file, key,   line, i, v) {
            getline line < file
            close(file)
            i = index(line, "\"" key "\":")
            if (!i) return ""
            v = substr(line, i + length(key) + 3)
            sub(/[,}].*/, "", v)
            return v
        }
        BEGIN {
            grab("BENCH_core.json", now)
            grab(ref, was)
            if (was["cluster"] + 0 > 0 && now["cluster"] + 0 > 0) {
                delta = (now["cluster"] - was["cluster"]) / was["cluster"] * 100
                printf "cluster median: %.3f ms (reference %.3f ms, %+.1f%%)\n", \
                    now["cluster"], was["cluster"], delta
                if (delta > 25)
                    printf "WARNING: cluster stage regressed by %.1f%% vs committed reference\n", delta
            }
            # Scaled-stage gate: the 1000x stages run few iterations, so
            # they get a tighter 10% threshold on a much larger absolute
            # median — proportionally still far above timing noise.
            n = split("cluster_scaled_1000x label_scaled", gated, " ")
            for (i = 1; i <= n; i++) {
                s = gated[i]
                if (was[s] + 0 > 0 && now[s] + 0 > 0) {
                    delta = (now[s] - was[s]) / was[s] * 100
                    printf "%s median: %.3f ms (reference %.3f ms, %+.1f%%)\n", \
                        s, now[s], was[s], delta
                    if (delta > 10)
                        printf "WARNING: %s regressed by %.1f%% vs committed reference\n", s, delta
                }
            }
            # Peak-RSS gate: the scaled stages are built to bound memory
            # (one corpus alive at a time, per-domain sharding); growth
            # beyond 15% means something started accumulating.
            rss_now = field("BENCH_core.json", "peak_rss_bytes")
            rss_was = field(ref, "peak_rss_bytes")
            if (rss_was + 0 > 0 && rss_now + 0 > 0) {
                delta = (rss_now - rss_was) / rss_was * 100
                printf "peak RSS: %.1f MiB (reference %.1f MiB, %+.1f%%)\n", \
                    rss_now / 1048576, rss_was / 1048576, delta
                if (delta > 15)
                    printf "WARNING: peak RSS grew by %.1f%% vs committed reference\n", delta
            }
        }'
fi

# Telemetry overhead: rerun the cached configuration with a live
# registry and print the per-stage delta against the run above. The
# disabled mode must be free (a pointer check per instrument site);
# the enabled mode is expected to stay within a few percent.
./target/release/qi-bench --telemetry --scale 0 --out /tmp/bench_telemetry.json "$@"
awk '
    function grab(file, out,   line, n, parts, i, name, ms) {
        getline line < file
        close(file)
        n = split(line, parts, /"name":"/)
        for (i = 2; i <= n; i++) {
            name = parts[i]; sub(/".*/, "", name)
            ms = parts[i]; sub(/.*"median_ms":/, "", ms); sub(/[,}].*/, "", ms)
            out[name] = ms
        }
    }
    BEGIN {
        grab("BENCH_core.json", off)
        grab("/tmp/bench_telemetry.json", on)
        printf "%-20s %14s %13s %8s\n", "stage", "telemetry off", "telemetry on", "delta"
        n = split("cluster label evaluate", order, " ")
        for (i = 1; i <= n; i++) {
            s = order[i]
            if (off[s] + 0 > 0)
                printf "%-20s %11.3f ms %10.3f ms %+7.1f%%\n", \
                    s, off[s], on[s], (on[s] - off[s]) / off[s] * 100
        }
    }'

# Serving benchmark: snapshot cold start vs full pipeline rebuild, plus
# end-to-end GET throughput against a live server on loopback. Writes
# BENCH_serve.json at the repo root.
serve_reference=""
if git show HEAD:BENCH_serve.json >/tmp/bench_serve_ref.json 2>/dev/null; then
    serve_reference=/tmp/bench_serve_ref.json
elif [ -f BENCH_serve.json ]; then
    cp BENCH_serve.json /tmp/bench_serve_ref.json
    serve_reference=/tmp/bench_serve_ref.json
fi
cargo build --release -p qi-bench --bin qi-serve-bench
./target/release/qi-serve-bench --out BENCH_serve.json
awk '
    # First occurrence of the key: the sweep section repeats generic
    # names like requests_per_sec, so a greedy match would grab the
    # wrong (last) one.
    function field(line, key,   i, v) {
        i = index(line, "\"" key "\":")
        if (!i) return ""
        v = substr(line, i + length(key) + 3)
        sub(/[,}].*/, "", v)
        return v
    }
    BEGIN {
        getline line < "BENCH_serve.json"
        close("BENCH_serve.json")
        rebuild = field(line, "rebuild_median_ms")
        load = field(line, "load_median_ms")
        speedup = field(line, "speedup")
        rps = field(line, "requests_per_sec")
        bytes = field(line, "bytes")
        p50 = field(line, "latency_p50_us")
        p99 = field(line, "latency_p99_us")
        printf "cold start: full rebuild %.3f ms, snapshot load %.3f ms (%.1fx, %d-byte snapshot)\n", \
            rebuild, load, speedup, bytes
        printf "serving:    %.0f GET requests/sec over loopback (latency p50 %.0f us, p99 %.0f us)\n", \
            rps, p50, p99
        if (speedup + 0 < 10)
            printf "WARNING: snapshot cold start is below the 10x target (%.1fx)\n", speedup

        # Keep-alive vs close at the peak client count: persistent
        # pipelined connections vs one connection per request.
        ka_clients = field(line, "keepalive_clients")
        ka_rps = field(line, "keepalive_requests_per_sec")
        ka_p50 = field(line, "keepalive_p50_us")
        ka_p99 = field(line, "keepalive_p99_us")
        close_rps = field(line, "close_requests_per_sec")
        ka_x = field(line, "keepalive_speedup")
        printf "keep-alive: %.0f req/s @%d clients (p50 %.0f us, p99 %.0f us) vs %.0f req/s close (%.1fx)\n", \
            ka_rps, ka_clients, ka_p50, ka_p99, close_rps, ka_x

        # Incremental-ingest table: the full re-label path (before) vs
        # the delta path (after), plus what ingest traffic does to
        # concurrent readers and the rendered-response cache.
        delta = field(line, "delta_median_ms")
        full = field(line, "full_median_ms")
        ingest_speedup = field(line, "ingest_speedup")
        post50 = field(line, "post_p50_us"); post99 = field(line, "post_p99_us")
        read50 = field(line, "read_during_ingest_p50_us")
        read99 = field(line, "read_during_ingest_p99_us")
        hits = field(line, "cache_hits"); misses = field(line, "cache_misses")
        inval = field(line, "cache_invalidations")
        printf "%-28s %12s %12s %9s\n", "ingest path", "before ms", "after ms", "speedup"
        printf "%-28s %12.3f %12.3f %8.1fx\n", "full re-label -> delta", full, delta, ingest_speedup
        printf "ingest POST latency p50 %.0f us, p99 %.0f us; reads during ingest p50 %.0f us, p99 %.0f us\n", \
            post50, post99, read50, read99
        printf "response cache: %d hits, %d misses, %d invalidations\n", hits, misses, inval
        if (ingest_speedup + 0 < 5)
            printf "WARNING: incremental ingest is below the 5x target (%.1fx)\n", ingest_speedup

        # Query-engine stage: the representative query set over a
        # seeded drift corpus.
        qms = field(line, "median_ms")
        qn = field(line, "queries")
        qdomains = field(line, "query_domains")
        qmatches = field(line, "query_matches")
        printf "query engine: %d-query set over %d drift domains in %.3f ms median (%d matches)\n", \
            qn, qdomains, qms, qmatches

        # Observability overhead: the same keep-alive workload with the
        # flight recorder + windowed time-series fully on vs fully off,
        # plus the in-process recorder saturation rate.
        obs_on = field(line, "observe_on_rps")
        obs_off = field(line, "observe_off_rps")
        obs_pct = field(line, "observe_overhead_pct")
        rec_rate = field(line, "recorder_events_per_sec")
        printf "observability: %.0f req/s with recorder+history on vs %.0f req/s off (%+.1f%% overhead); recorder %.1fM events/s\n", \
            obs_on, obs_off, obs_pct, rec_rate / 1000000
        if (obs_pct + 0 > 5)
            printf "WARNING: recorder+history overhead is above the 5%% target (%.1f%%)\n", obs_pct
    }'

# Query-stage regression gate: warn when the query_scaled median in the
# fresh BENCH_serve.json regresses >10% against the committed reference.
if [ -n "$serve_reference" ]; then
    awk -v ref="$serve_reference" '
        function grab(file, out,   line, n, parts, i, name, ms) {
            getline line < file
            close(file)
            n = split(line, parts, /"name":"/)
            for (i = 2; i <= n; i++) {
                name = parts[i]; sub(/".*/, "", name)
                ms = parts[i]; sub(/.*"median_ms":/, "", ms); sub(/[,}].*/, "", ms)
                out[name] = ms
            }
        }
        BEGIN {
            grab("BENCH_serve.json", now)
            grab(ref, was)
            s = "query_scaled"
            if (was[s] + 0 > 0 && now[s] + 0 > 0) {
                delta = (now[s] - was[s]) / was[s] * 100
                printf "%s median: %.3f ms (reference %.3f ms, %+.1f%%)\n", \
                    s, now[s], was[s], delta
                if (delta > 10)
                    printf "WARNING: %s regressed by %.1f%% vs committed reference\n", s, delta
            }
        }'
fi
