#!/usr/bin/env sh
# Build the benchmark harness, run the cached/parallel configuration and
# the uncached single-threaded baseline, and print per-stage speedups.
# Writes BENCH_core.json (cached run) and BENCH_baseline.json at the
# repo root.
set -eu
cd "$(dirname "$0")/.."

cargo build --release -p qi-bench

./target/release/qi-bench --out BENCH_core.json "$@"
./target/release/qi-bench --no-cache --threads 1 --out BENCH_baseline.json "$@"

awk '
    function grab(file, out,   line, n, parts, i, name, ms) {
        getline line < file
        close(file)
        n = split(line, parts, /"name":"/)
        for (i = 2; i <= n; i++) {
            name = parts[i]; sub(/".*/, "", name)
            ms = parts[i]; sub(/.*"median_ms":/, "", ms); sub(/[,}].*/, "", ms)
            out[name] = ms
        }
    }
    BEGIN {
        grab("BENCH_core.json", cached)
        grab("BENCH_baseline.json", base)
        printf "%-10s %12s %12s %9s\n", "stage", "cached ms", "baseline ms", "speedup"
        split("normalize cluster merge label evaluate", order, " ")
        for (i = 1; i <= 5; i++) {
            s = order[i]
            if (cached[s] + 0 > 0)
                printf "%-10s %12.3f %12.3f %8.2fx\n", s, cached[s], base[s], base[s] / cached[s]
        }
    }'
