#!/usr/bin/env sh
# Tier-1 verification: offline release build + full test suite, plus
# lint gates (clippy warnings are errors, formatting must be canonical),
# the property suite against the in-repo proptest shim (including the
# committed regression corpus), and a telemetry-overhead guard.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
# The property suite and its regression-corpus replay run against
# crates/proptest (the offline shim), so the committed
# tests/properties.proptest-regressions cases are exercised on every
# check, not only on machines that can fetch the real crate.
cargo test -q --features proptest --test properties
cargo clippy --all-targets --all-features -- -D warnings
cargo fmt --check

# Telemetry-overhead guard: the disabled-mode pipeline must not pay for
# the instrumentation it isn't using. Run the benchmark with telemetry
# off and on, print the deltas, and fail when the off-run's cluster
# median regresses more than 5% against the committed BENCH_core.json
# reference (absolute floor of 0.5 ms filters single-core jitter on
# sub-millisecond stages).
if git show HEAD:BENCH_core.json >/tmp/check_bench_ref.json 2>/dev/null; then
    cargo build --release -p qi-bench
    ./target/release/qi-bench --iters 3 --warmup 1 --out /tmp/check_bench_off.json
    ./target/release/qi-bench --iters 3 --warmup 1 --telemetry \
        --out /tmp/check_bench_on.json
    awk '
        function grab(file, out,   line, n, parts, i, name, ms) {
            getline line < file
            close(file)
            n = split(line, parts, /"name":"/)
            for (i = 2; i <= n; i++) {
                name = parts[i]; sub(/".*/, "", name)
                ms = parts[i]; sub(/.*"median_ms":/, "", ms); sub(/[,}].*/, "", ms)
                out[name] = ms
            }
        }
        BEGIN {
            grab("/tmp/check_bench_off.json", off)
            grab("/tmp/check_bench_on.json", on)
            grab("/tmp/check_bench_ref.json", ref)
            printf "%-10s %14s %13s %14s\n", \
                "stage", "telemetry off", "telemetry on", "committed ref"
            n = split("cluster label evaluate", order, " ")
            for (i = 1; i <= n; i++) {
                s = order[i]
                printf "%-10s %11.3f ms %10.3f ms %11.3f ms\n", \
                    s, off[s], on[s], ref[s]
            }
            drift = off["cluster"] - ref["cluster"]
            if (ref["cluster"] + 0 > 0 && drift > ref["cluster"] * 0.05 && drift > 0.5) {
                printf "FAIL: telemetry-off cluster median %.3f ms exceeds committed " \
                    "reference %.3f ms by more than 5%%\n", off["cluster"], ref["cluster"]
                exit 1
            }
            printf "telemetry-off cluster median within 5%% of committed reference\n"
        }'
else
    echo "no committed BENCH_core.json; skipping telemetry-overhead guard"
fi

# Server smoke stage: build a snapshot, cold-start the server on an
# ephemeral port, probe the read endpoints with the std-only client,
# ingest one interface, and stop it cleanly through the admin endpoint.
# Everything rides the release `qi` binary built above — no curl, no
# network beyond loopback.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/qi snapshot build "$smoke_dir/corpus.snap"
./target/release/qi snapshot info "$smoke_dir/corpus.snap" >/dev/null
./target/release/qi serve --snapshot "$smoke_dir/corpus.snap" \
    --addr 127.0.0.1:0 --port-file "$smoke_dir/port" &
serve_pid=$!
for _ in 1 2 3 4 5 6 7 8 9 10; do
    [ -s "$smoke_dir/port" ] && break
    sleep 0.3
done
[ -s "$smoke_dir/port" ] || { echo "FAIL: server never wrote its port file"; exit 1; }
addr=$(cat "$smoke_dir/port")
./target/release/qi fetch "http://$addr/healthz" | grep -q '"status":"ok"' \
    || { echo "FAIL: /healthz probe"; exit 1; }
./target/release/qi fetch "http://$addr/metrics" | grep -q '"counters"' \
    || { echo "FAIL: /metrics probe"; exit 1; }
./target/release/qi fetch "http://$addr/domains/auto/tree" | grep -q 'interface' \
    || { echo "FAIL: /domains/auto/tree probe"; exit 1; }
printf 'interface smoke\n- Make\n- Model\n' > "$smoke_dir/smoke.qis"
./target/release/qi fetch --body "$smoke_dir/smoke.qis" \
    "http://$addr/domains/auto/interfaces" | grep -q '"interfaces":21' \
    || { echo "FAIL: ingest probe"; exit 1; }
./target/release/qi fetch --post "http://$addr/admin/shutdown" >/dev/null
wait "$serve_pid" || { echo "FAIL: server exited uncleanly"; exit 1; }
echo "server smoke stage passed (snapshot -> serve -> probe -> shutdown)"
