#!/usr/bin/env sh
# Tier-1 verification: offline release build + full test suite, plus
# lint gates (clippy warnings are errors, formatting must be canonical).
set -eu
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
cargo fmt --check
