#!/usr/bin/env sh
# Tier-1 verification: offline release build + full test suite.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
