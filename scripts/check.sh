#!/usr/bin/env sh
# Tier-1 verification: offline release build + full test suite, plus
# lint gates (clippy warnings are errors, formatting must be canonical),
# the property suite against the in-repo proptest shim (including the
# committed regression corpus), and a telemetry-overhead guard.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
# The property suite and its regression-corpus replay run against
# crates/proptest (the offline shim), so the committed
# tests/properties.proptest-regressions cases are exercised on every
# check, not only on machines that can fetch the real crate.
cargo test -q --features proptest --test properties
# Incremental-equivalence stage: the delta-ingest suite runs in the
# debug profile, where its debug_assert guards compare every extended
# group naming against a from-scratch rebuild — any divergence between
# the incremental and full paths fails here, not in production.
cargo test -q --test incremental
# Drift-equivalence stage: seeded drift corpora must be byte-stable
# (corpus, snapshot and metrics documents), both matcher engines must
# agree on them tier for tier, and the drift cache-hit rate must sit
# materially below the verbatim-clone ceiling. This is the fast (small
# config) version of the scaled drift run in scripts/bench.sh.
cargo test -q --test drift
cargo test -q --test matcher_props drift_corpora_indexed_equals_naive_across_rates
cargo clippy --all-targets --all-features -- -D warnings
cargo fmt --check

# Telemetry-overhead guard: the disabled-mode pipeline must not pay for
# the instrumentation it isn't using. Run the benchmark with telemetry
# off and on, print the deltas, and fail when the off-run's cluster
# median regresses more than 5% against the committed BENCH_core.json
# reference (absolute floor of 0.5 ms filters single-core jitter on
# sub-millisecond stages). The guard runs right after the clippy/test
# compiles, whose sustained load can leave a small CPU budget throttled
# for a minute; a miss is retried once after an idle cooldown so a
# throttled box doesn't masquerade as a code regression.
telemetry_guard() {
    # --scale 0 skips the scaled (1000×) stages: this guard compares the
    # small-corpus stage medians only and must stay fast. The first
    # qi-bench invocation after other work consistently runs ~20% slow
    # (CPU-frequency ramp + cold page cache), and the off run always
    # goes first — burn one discarded invocation so all three measured
    # runs see the same steady state.
    ./target/release/qi-bench --iters 1 --warmup 1 --scale 0 \
        --out /tmp/check_bench_warm.json >/dev/null \
        && ./target/release/qi-bench --iters 3 --warmup 1 --scale 0 \
            --out /tmp/check_bench_off.json \
        && ./target/release/qi-bench --iters 3 --warmup 1 --scale 0 --telemetry \
            --out /tmp/check_bench_on.json \
        && ./target/release/qi-bench --iters 3 --warmup 1 --scale 0 --observe \
            --out /tmp/check_bench_observe.json \
        && awk '
        function grab(file, out,   line, n, parts, i, name, ms) {
            getline line < file
            close(file)
            n = split(line, parts, /"name":"/)
            for (i = 2; i <= n; i++) {
                name = parts[i]; sub(/".*/, "", name)
                ms = parts[i]; sub(/.*"median_ms":/, "", ms); sub(/[,}].*/, "", ms)
                out[name] = ms
            }
        }
        BEGIN {
            grab("/tmp/check_bench_off.json", off)
            grab("/tmp/check_bench_on.json", on)
            grab("/tmp/check_bench_observe.json", obs)
            grab("/tmp/check_bench_ref.json", ref)
            printf "%-10s %14s %13s %13s %14s\n", \
                "stage", "telemetry off", "telemetry on", "observe on", "committed ref"
            n = split("cluster label evaluate", order, " ")
            for (i = 1; i <= n; i++) {
                s = order[i]
                printf "%-10s %11.3f ms %10.3f ms %10.3f ms %11.3f ms\n", \
                    s, off[s], on[s], obs[s], ref[s]
            }
            drift = off["cluster"] - ref["cluster"]
            if (ref["cluster"] + 0 > 0 && drift > ref["cluster"] * 0.05 && drift > 0.5) {
                printf "FAIL: telemetry-off cluster median %.3f ms exceeds committed " \
                    "reference %.3f ms by more than 5%%\n", off["cluster"], ref["cluster"]
                exit 1
            }
            # The full observability plane (live registry + flight
            # recorder + 100ms time-series ticked inside the stage loop)
            # must stay within 5% of the telemetry-off hot path too.
            over = obs["cluster"] - off["cluster"]
            if (over > off["cluster"] * 0.05 && over > 0.5) {
                printf "FAIL: observe-on cluster median %.3f ms exceeds the " \
                    "telemetry-off run %.3f ms by more than 5%%\n", \
                    obs["cluster"], off["cluster"]
                exit 1
            }
            printf "telemetry-off cluster median within 5%% of committed reference; " \
                "recorder+timeseries overhead within bounds\n"
        }'
}
if git show HEAD:BENCH_core.json >/tmp/check_bench_ref.json 2>/dev/null; then
    cargo build --release -p qi-bench
    if ! telemetry_guard; then
        echo "telemetry-overhead guard missed; cooling down and retrying once"
        sleep 45
        telemetry_guard
    fi
else
    echo "no committed BENCH_core.json; skipping telemetry-overhead guard"
fi

# Server smoke stage: build a snapshot, cold-start the server on an
# ephemeral port, probe the read endpoints with the std-only client,
# ingest one interface, reuse one keep-alive socket across requests,
# hot-reload the snapshot under live traffic, and stop it cleanly
# through the admin endpoint. Everything rides the release `qi` binary
# built above — no curl, no network beyond loopback.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/qi snapshot build "$smoke_dir/corpus.snap"
./target/release/qi snapshot info "$smoke_dir/corpus.snap" >/dev/null
./target/release/qi serve --snapshot "$smoke_dir/corpus.snap" \
    --addr 127.0.0.1:0 --port-file "$smoke_dir/port" \
    --history-interval-ms 200 \
    --access-log "$smoke_dir/access.log" &
serve_pid=$!
for _ in 1 2 3 4 5 6 7 8 9 10; do
    [ -s "$smoke_dir/port" ] && break
    sleep 0.3
done
[ -s "$smoke_dir/port" ] || { echo "FAIL: server never wrote its port file"; exit 1; }
addr=$(cat "$smoke_dir/port")
./target/release/qi fetch "http://$addr/healthz" | grep -q '"status":"ok"' \
    || { echo "FAIL: /healthz probe"; exit 1; }
./target/release/qi fetch "http://$addr/metrics" | grep -q '"counters"' \
    || { echo "FAIL: /metrics probe"; exit 1; }
# Prometheus scrape: the same endpoint negotiated to exposition format,
# validated with a tiny awk parser — every metric family declares its
# # TYPE exactly once, and every histogram's _count series equals its
# cumulative +Inf bucket.
./target/release/qi fetch --accept text/plain "http://$addr/metrics" \
    > "$smoke_dir/metrics.prom"
grep -q '^# TYPE ' "$smoke_dir/metrics.prom" \
    || { echo "FAIL: Prometheus scrape carries no # TYPE lines"; exit 1; }
awk '
    /^# TYPE / {
        if (seen[$3]++) { printf "FAIL: duplicate # TYPE for family %s\n", $3; bad = 1 }
        if ($4 == "histogram") hist[$3] = 1
        next
    }
    /^#/ { next }
    /_bucket\{le="\+Inf"\}/ {
        family = $1
        sub(/_bucket\{.*/, "", family)
        inf[family] = $2
        next
    }
    /_count / {
        family = $1
        sub(/_count$/, "", family)
        if (family in hist) count[family] = $2
        next
    }
    END {
        families = 0
        for (f in hist) {
            families++
            if (!(f in inf)) { printf "FAIL: histogram %s has no +Inf bucket\n", f; bad = 1 }
            else if (count[f] != inf[f]) {
                printf "FAIL: histogram %s _count %s != +Inf bucket %s\n", \
                    f, count[f], inf[f]
                bad = 1
            }
        }
        if (families == 0) { print "FAIL: no histogram families in scrape"; bad = 1 }
        if (bad) exit 1
        printf "Prometheus scrape well-formed (%d histogram families)\n", families
    }' "$smoke_dir/metrics.prom" || { echo "FAIL: Prometheus scrape validation"; exit 1; }
./target/release/qi fetch "http://$addr/domains/auto/tree" | grep -q 'interface' \
    || { echo "FAIL: /domains/auto/tree probe"; exit 1; }
./target/release/qi fetch "http://$addr/domains/auto/explain" | grep -q '"rule":' \
    || { echo "FAIL: /domains/auto/explain probe"; exit 1; }
# Rendered-response cache: a repeated GET must be served from the cache
# (nonzero serve.cache.hits in /metrics), and revalidating with the
# response's own ETag must come back 304 Not Modified without a body.
./target/release/qi fetch "http://$addr/domains/auto/labels" >/dev/null
etag=$(./target/release/qi fetch --include "http://$addr/domains/auto/labels" \
    | sed -n 's/^etag: *//p' | tr -d '\r')
[ -n "$etag" ] || { echo "FAIL: cached GET carries no etag header"; exit 1; }
./target/release/qi fetch --etag "$etag" "http://$addr/domains/auto/labels" 2>&1 \
    | grep -q '304 Not Modified' \
    || { echo "FAIL: if-none-match revalidation did not answer 304"; exit 1; }
./target/release/qi fetch "http://$addr/metrics" \
    | grep -o '"serve\.cache\.hits":[0-9]*' | grep -qv ':0$' \
    || { echo "FAIL: server smoke probes never hit the response cache"; exit 1; }
# Query smoke stage: /query over the live server. The happy path rides
# a GET whose spaces qi fetch percent-encodes itself; the POST body
# (--data) carries the text verbatim; typed failures map to their
# statuses (parse error -> 400, starved traversal budget -> 422); a
# limit=1 page cuts a cursor that resumes; and the cursorless page is
# served from the rendered cache with a revalidatable ETag.
./target/release/qi fetch "http://$addr/query?q=find fields&limit=3" \
    | grep -q '"count":3' \
    || { echo "FAIL: /query happy-path probe"; exit 1; }
./target/release/qi fetch --data 'find nodes where unlabeled' "http://$addr/query" \
    | grep -q '"query":"find nodes where unlabeled"' \
    || { echo "FAIL: /query POST-body probe"; exit 1; }
if ./target/release/qi fetch "http://$addr/query?q=find widgets" \
    >/dev/null 2>"$smoke_dir/query.err"; then
    echo "FAIL: /query parse error did not fail the probe"; exit 1
fi
grep -q '400 Bad Request' "$smoke_dir/query.err" \
    || { echo "FAIL: /query parse error did not answer 400"; exit 1; }
if ./target/release/qi fetch "http://$addr/query?q=find fields&budget=1" \
    >/dev/null 2>"$smoke_dir/query.err"; then
    echo "FAIL: /query starved budget did not fail the probe"; exit 1
fi
grep -q '422 Unprocessable Content' "$smoke_dir/query.err" \
    || { echo "FAIL: /query starved budget did not answer 422"; exit 1; }
qcursor=$(./target/release/qi fetch "http://$addr/query?q=find fields in auto&limit=1" \
    | grep -o '"next_cursor":"[0-9a-f]*"' | cut -d'"' -f4)
[ -n "$qcursor" ] || { echo "FAIL: limit=1 query page carries no cursor"; exit 1; }
./target/release/qi fetch \
    "http://$addr/query?q=find fields in auto&limit=1&cursor=$qcursor" \
    | grep -q '"count":1' \
    || { echo "FAIL: /query cursor resume probe"; exit 1; }
qetag=$(./target/release/qi fetch --include "http://$addr/query?q=find fields" \
    | sed -n 's/^etag: *//p' | tr -d '\r')
[ -n "$qetag" ] || { echo "FAIL: cursorless /query carries no etag"; exit 1; }
./target/release/qi fetch --etag "$qetag" "http://$addr/query?q=find fields" 2>&1 \
    | grep -q '304 Not Modified' \
    || { echo "FAIL: /query revalidation did not answer 304"; exit 1; }
# Paginated explain shares the cursor machinery.
./target/release/qi fetch "http://$addr/domains/auto/explain?limit=1" \
    | grep -q '"next_cursor":"' \
    || { echo "FAIL: paginated explain carries no cursor"; exit 1; }
printf 'interface smoke\n- Make\n- Model\n' > "$smoke_dir/smoke.qis"
./target/release/qi fetch --body "$smoke_dir/smoke.qis" \
    "http://$addr/domains/auto/interfaces" | grep -q '"interfaces":21' \
    || { echo "FAIL: ingest probe"; exit 1; }
# The ingest above replaced auto's artifact, so the outstanding query
# cursor pinned to auto's old version must now answer 410 Gone.
if ./target/release/qi fetch \
    "http://$addr/query?q=find fields in auto&limit=1&cursor=$qcursor" \
    >/dev/null 2>"$smoke_dir/query.err"; then
    echo "FAIL: post-ingest stale query cursor did not fail the probe"; exit 1
fi
grep -q '410 Gone' "$smoke_dir/query.err" \
    || { echo "FAIL: stale query cursor did not answer 410"; exit 1; }
# Keep-alive: two requests over one socket. The client side asserts
# reuse itself (qi fetch --keep-alive fails if any response announces
# connection: close); the server side is asserted through the
# serve.conn.* counters scraped below.
./target/release/qi fetch --keep-alive --repeat 2 "http://$addr/healthz" \
    | grep -c '"status":"ok"' | grep -q '^2$' \
    || { echo "FAIL: keep-alive probe did not answer twice on one socket"; exit 1; }
# Hot reload round trip under live keep-alive traffic: the smoke ingest
# above took auto to 21 interfaces; reloading the startup snapshot must
# take it back to 20 without dropping a single read on a persistent
# connection that spans the swap.
./target/release/qi fetch "http://$addr/domains" | grep -q '"interfaces":21' \
    || { echo "FAIL: pre-reload listing is missing the ingested interface"; exit 1; }
./target/release/qi fetch --keep-alive --repeat 200 "http://$addr/domains/auto/labels" \
    >/dev/null 2>"$smoke_dir/reader.err" &
reader_pid=$!
./target/release/qi fetch --post "http://$addr/admin/reload" \
    | grep -q '"status":"reloaded"' \
    || { echo "FAIL: /admin/reload probe"; exit 1; }
wait "$reader_pid" || {
    echo "FAIL: keep-alive reader dropped during reload:"
    cat "$smoke_dir/reader.err"
    exit 1
}
./target/release/qi fetch "http://$addr/domains" | grep -q '"interfaces":20' \
    || { echo "FAIL: reload did not restore the snapshot corpus"; exit 1; }
# The reactor's connection counters must all be exposed in the
# Prometheus scrape, and the keep-alive probes above must have moved
# the accepted/reused ones.
./target/release/qi fetch --accept text/plain "http://$addr/metrics" \
    > "$smoke_dir/metrics_conn.prom"
for family in accepted reused idle_closed pipelined; do
    grep -q "^qi_serve_conn_${family}_total " "$smoke_dir/metrics_conn.prom" \
        || { echo "FAIL: serve.conn.$family missing from Prometheus scrape"; exit 1; }
done
if grep -q '^qi_serve_conn_accepted_total 0$' "$smoke_dir/metrics_conn.prom"; then
    echo "FAIL: serve.conn.accepted never incremented"; exit 1
fi
if grep -q '^qi_serve_conn_reused_total 0$' "$smoke_dir/metrics_conn.prom"; then
    echo "FAIL: serve.conn.reused never incremented"; exit 1
fi
# Live introspection: every probe above fed the 200ms windowed ring and
# the flight recorder, so the history document, the events page (with a
# working resume cursor), the status summary, and the qi top dashboard
# must all reflect it.
sleep 0.5
./target/release/qi fetch "http://$addr/metrics/history" > "$smoke_dir/history.json"
grep -q '"interval_ns":200000000' "$smoke_dir/history.json" \
    || { echo "FAIL: /metrics/history window interval"; exit 1; }
grep -q '"serve.requests":' "$smoke_dir/history.json" \
    || { echo "FAIL: /metrics/history recorded no traffic"; exit 1; }
./target/release/qi fetch "http://$addr/debug/events" > "$smoke_dir/events.json"
grep -q '"key":"reload.snapshot"' "$smoke_dir/events.json" \
    || { echo "FAIL: /debug/events is missing the reload event"; exit 1; }
grep -q '"category":"budget"' "$smoke_dir/events.json" \
    || { echo "FAIL: /debug/events is missing the starved-budget event"; exit 1; }
events_cursor=$(grep -o '"next_seq":[0-9]*' "$smoke_dir/events.json" | cut -d: -f2)
[ -n "$events_cursor" ] || { echo "FAIL: events page carries no resume cursor"; exit 1; }
# Resume from the cursor: nothing happened since, so the page is empty;
# after one more starved-budget probe the new event (and only it)
# appears past the same cursor.
./target/release/qi fetch "http://$addr/debug/events?since=$events_cursor" \
    | grep -q '"events":\[\]' \
    || { echo "FAIL: events cursor resume replayed old events"; exit 1; }
./target/release/qi fetch "http://$addr/query?q=find fields&budget=1" \
    >/dev/null 2>&1 || true
./target/release/qi fetch "http://$addr/debug/events?since=$events_cursor" \
    > "$smoke_dir/events_resume.json"
grep -q '"category":"budget"' "$smoke_dir/events_resume.json" \
    || { echo "FAIL: events cursor resume missed the new event"; exit 1; }
if grep -q '"key":"reload.snapshot"' "$smoke_dir/events_resume.json"; then
    echo "FAIL: events cursor resume replayed the pre-cursor reload event"; exit 1
fi
./target/release/qi fetch "http://$addr/debug/status" | grep -q '"rolling":{' \
    || { echo "FAIL: /debug/status probe"; exit 1; }
./target/release/qi top "$addr" --iterations 2 --interval-ms 250 --raw \
    > "$smoke_dir/top.out" \
    || { echo "FAIL: qi top dashboard probe"; exit 1; }
grep -c . "$smoke_dir/top.out" | grep -q '^2$' \
    || { echo "FAIL: qi top did not print one summary line per refresh"; exit 1; }
./target/release/qi fetch --post "http://$addr/admin/shutdown" >/dev/null
wait "$serve_pid" || { echo "FAIL: server exited uncleanly"; exit 1; }
# Every probe above must have left a structured access-log line with a
# request id and measured latency.
grep -q 'req=.* route=metrics path=/metrics status=200 .*latency_us=' "$smoke_dir/access.log" \
    || { echo "FAIL: access log is missing the /metrics request"; exit 1; }
grep -c '^req=' "$smoke_dir/access.log" | grep -qv '^0$' \
    || { echo "FAIL: access log is empty"; exit 1; }
echo "server smoke stage passed (snapshot -> serve -> probe -> keep-alive -> reload -> introspect -> shutdown)"
